//! End-to-end tests of the `tulkun` CLI binary and the JSON network
//! round-trip it relies on.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tulkun"))
}

#[test]
fn network_json_round_trip() {
    let net = tulkun::datasets::fig2a_network();
    let json = tulkun::json::to_string(&net);
    let back: tulkun::netmodel::network::Network = tulkun::json::from_str(&json).unwrap();
    assert_eq!(back.topology.num_devices(), net.topology.num_devices());
    assert_eq!(back.topology.num_links(), net.topology.num_links());
    assert_eq!(back.total_rules(), net.total_rules());
    // Same verdicts after the round trip.
    let inv = tulkun::core::spec::Invariant::parse(
        "(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))",
    )
    .unwrap();
    let p1 = tulkun::core::planner::Planner::new(&net.topology)
        .plan(&inv)
        .unwrap();
    let p2 = tulkun::core::planner::Planner::new(&back.topology)
        .plan(&inv)
        .unwrap();
    assert_eq!(
        tulkun::core::verify::verify_snapshot(&net, &p1).holds(),
        tulkun::core::verify::verify_snapshot(&back, &p2).holds()
    );
}

#[test]
fn cli_verify_flow() {
    let dir = std::env::temp_dir().join(format!("tulkun-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let net_path = dir.join("net.json");

    // Export the example network.
    let out = bin()
        .args(["example", "--out", net_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A violated invariant exits nonzero and names the class.
    let out = bin()
        .args([
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--invariant",
            "(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("per-universe counts"), "{stdout}");

    // A holding invariant exits zero.
    let out = bin()
        .args([
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--invariant",
            "(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* D/ loop_free))",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Invariant files with comments.
    let invs = dir.join("invs.tk");
    std::fs::write(
        &invs,
        "# waypoint\n(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))\n\
         (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* D/ loop_free))\n",
    )
    .unwrap();
    let out = bin()
        .args([
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--invariants",
            invs.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("FAIL") && stdout.contains("PASS"),
        "{stdout}"
    );

    // plan --dot writes GraphViz.
    let dot = dir.join("d.dot");
    let out = bin()
        .args([
            "plan",
            "--network",
            net_path.to_str().unwrap(),
            "--invariant",
            "(dstIP=10.0.0.0/23, [S], (equal, /S .* D/ (== shortest)))",
            "--dot",
            dot.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("local-contract plan"), "{stdout}");
    assert!(std::fs::read_to_string(&dot)
        .unwrap()
        .starts_with("digraph"));

    // Unknown datasets error out.
    let out = bin().args(["datasets", "--name", "NOPE"]).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_dataset_export() {
    let out = bin()
        .args(["datasets", "--name", "INet2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let net: tulkun::netmodel::network::Network = tulkun::json::from_slice(&out.stdout).unwrap();
    assert_eq!(net.topology.num_devices(), 9);
}
