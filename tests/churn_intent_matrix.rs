//! The `ci.sh churn-intent-matrix` gate: substrate equivalence under
//! *overlapping* intent and topology churn.
//!
//! `intent_matrix` holds substrate equivalence for intent churn on a
//! quiet topology; `churn_matrix` holds it for topology churn with a
//! frozen intent set. This suite interleaves both at once — installs
//! and removals racing link/device events, under 10% management-plane
//! loss and mid-sequence `crash_restart` — across the event simulator
//! ([`tulkun::sim::DvmSim`]), the lossy event simulator
//! ([`tulkun::sim::FaultyDvmSim`]) and the per-device-thread runner
//! ([`tulkun::sim::DistributedRun`]).
//!
//! There are no "rejected" arms for intent ops: an install racing a
//! fence *parks* (bounded retry against the next epoch) and an intent
//! whose slice churn severed *degrades* (no verdicts, revived later) —
//! neither surfaces as `PlanError::Unsupported`. After every op the
//! three substrates must agree byte-for-byte and on each intent's
//! lifecycle state (live / parked / degraded / given-up), degradation
//! must equal an independent `plan_intent_on` probe of the effective
//! topology, and the Reports must equal the merged from-scratch
//! verdict of the surviving non-degraded intents on the post-churn
//! network.
//!
//! Run via `./ci.sh churn-intent-matrix` (a release-mode invocation of
//! this file); the same tests also run in the plain workspace pass.

use proptest::prelude::*;
use tulkun::core::churn::{ChurnSchedule, ChurnState, TopologyEvent};
use tulkun::core::count::CountExpr;
use tulkun::core::event::{RuntimeEvent, Substrate};
use tulkun::core::fault::FaultProfile;
use tulkun::core::intent::{plan_intent_on, IntentId, IntentStore};
use tulkun::core::planner::Planner;
use tulkun::core::spec::{Behavior, PathExpr};
use tulkun::core::verify::{Freshness, Report, Session};
use tulkun::netmodel::fib::{Action, MatchSpec, Rule};
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::{DistributedRun, DvmSim, EngineConfig, FaultyDvmSim, LecCache, SimConfig};

/// The fixed CI seed matrix (same as `churn_matrix`/`intent_matrix`).
const SEEDS: [u64; 4] = [1, 7, 23, 101];
/// The loss rates of the acceptance criterion.
const LOSS_RATES: [f64; 2] = [0.0, 0.10];

/// One-behavior reachability invariant over the fig2a packet space,
/// with the first path atom as ingress.
fn invariant(name: &str, expr: &str) -> Invariant {
    Invariant::builder()
        .name(name)
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress([expr.split_whitespace().next().unwrap()])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(expr).unwrap().loop_free(),
        ))
        .build()
        .unwrap()
}

/// The intents a random interleaving may install. `b-way` pins the
/// waypoint B that the device-churn arm takes down, so installs racing
/// that fence exercise parking and live slices exercise degradation.
fn intent_pool() -> Vec<(&'static str, Invariant)> {
    vec![
        ("waypoint", invariant("waypoint", "S .* W .* D")),
        ("a-reach", invariant("a-reach", "A .* D")),
        ("b-way", invariant("b-way", "S .* B .* D")),
    ]
}

/// One step of an interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Install `intent_pool()[i % len]`.
    Install(usize),
    /// Remove the `i % len`-th tracked non-base intent — live, parked
    /// or degraded alike (skipped when none exist).
    Remove(usize),
    /// Toggle B's `10.0.1.0/24` route (withdraw, then restore, ...).
    FibToggle,
    /// A topology churn event.
    Churn(TopologyEvent),
    /// Crash/restart one device's agent between events.
    Crash(DeviceId),
}

fn withdraw_update(net: &Network) -> RuleUpdate {
    RuleUpdate::Remove {
        device: net.topology.expect_device("B"),
        priority: 10,
        matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
    }
}

fn restore_update(net: &Network) -> RuleUpdate {
    RuleUpdate::Insert {
        device: net.topology.expect_device("B"),
        rule: Rule {
            priority: 10,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(net.topology.expect_device("D")),
        },
    }
}

/// The merged from-scratch verdict of the surviving non-degraded
/// intents on the post-churn network: each freshly planned and driven
/// to quiescence alone, violations re-tagged with the live id,
/// concatenated in id order.
fn merged_reference(net: &Network, churn: &ChurnState, intents: &[(u64, Invariant)]) -> Vec<u8> {
    let post = Network {
        topology: churn.apply_to(&net.topology),
        fibs: net.fibs.clone(),
        layout: net.layout,
    };
    let mut all = Vec::new();
    for (id, inv) in intents {
        let plan = Planner::new(&post.topology).plan(inv).unwrap();
        let mut s = Session::new(&post, &plan);
        s.run_to_quiescence();
        let mut r = s.report();
        for v in &mut r.violations {
            v.intent = *id;
        }
        all.extend(r.violations);
    }
    Report {
        violations: all,
        ..Report::default()
    }
    .canonical_bytes()
}

/// Per-intent lifecycle agreement across the three stores, and the
/// surviving evaluated set `(id, invariant)` the reference is built
/// from. Intents every store dropped (parked installs past the retry
/// cap) are pruned from `tracked`.
fn check_lifecycle_agreement(
    stores: [&IntentStore; 3],
    tracked: &mut Vec<(u64, Invariant)>,
    net: &Network,
    churn: &ChurnState,
    ctx: &str,
) -> Vec<(u64, Invariant)> {
    let [a, b, c] = stores;
    let mut evaluated = Vec::new();
    tracked.retain(|(id, inv)| {
        let iid = IntentId(*id);
        let parked = a.is_parked(iid);
        assert_eq!(
            parked,
            b.is_parked(iid),
            "parked skew for intent {id} {ctx}"
        );
        assert_eq!(
            parked,
            c.is_parked(iid),
            "parked skew for intent {id} {ctx}"
        );
        let live = a.get(iid).is_some();
        assert_eq!(
            live,
            b.get(iid).is_some(),
            "live skew for intent {id} {ctx}"
        );
        assert_eq!(
            live,
            c.get(iid).is_some(),
            "live skew for intent {id} {ctx}"
        );
        if parked {
            return true;
        }
        if !live {
            // A parked install that burned its retry budget: every
            // substrate must have given it up together.
            return false;
        }
        let degraded = a.get(iid).unwrap().is_degraded();
        for s in [b, c] {
            assert_eq!(
                degraded,
                s.get(iid).unwrap().is_degraded(),
                "degraded skew for intent {id} {ctx}"
            );
        }
        // Degradation is exactly "the slice no longer plans on the
        // effective topology" — independently recomputed.
        let effective = churn.apply_to(&net.topology);
        assert_eq!(
            degraded,
            plan_intent_on(&effective, inv, churn, None).is_err(),
            "intent {id} degradation disagrees with a fresh plan probe {ctx}"
        );
        if !degraded {
            evaluated.push((*id, inv.clone()));
        }
        true
    });
    evaluated
}

/// Drives one op sequence through all three substrates in lockstep via
/// the unified event API, asserting: no intent op is ever rejected,
/// equal accept/reject for churn events, lifecycle agreement, and
/// byte-identical Reports equal to the merged from-scratch reference
/// after every op.
fn drive_interleaving(ops: &[Op], loss: f64, seed: u64) {
    let net = tulkun::datasets::fig2a_network();
    let base = invariant("reach", "S .* D");
    let pool = intent_pool();

    let plan = Planner::new(&net.topology).plan(&base).unwrap();
    let cp = plan.counting().unwrap().clone();

    // Intents may task devices the base plan skipped, so every
    // substrate gets a verifier per topology device up front.
    let sim_cfg = SimConfig {
        all_devices: true,
        ..SimConfig::default()
    };
    let mut clean = DvmSim::new(&net, &cp, &base.packet_space, sim_cfg.clone());
    clean.burst();
    let mut lossy = FaultyDvmSim::new(
        &net,
        &cp,
        &base.packet_space,
        sim_cfg,
        FaultProfile::loss(seed, loss),
    );
    lossy.burst();
    let ecfg = EngineConfig {
        all_devices: true,
        ..EngineConfig::default()
    };
    let mut threaded =
        DistributedRun::spawn_with(&net, &cp, &base.packet_space, &ecfg, &LecCache::new());
    threaded.quiesce();

    // The model: every admitted intent (live, parked or degraded) plus
    // the base, the cumulative accepted churn, and the current FIBs.
    let mut tracked: Vec<(u64, Invariant)> = vec![(0, base.clone())];
    let mut churn = ChurnState::new();
    let mut net_now = net.clone();
    let mut withdrawn = false;

    for (i, op) in ops.iter().enumerate() {
        let ctx = format!("at op {i} ({op:?}, seed {seed}, loss {loss})");
        match op {
            Op::Install(p) => {
                let (name, inv) = &pool[p % pool.len()];
                let ev = RuntimeEvent::InstallIntent {
                    name: name.to_string(),
                    invariant: inv.clone(),
                };
                // The whole point of the fence-race protocol: installs
                // are *never* rejected, with or without churn in
                // flight.
                let a = clean.apply_event(&ev).unwrap_or_else(|e| {
                    panic!("clean rejected an install {ctx}: {e:?}");
                });
                let b = lossy.apply_event(&ev).unwrap_or_else(|e| {
                    panic!("lossy rejected an install {ctx}: {e:?}");
                });
                let c = threaded.apply_event(&ev).unwrap_or_else(|e| {
                    panic!("threaded rejected an install {ctx}: {e:?}");
                });
                let id = a.intent.expect("install outcome carries the id");
                assert_eq!(b.intent, Some(id), "lossy allocated a different id {ctx}");
                assert_eq!(
                    c.intent,
                    Some(id),
                    "threaded allocated a different id {ctx}"
                );
                assert_eq!(a.parked, b.parked, "parked-outcome skew {ctx}");
                assert_eq!(a.parked, c.parked, "parked-outcome skew {ctx}");
                tracked.push((id.0, inv.clone()));
            }
            Op::Remove(p) => {
                let non_base: Vec<u64> = tracked
                    .iter()
                    .map(|(id, _)| *id)
                    .filter(|id| *id != 0)
                    .collect();
                if non_base.is_empty() {
                    continue;
                }
                let id = non_base[p % non_base.len()];
                let ev = RuntimeEvent::RemoveIntent(IntentId(id));
                // Removal is uniform across lifecycle states: a parked
                // entry is drained from the queue, a degraded record is
                // dropped, a live slice is un-tasked — never an error.
                for (s, r) in [
                    ("clean", clean.apply_event(&ev)),
                    ("lossy", lossy.apply_event(&ev)),
                    ("threaded", threaded.apply_event(&ev)),
                ] {
                    r.unwrap_or_else(|e| panic!("{s} rejected a removal {ctx}: {e:?}"));
                }
                tracked.retain(|(t, _)| *t != id);
            }
            Op::FibToggle => {
                let u = if withdrawn {
                    restore_update(&net)
                } else {
                    withdraw_update(&net)
                };
                withdrawn = !withdrawn;
                let ev = RuntimeEvent::Batch(vec![u.clone()]);
                clean.apply_event(&ev).unwrap();
                lossy.apply_event(&ev).unwrap();
                threaded.apply_event(&ev).unwrap();
                net_now.apply(&u);
            }
            Op::Churn(ev) => {
                let a = clean.apply_topology_event(ev, &net.topology, &base);
                let b = lossy.apply_topology_event(ev, &net.topology, &base);
                let c = threaded.apply_topology_event(ev, &net.topology, &base);
                threaded.quiesce();
                assert_eq!(a.is_ok(), b.is_ok(), "clean/lossy accept divergence {ctx}");
                assert_eq!(
                    a.is_ok(),
                    c.is_ok(),
                    "clean/threaded accept divergence {ctx}"
                );
                if a.is_ok() {
                    churn.apply(ev);
                }
            }
            Op::Crash(dev) => {
                if churn.is_down(*dev) {
                    continue; // a quarantined agent has nothing to crash
                }
                clean.crash_restart(*dev);
                lossy.crash_restart(*dev);
                threaded.crash_restart(*dev);
                threaded.quiesce();
            }
        }

        assert_eq!(clean.epoch(), lossy.epoch(), "epoch skew {ctx}");
        assert_eq!(clean.epoch(), threaded.epoch(), "epoch skew {ctx}");
        let evaluated = check_lifecycle_agreement(
            [clean.intents(), lossy.intents(), threaded.intents()],
            &mut tracked,
            &net_now,
            &churn,
            &ctx,
        );
        let expect = merged_reference(&net_now, &churn, &evaluated);
        assert_eq!(
            clean.report().canonical_bytes(),
            expect,
            "clean Report diverged from merged reference {ctx}"
        );
        assert_eq!(
            lossy.report().canonical_bytes(),
            expect,
            "lossy Report diverged from merged reference {ctx}"
        );
        assert_eq!(
            threaded.report().canonical_bytes(),
            expect,
            "threaded Report diverged from merged reference {ctx}"
        );
    }
    threaded.shutdown().expect("clean shutdown");
}

/// The deterministic CI matrix: installs racing a device-down window
/// (parking + degradation + revival), a crash mid-window, removals of
/// parked entries, and FIB churn, at 0% and 10% loss.
#[test]
fn seed_matrix_overlapping_intent_and_topology_churn() {
    let net = tulkun::datasets::fig2a_network();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let ops = [
        Op::Install(0),
        Op::Churn(TopologyEvent::DeviceDown(b)),
        // Lands on the B-down window: `b-way` cannot plan, so this
        // parks; the already-live `b-way`-free slices keep verdicts.
        Op::Install(2),
        Op::Crash(w),
        Op::Install(1),
        Op::FibToggle,
        Op::Remove(1),
        Op::Churn(TopologyEvent::DeviceUp(b)),
        Op::Install(2),
        Op::FibToggle,
    ];
    for seed in SEEDS {
        for loss in LOSS_RATES {
            drive_interleaving(&ops, loss, seed);
        }
    }
}

/// A removal landing while its install is still parked behind the
/// fence must drain the pending entry, not error — uniformly across
/// substrates (the regression arm of the `remove-while-parked` fix).
#[test]
fn remove_while_parked_drains_the_pending_queue_everywhere() {
    let net = tulkun::datasets::fig2a_network();
    let b = net.topology.expect_device("B");
    let ops = [
        Op::Churn(TopologyEvent::DeviceDown(b)),
        Op::Install(2), // parks: b-way cannot plan while B is down
        Op::Remove(0),  // removes the parked entry
        Op::Churn(TopologyEvent::DeviceUp(b)),
    ];
    drive_interleaving(&ops, 0.10, 23);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_overlapping_interleavings_stay_byte_identical(
        (raw, schedule_seed, loss_idx, device_churn, crash_pos) in (
            proptest::collection::vec((0usize..5, 0usize..4), 2..8),
            1u64..512,
            0usize..2,
            any::<bool>(),
            0usize..8,
        )
    ) {
        let net = tulkun::datasets::fig2a_network();
        let base = invariant("reach", "S .* D");
        let schedule = ChurnSchedule::seeded(&net.topology, &base, schedule_seed, 4).0;
        let mut link_events = schedule.into_iter();
        let b = net.topology.expect_device("B");
        let w = net.topology.expect_device("W");

        let mut ops: Vec<Op> = raw
            .into_iter()
            .map(|(kind, idx)| match kind {
                0 => Op::Install(idx),
                1 => Op::Remove(idx),
                2 => Op::FibToggle,
                _ => match link_events.next() {
                    Some(ev) => Op::Churn(ev),
                    None => Op::Install(idx),
                },
            })
            .collect();
        if device_churn {
            let at = ops.len() / 2;
            ops.insert(at, Op::Churn(TopologyEvent::DeviceDown(b)));
            ops.push(Op::Churn(TopologyEvent::DeviceUp(b)));
        }
        ops.insert(crash_pos.min(ops.len()), Op::Crash(w));
        drive_interleaving(&ops, LOSS_RATES[loss_idx], schedule_seed);
    }
}

/// The acceptance scenario: eight intents installed around a
/// LinkDown/LinkUp pair under 10% loss. Zero `PlanError::Unsupported`
/// anywhere, every surviving intent ends `Fresh`, no install is left
/// parked once the link is back, and the three substrates' Reports are
/// byte-identical throughout (held per-op by `drive_interleaving`).
#[test]
fn eight_intents_survive_a_link_flap_under_loss() {
    let net = tulkun::datasets::fig2a_network();
    let base = invariant("reach", "S .* D");
    let a = net.topology.expect_device("A");
    let b = net.topology.expect_device("B");

    let mut ops: Vec<Op> = (0..4).map(Op::Install).collect();
    ops.push(Op::Churn(TopologyEvent::LinkDown(a, b)));
    ops.extend((4..6).map(Op::Install));
    ops.push(Op::Churn(TopologyEvent::LinkUp(a, b)));
    ops.extend((6..8).map(Op::Install));
    drive_interleaving(&ops, 0.10, 7);

    // Re-drive one substrate to inspect the end state: the flap is
    // net-zero, so nothing may stay parked, degraded or stale.
    let plan = Planner::new(&net.topology).plan(&base).unwrap();
    let cp = plan.counting().unwrap().clone();
    let sim_cfg = SimConfig {
        all_devices: true,
        ..SimConfig::default()
    };
    let mut sim = FaultyDvmSim::new(
        &net,
        &cp,
        &base.packet_space,
        sim_cfg,
        FaultProfile::loss(7, 0.10),
    );
    sim.burst();
    let pool = intent_pool();
    let mut survivors = 1; // the base intent
    for op in &ops {
        match op {
            Op::Install(p) => {
                let (name, inv) = &pool[p % pool.len()];
                sim.install_intent(name, inv)
                    .expect("install never rejects");
                survivors += 1;
            }
            Op::Churn(ev) => {
                sim.apply_topology_event(ev, &net.topology, &base)
                    .expect("flap is plannable");
            }
            _ => unreachable!("the flap script only installs and churns"),
        }
    }
    assert_eq!(
        sim.intents().parked_count(),
        0,
        "a parked install outlived the flap"
    );
    assert_eq!(
        sim.intents().degraded_count(),
        0,
        "a degraded slice outlived the flap"
    );
    assert_eq!(sim.intents().live().count(), survivors);
    let report = sim.report();
    assert!(
        report
            .freshness
            .iter()
            .all(|(_, f)| matches!(f, Freshness::Fresh)),
        "a surviving intent is not Fresh after the flap: {:?}",
        report.freshness
    );
}
