//! End-to-end tests of the daemon session protocol: a scripted
//! 500-batch × churn × query session on tiny INet2, driven through the
//! exact line protocol `tulkun daemon` speaks, must leave the service
//! in a state byte-equal to applying the same events directly to a
//! fresh simulator — the daemon adds liveness, never semantics. Held
//! clean and over a 10% lossy management network, plus a smoke test of
//! the real binary over a stdin pipe.

use std::process::{Command, Stdio};

use tulkun::core::churn::{ChurnSchedule, TopologyEvent};
use tulkun::core::fault::FaultProfile;
use tulkun::daemon::{dataset_session, DaemonConfig, DaemonSession};
use tulkun::sim::{DvmSim, ServiceConfig, SimConfig};

/// Renders a churn event as its protocol line from source `src`.
fn churn_line(
    topo: &tulkun::netmodel::topology::Topology,
    src: &str,
    ev: &TopologyEvent,
) -> String {
    match ev {
        TopologyEvent::LinkDown(a, b) => {
            format!("churn {src} link-down {} {}", topo.name(*a), topo.name(*b))
        }
        TopologyEvent::LinkUp(a, b) => {
            format!("churn {src} link-up {} {}", topo.name(*a), topo.name(*b))
        }
        TopologyEvent::DeviceDown(d) => format!("churn {src} device-down {}", topo.name(*d)),
        TopologyEvent::DeviceUp(d) => format!("churn {src} device-up {}", topo.name(*d)),
    }
}

/// Drives a scripted session through [`DaemonSession::handle_line`] and
/// asserts the final drained Report is byte-equal to a direct replay.
///
/// All requests come from one source, so per-source FIFO makes the
/// apply order equal the script order and the reference replay exact.
fn run_scripted_session(batches: usize, faults: Option<FaultProfile>) {
    let cfg = DaemonConfig {
        service: ServiceConfig {
            faults,
            ..ServiceConfig::default()
        },
        ..DaemonConfig::default()
    };
    let mut session = DaemonSession::new(cfg).expect("daemon session");
    let topo = session.topology().clone();

    let ds = tulkun::datasets::by_name("INet2", tulkun::datasets::Scale::Tiny).unwrap();
    let (inv, cp) = dataset_session(&ds.network, "INet2").unwrap();
    let trace = tulkun::datasets::rule_updates(&ds.network, batches, 13);
    let churn = ChurnSchedule::seeded(&topo, &inv, 17, batches / 25).0;

    // The script: one batch line per update; every 25th batch is
    // followed by a churn event; every 10th by a drain; every 50th by
    // the invariant queries (report/status/slo). All single-source.
    let mut script: Vec<String> = Vec::new();
    let mut churn_events = churn.iter();
    let mut expected: Vec<Result<Vec<tulkun::netmodel::network::RuleUpdate>, TopologyEvent>> =
        Vec::new();
    for (i, up) in trace.iter().enumerate() {
        let batch = vec![up.clone()];
        script.push(format!("batch cp {}", tulkun::json::to_string(&batch)));
        expected.push(Ok(batch));
        if (i + 1) % 25 == 0 {
            if let Some(ev) = churn_events.next() {
                script.push(churn_line(&topo, "cp", ev));
                expected.push(Err(*ev));
            }
        }
        if (i + 1) % 10 == 0 {
            script.push("drain".into());
        }
        if (i + 1) % 50 == 0 {
            script.push("# mid-session invariant queries".into());
            script.push("report".into());
            script.push("status".into());
            script.push("slo".into());
        }
    }
    script.push("drain".into());

    for line in &script {
        if let Some(reply) = session.handle_line(line) {
            assert!(
                reply.text.starts_with("ok "),
                "request {line:?} failed: {}",
                reply.text
            );
        }
    }
    let final_report = session
        .handle_line("report")
        .expect("report reply")
        .text
        .strip_prefix("ok ")
        .expect("report is ok")
        .to_string();

    // Direct replay of the same script against a fresh clean simulator
    // (the lossy session must converge to the clean fixpoint).
    let mut reference = DvmSim::new(&ds.network, &cp, &inv.packet_space, SimConfig::default());
    reference.burst();
    for step in &expected {
        match step {
            Ok(batch) => {
                reference.apply_batch(batch);
            }
            // Planner-rejected events change nothing on either side.
            Err(ev) => {
                let _ = reference.apply_topology_event(ev, &topo, &inv);
            }
        }
    }
    let reference_report =
        String::from_utf8(reference.report().canonical_bytes()).expect("utf8 report");
    assert_eq!(
        final_report, reference_report,
        "daemon diverged from direct replay"
    );

    let status = session.service_mut().status();
    assert_eq!(status.queued, 0, "final drain left work queued");
    assert_eq!(
        status.shed, 0,
        "single-source script under the cap never sheds"
    );
    assert!(
        status.processed as usize >= batches,
        "all batches processed"
    );
}

#[test]
fn scripted_session_matches_direct_replay() {
    run_scripted_session(500, None);
}

#[test]
fn scripted_session_matches_clean_replay_under_loss() {
    run_scripted_session(200, Some(FaultProfile::loss(23, 0.10)));
}

/// The intent spec line a client would send for a one-ingress subset
/// intent toward the dataset's external destination (same
/// outcome-vector shape as the base session).
fn narrow_intent_spec(topo: &tulkun::netmodel::topology::Topology) -> String {
    let (dst, _) = topo.external_map().next().expect("external dst");
    let dst_name = topo.name(dst);
    let prefix = topo.external_prefixes(dst)[0];
    let ingress = topo
        .devices()
        .find(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .expect("an ingress");
    format!("(dstIP={prefix}, [{ingress}], (subset, /. * {dst_name}/ loop_free (<= shortest+2)))")
}

#[test]
fn intent_protocol_round_trips() {
    let mut session = DaemonSession::new(DaemonConfig::default()).expect("daemon session");
    let spec = narrow_intent_spec(&session.topology().clone());
    let payload = format!(
        "{{\"name\":\"narrow\",\"spec\":{}}}",
        tulkun::json::to_string(spec.as_str())
    );

    let ok = |r: Option<tulkun::daemon::Reply>| {
        let r = r.expect("reply");
        assert!(r.text.starts_with("ok "), "{}", r.text);
        r.text
    };
    let err = |r: Option<tulkun::daemon::Reply>| {
        let r = r.expect("reply");
        assert!(r.text.starts_with("err "), "{}", r.text);
        r.text
    };

    ok(session.handle_line(&format!("intent add ops {payload}")));
    ok(session.handle_line("drain"));
    let status = ok(session.handle_line("status"));
    assert!(status.contains("\"intent_count\":2"), "{status}");
    assert!(status.contains("\"rejected_intents\":0"), "{status}");
    assert!(status.contains("\"name\":\"narrow\""), "{status}");

    ok(session.handle_line("intent remove ops 1"));
    ok(session.handle_line("drain"));
    let status = ok(session.handle_line("status"));
    assert!(status.contains("\"intent_count\":1"), "{status}");
    assert!(status.contains("\"rejected_intents\":0"), "{status}");

    // Malformed requests are rejected with a reason, not admitted.
    err(session.handle_line("intent add ops notjson"));
    err(session.handle_line("intent add ops {\"name\":\"x\"}"));
    err(session.handle_line("intent remove ops twelve"));
    err(session.handle_line("intent frobnicate ops 1"));
    // Removing the base session is admitted but rejected at apply time.
    ok(session.handle_line("intent remove ops 0"));
    ok(session.handle_line("drain"));
    let status = ok(session.handle_line("status"));
    assert!(status.contains("\"rejected_intents\":1"), "{status}");
    assert!(status.contains("\"intent_count\":1"), "{status}");
}

#[test]
fn daemon_binary_speaks_the_protocol_over_stdin() {
    // A real batch for the wire: one insert on the INet2 dataset.
    let ds = tulkun::datasets::by_name("INet2", tulkun::datasets::Scale::Tiny).unwrap();
    let update = tulkun::datasets::rule_updates(&ds.network, 1, 5).remove(0);
    let batch_json = tulkun::json::to_string(&vec![update]);

    let intent_json = format!(
        "{{\"name\":\"narrow\",\"spec\":{}}}",
        tulkun::json::to_string(narrow_intent_spec(&ds.network.topology).as_str())
    );
    let script = format!(
        "# smoke script\n\
         status\n\
         batch ops {batch_json}\n\
         churn net link-down SEAT LOSA\n\
         drain\n\
         report\n\
         slo\n\
         intent add ops {intent_json}\n\
         intent remove ops 1\n\
         drain\n\
         badcmd\n\
         quit\n"
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_tulkun"))
        .args(["daemon", "--name", "INet2", "--scale", "tiny"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    use std::io::Write;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("daemon run");
    assert!(
        out.status.success(),
        "daemon exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let replies: Vec<&str> = stdout.lines().collect();
    // Comment swallowed; 11 requests → 11 replies.
    assert_eq!(replies.len(), 11, "unexpected replies: {stdout}");
    assert!(
        replies[0].starts_with("ok {\"admitted\""),
        "status: {}",
        replies[0]
    );
    assert!(
        replies[1].starts_with("ok admitted=1"),
        "batch: {}",
        replies[1]
    );
    assert!(
        replies[2].starts_with("ok queued="),
        "churn: {}",
        replies[2]
    );
    assert!(
        replies[3].starts_with("ok processed=2"),
        "drain: {}",
        replies[3]
    );
    assert!(replies[4].starts_with("ok ["), "report: {}", replies[4]);
    assert!(replies[5].starts_with("ok {\"ok\""), "slo: {}", replies[5]);
    assert!(
        replies[6].starts_with("ok queued="),
        "intent add: {}",
        replies[6]
    );
    assert!(
        replies[7].starts_with("ok queued="),
        "intent remove: {}",
        replies[7]
    );
    assert!(
        replies[8].starts_with("ok processed=2"),
        "drain: {}",
        replies[8]
    );
    assert!(
        replies[9].starts_with("err unknown request"),
        "badcmd: {}",
        replies[9]
    );
    assert_eq!(replies[10], "ok bye");
}
