//! Batched-update equivalence: applying a burst of FIB updates as one
//! coalesced [`UpdateBatch`] must yield Reports *byte-identical* to
//! applying the same updates one at a time — on every substrate, at
//! every batch boundary, and over a lossy management network. Batching
//! changes how much work is done (one LEC delta and one coalesced
//! UPDATE per device per batch), never the verdict.

use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::Planner;
use tulkun::core::verify::Session;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::{RuleUpdate, UpdateBatch};
use tulkun::prelude::*;
use tulkun::sim::runtime::{Engine, FifoTransport, InstantClock, LecCache};
use tulkun::sim::{DistributedRun, DvmSim, EngineConfig, FaultyDvmSim, SimConfig};

const SEEDS: [u64; 3] = [1, 7, 23];

fn fig2_setup() -> (Network, Invariant) {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    (net, inv)
}

/// The Fig. 2 repair: B forwards the broken /24 to the waypoint.
fn repair(net: &Network) -> RuleUpdate {
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    }
}

/// A per-destination reachability invariant on a dataset network.
fn dataset_setup(name: &str) -> (Network, Invariant) {
    let ds = tulkun::datasets::by_name(name, tulkun::datasets::Scale::Tiny).unwrap();
    let net = ds.network.clone();
    let topo = &net.topology;
    let (dst, prefix) = topo.external_map().next().unwrap();
    let dst_name = topo.name(dst).to_string();
    let ingress: Vec<String> = topo
        .devices()
        .filter(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .collect();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::DstPrefix(prefix))
        .ingress(ingress)
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(&format!(". * {dst_name}"))
                .unwrap()
                .loop_free(),
        ))
        .build()
        .unwrap();
    (net, inv)
}

#[test]
fn batched_matches_sequential_over_seeded_traces() {
    // Chunked batches vs one-at-a-time: byte-identical at every batch
    // boundary, for seeded random churn traces.
    let (net, inv) = dataset_setup("INet2");
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    for seed in SEEDS {
        let trace = tulkun::datasets::rule_updates(&net, 24, seed);
        let mut seq = Session::new(&net, &plan);
        seq.run_to_quiescence();
        let mut bat = Session::new(&net, &plan);
        bat.run_to_quiescence();
        for (i, chunk) in trace.chunks(6).enumerate() {
            for u in chunk {
                seq.apply_rule_update(u);
            }
            bat.apply_batch(chunk);
            assert_eq!(
                seq.report().canonical_bytes(),
                bat.report().canonical_bytes(),
                "seed {seed}: batched Report diverged after chunk {i}"
            );
        }
    }
}

#[test]
fn batched_trace_agrees_across_substrates() {
    // The same chunked trace on the engine substrates: final Reports
    // byte-identical to the sequential reference Session.
    let (net, inv) = dataset_setup("INet2");
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    for seed in SEEDS {
        let trace = tulkun::datasets::rule_updates(&net, 18, seed);

        let mut reference = Session::new(&net, &plan);
        reference.run_to_quiescence();
        for u in &trace {
            reference.apply_rule_update(u);
        }
        let expect = reference.report().canonical_bytes();

        let cache = LecCache::new();
        let mut engine = Engine::new_cached(
            &net,
            cp,
            &inv.packet_space,
            &EngineConfig::default(),
            &cache,
            FifoTransport::default(),
            InstantClock,
        );
        engine.burst();
        for chunk in trace.chunks(6) {
            engine.apply_batch(chunk);
        }
        assert_eq!(
            engine.report().canonical_bytes(),
            expect,
            "seed {seed}: fifo engine batched trace"
        );

        let mut sim = DvmSim::new(&net, cp, &inv.packet_space, SimConfig::default());
        sim.burst();
        for chunk in trace.chunks(6) {
            sim.apply_batch(chunk);
        }
        assert_eq!(
            sim.report().canonical_bytes(),
            expect,
            "seed {seed}: event sim batched trace"
        );
    }
}

#[test]
fn insert_then_remove_cancels_inside_a_batch() {
    // A batch that inserts a blackhole, repairs the route, and removes
    // the blackhole again: coalescing drops the cancelled insert, and
    // the verdict matches sequential application exactly.
    let (net, inv) = fig2_setup();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let b = net.topology.expect_device("B");
    let blackhole = Rule {
        priority: 99,
        matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
        action: Action::Drop,
    };
    let updates = vec![
        RuleUpdate::Insert {
            device: b,
            rule: blackhole.clone(),
        },
        repair(&net),
        RuleUpdate::Remove {
            device: b,
            priority: blackhole.priority,
            matches: blackhole.matches,
        },
    ];
    // Coalescing must cancel the insert: B's group is [repair, remove].
    let batch: UpdateBatch = updates.iter().cloned().collect();
    let groups = batch.coalesced();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].1.len(), 2, "cancelled insert must not survive");

    let mut seq = Session::new(&net, &plan);
    seq.run_to_quiescence();
    for u in &updates {
        seq.apply_rule_update(u);
    }
    let mut bat = Session::new(&net, &plan);
    bat.run_to_quiescence();
    bat.apply_batch(&updates);
    let expect = seq.report().canonical_bytes();
    assert_eq!(bat.report().canonical_bytes(), expect);
    assert!(bat.report().holds(), "repaired network must verify");
}

#[test]
fn multi_device_batch_agrees_on_all_four_substrates() {
    // One batch touching two devices (the B repair plus a redundant S
    // route refresh): Session, fifo engine, event sim and the threaded
    // runner all converge to byte-identical Reports.
    let (net, inv) = fig2_setup();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    let s = net.topology.expect_device("S");
    let a = net.topology.expect_device("A");
    let updates = vec![
        repair(&net),
        RuleUpdate::Insert {
            device: s,
            rule: Rule {
                priority: 60,
                matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
                action: Action::fwd(a),
            },
        },
    ];

    let mut reference = Session::new(&net, &plan);
    reference.run_to_quiescence();
    reference.apply_batch(&updates);
    let expect = reference.report().canonical_bytes();
    assert!(reference.report().holds());

    let cache = LecCache::new();
    let mut engine = Engine::new_cached(
        &net,
        cp,
        &inv.packet_space,
        &EngineConfig::default(),
        &cache,
        FifoTransport::default(),
        InstantClock,
    );
    engine.burst();
    engine.apply_batch(&updates);
    assert_eq!(engine.report().canonical_bytes(), expect, "fifo engine");

    let mut sim = DvmSim::new(&net, cp, &inv.packet_space, SimConfig::default());
    sim.burst();
    sim.apply_batch(&updates);
    assert_eq!(sim.report().canonical_bytes(), expect, "event sim");

    let run = DistributedRun::spawn(&net, cp, &inv.packet_space);
    run.quiesce();
    run.inject_batch(updates);
    run.quiesce();
    assert_eq!(run.report().canonical_bytes(), expect, "threaded runner");
    run.shutdown().expect("clean shutdown");
}

#[test]
fn batched_burst_survives_ten_percent_loss() {
    // The fault-matrix extension: a multi-device batch applied over a
    // 10% lossy channel still converges to the perfect-channel bytes.
    let (net, inv) = fig2_setup();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    let s = net.topology.expect_device("S");
    let a = net.topology.expect_device("A");
    let updates = vec![
        repair(&net),
        RuleUpdate::Insert {
            device: s,
            rule: Rule {
                priority: 60,
                matches: MatchSpec::dst("10.0.0.0/23".parse().unwrap()),
                action: Action::fwd(a),
            },
        },
    ];

    let mut clean = DvmSim::new(&net, cp, &inv.packet_space, SimConfig::default());
    clean.burst();
    clean.apply_batch(&updates);
    let expect = clean.report().canonical_bytes();

    for seed in SEEDS {
        let mut sim = FaultyDvmSim::new(
            &net,
            cp,
            &inv.packet_space,
            SimConfig::default(),
            FaultProfile::loss(seed, 0.10),
        );
        sim.burst();
        sim.apply_batch(&updates);
        assert_eq!(
            sim.report().canonical_bytes(),
            expect,
            "seed {seed}: batched Report diverged under 10% loss"
        );
    }
}
