//! The compound-invariant constructions of §4.3: the union DPVNet for
//! different destinations (Figure 5) and the virtual-destination
//! handling rationale for same destinations (Figure 6). Both strawmen
//! the paper refutes would raise false positives; Tulkun's construction
//! must not.

use tulkun::core::spec::table1;
use tulkun::prelude::*;

#[test]
fn fig5_anycast_union_dpvnet_no_false_positive() {
    // Fig. 5a: S → {A → D | B → E} with an ANY split at S: in every
    // universe the packet reaches exactly one of D, E.
    let net = tulkun::datasets::fig5a_network();
    let inv = table1::anycast(PacketSpace::dst_prefix("10.1.0.0/24"), "S", "D", "E").unwrap();
    let planner = Planner::with_options(
        &net.topology,
        tulkun::core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let plan = planner.plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    // One union DPVNet carrying both expressions.
    assert_eq!(cp.exprs.len(), 2);
    assert_eq!(cp.vec_dim(), 2);
    let report = verify_snapshot(&net, &plan);
    assert!(
        report.holds(),
        "anycast holds on Fig. 5a — the per-destination cross product \
         would wrongly flag it: {:?}",
        report.violations
    );
}

#[test]
fn fig5_anycast_detects_real_violation() {
    // Break it: S replicates to both sides (ALL) → both D and E get a
    // copy → anycast genuinely violated.
    let mut net = tulkun::datasets::fig5a_network();
    let s = net.topology.expect_device("S");
    let a = net.topology.expect_device("A");
    let b = net.topology.expect_device("B");
    net.apply(&tulkun::netmodel::network::RuleUpdate::Insert {
        device: s,
        rule: Rule {
            priority: 99,
            matches: tulkun::netmodel::fib::MatchSpec::dst("10.1.0.0/24".parse().unwrap()),
            action: Action::fwd_all([a, b]),
        },
    });
    let inv = table1::anycast(PacketSpace::dst_prefix("10.1.0.0/24"), "S", "D", "E").unwrap();
    let planner = Planner::with_options(
        &net.topology,
        tulkun::core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let plan = planner.plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(!report.holds());
}

#[test]
fn fig6_same_destination_no_phantom_error() {
    // Fig. 6a: S replicates to A (→W→D) and B (→D). The invariant
    // "2 copies reach D on simple paths, OR 1 copy reaches D through W"
    // holds; separate per-expression DPVNets cross-multiplied would
    // raise a phantom error. The union construction keeps universes
    // joint, so no false positive.
    let net = tulkun::datasets::fig6a_network();
    let p_simple = PathExpr::parse("S .* D").unwrap().loop_free();
    let p_way = PathExpr::parse("S .* W .* D").unwrap().loop_free();
    let inv = Invariant::builder()
        .name("fig6 compound")
        .packet_space(PacketSpace::dst_prefix("10.2.0.0/24"))
        .ingress(["S"])
        .behavior(
            Behavior::exist(CountExpr::ge(2), p_simple)
                .or(Behavior::exist(CountExpr::ge(1), p_way)),
        )
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    assert_eq!(cp.vec_dim(), 2);
    let report = verify_snapshot(&net, &plan);
    assert!(report.holds(), "{:?}", report.violations);
}

#[test]
fn fig6_detects_real_violation_when_both_branches_fail() {
    // Drop the B branch: only 1 simple-path copy arrives, but it goes
    // through W, so the invariant still holds (branch 2). Then also
    // break the waypoint branch by dropping at W: nothing holds.
    let mut net = tulkun::datasets::fig6a_network();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let m = tulkun::netmodel::fib::MatchSpec::dst("10.2.0.0/24".parse().unwrap());
    net.apply(&tulkun::netmodel::network::RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 99,
            matches: m,
            action: Action::Drop,
        },
    });
    let p_simple = PathExpr::parse("S .* D").unwrap().loop_free();
    let p_way = PathExpr::parse("S .* W .* D").unwrap().loop_free();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.2.0.0/24"))
        .ingress(["S"])
        .behavior(
            Behavior::exist(CountExpr::ge(2), p_simple)
                .or(Behavior::exist(CountExpr::ge(1), p_way)),
        )
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    assert!(
        verify_snapshot(&net, &plan).holds(),
        "waypoint branch still satisfies"
    );

    net.apply(&tulkun::netmodel::network::RuleUpdate::Insert {
        device: w,
        rule: Rule {
            priority: 99,
            matches: m,
            action: Action::Drop,
        },
    });
    assert!(!verify_snapshot(&net, &plan).holds());
}

#[test]
fn multicast_needs_joint_universes_too() {
    // On Fig. 2a, multicast S → {B?, D} with the ANY split: there is a
    // universe where B receives nothing (the W branch), so multicast to
    // {B, D} must fail even though each destination is reachable in
    // *some* universe — exactly the all-universes semantics.
    let net = tulkun::datasets::fig2a_network();
    let inv = table1::multicast(
        PacketSpace::dst_prefix("10.0.1.0/24").and(PacketSpace::dst_port(80)),
        "S",
        &["B", "D"],
    )
    .unwrap();
    let planner = Planner::with_options(
        &net.topology,
        tulkun::core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let plan = planner.plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(!report.holds());
}
