//! Cross-substrate equivalence: every execution substrate the runtime
//! layer hosts must produce the *same verdict, byte for byte* for the
//! Figure 2a waypoint workflow — before and after the repair update.
//!
//! Substrates compared against the reference `Session`:
//! * `Engine<FifoTransport, InstantClock>` — reference semantics on the
//!   shared engine loop,
//! * `DvmSim` — discrete-event simulator (latency heap + virtual clock),
//! * `DistributedRun` — one OS thread per device, channel transport.
//!
//! The local-contract substrate cannot express the waypoint counting
//! invariant (it needs DVM counting), so a second test pins the local
//! path against `verify_snapshot` on a plan where it applies.

use tulkun::core::planner::Planner;
use tulkun::core::verify::Session;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::runtime::{Engine, FifoTransport, InstantClock, LecCache};
use tulkun::sim::{DistributedRun, DvmSim, EngineConfig, SimConfig};

fn fig2_setup() -> (Network, Invariant, RuleUpdate) {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    (net, inv, update)
}

#[test]
fn all_substrates_agree_byte_for_byte() {
    let (net, inv, update) = fig2_setup();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();

    // Reference: the core DVM session.
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    let ref_before = session.report().canonical_bytes();
    session.apply_rule_update(&update);
    let ref_after = session.report().canonical_bytes();
    assert_ne!(ref_before, ref_after, "repair update must change verdict");

    // Engine with reference FIFO transport and zero-cost clock.
    let cache = LecCache::new();
    let mut engine = Engine::new_cached(
        &net,
        cp,
        &inv.packet_space,
        &EngineConfig::default(),
        &cache,
        FifoTransport::default(),
        InstantClock,
    );
    engine.burst();
    assert_eq!(
        engine.report().canonical_bytes(),
        ref_before,
        "fifo engine, burst"
    );
    engine.incremental(&update);
    assert_eq!(
        engine.report().canonical_bytes(),
        ref_after,
        "fifo engine, update"
    );

    // Discrete-event simulator (latency-ordered delivery, virtual time).
    let mut sim = DvmSim::new(&net, cp, &inv.packet_space, SimConfig::default());
    sim.burst();
    assert_eq!(
        sim.report().canonical_bytes(),
        ref_before,
        "event sim, burst"
    );
    sim.incremental(&update);
    assert_eq!(
        sim.report().canonical_bytes(),
        ref_after,
        "event sim, update"
    );

    // Threaded runner: real concurrency, nondeterministic interleaving —
    // the verdict must still converge to the same bytes.
    let run = DistributedRun::spawn(&net, cp, &inv.packet_space);
    run.quiesce();
    assert_eq!(
        run.report().canonical_bytes(),
        ref_before,
        "threaded, burst"
    );
    run.inject_update(update);
    run.quiesce();
    assert_eq!(
        run.report().canonical_bytes(),
        ref_after,
        "threaded, update"
    );
    run.shutdown().expect("clean shutdown");
}

#[test]
fn local_contract_substrate_agrees_where_applicable() {
    use tulkun::core::spec::table1;
    use tulkun::sim::localsim::LocalSim;
    use tulkun::sim::models::SwitchModel;

    let d = tulkun::datasets::by_name("FT-48", tulkun::datasets::Scale::Tiny).unwrap();
    let (dst, prefix) = d.network.topology.external_map().next().unwrap();
    let dst_name = d.network.topology.name(dst).to_string();
    let src = d
        .network
        .topology
        .devices()
        .find(|x| d.network.topology.name(*x).starts_with("tor") && *x != dst)
        .unwrap();
    let src_name = d.network.topology.name(src).to_string();
    let inv =
        table1::all_shortest_path(PacketSpace::DstPrefix(prefix), &src_name, &dst_name).unwrap();
    let plan = Planner::new(&d.network.topology).plan(&inv).unwrap();
    let lp = plan
        .local()
        .expect("shortest-path plan lowers to local contracts");

    let reference = verify_snapshot(&d.network, &plan);
    let mut sim = LocalSim::new(
        &d.network,
        lp,
        &plan.invariant.packet_space,
        SwitchModel::MELLANOX,
    );
    let r = sim.burst();
    assert_eq!(r.violations.is_empty(), reference.holds());
    assert_eq!(r.violations.len(), reference.violations.len());
}
