//! The `ci.sh churn-matrix` gate: substrate equivalence under live
//! topology churn.
//!
//! Random interleavings of churn events (seeded link schedules plus
//! device down/up), message loss in {0%, 10%}, and mid-sequence
//! `crash_restart` are driven simultaneously against the event
//! simulator ([`tulkun::sim::DvmSim`]), the lossy event simulator
//! ([`tulkun::sim::FaultyDvmSim`]) and the per-device-thread runner
//! ([`tulkun::sim::DistributedRun`]). After every interleaving the
//! epoch-final Reports must be *byte-identical* across substrates and
//! — for the reachable portion of the network — identical to a fresh
//! plan of the post-churn topology. Any divergence is a protocol bug
//! in the epoch fence, the incremental re-planner, or the reliability
//! layer.
//!
//! Run via `./ci.sh churn-matrix` (a release-mode invocation of this
//! file); the same tests also run in the plain workspace test pass.

use proptest::prelude::*;
use tulkun::core::churn::{ChurnSchedule, ChurnState, TopologyEvent};
use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::Planner;
use tulkun::prelude::*;
use tulkun::sim::{DistributedRun, DvmSim, FaultyDvmSim, SimConfig};

/// The fixed CI seed matrix (same as `fault_matrix`).
const SEEDS: [u64; 4] = [1, 7, 23, 101];
/// The loss rates of the churn acceptance criterion.
const LOSS_RATES: [f64; 2] = [0.0, 0.10];

fn fig2_setup() -> (Network, Invariant) {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    (net, inv)
}

/// One step of an interleaving: a topology churn event or a device
/// crash/restart between events.
#[derive(Debug, Clone)]
enum Op {
    Churn(TopologyEvent),
    Crash(DeviceId),
}

/// Builds the op sequence for one case: the seeded link schedule,
/// optionally a device-down/up pair around the midpoint, and a
/// crash/restart of W spliced in at `crash_pos`.
fn build_ops(
    net: &Network,
    inv: &Invariant,
    schedule_seed: u64,
    events: usize,
    device_churn: bool,
    crash_pos: usize,
) -> Vec<Op> {
    let schedule = ChurnSchedule::seeded(&net.topology, inv, schedule_seed, events);
    let mut ops: Vec<Op> = schedule.0.into_iter().map(Op::Churn).collect();
    if device_churn {
        let b = net.topology.expect_device("B");
        let at = ops.len() / 2;
        ops.insert(at, Op::Churn(TopologyEvent::DeviceDown(b)));
        ops.push(Op::Churn(TopologyEvent::DeviceUp(b)));
    }
    let w = net.topology.expect_device("W");
    ops.insert(crash_pos.min(ops.len()), Op::Crash(w));
    ops
}

/// Report bytes from a fresh plan + burst of the post-churn topology —
/// the ground truth the churned engines must converge to.
fn fresh_report_bytes(net: &Network, inv: &Invariant, churn: &ChurnState) -> Option<Vec<u8>> {
    let topo = churn.apply_to(&net.topology);
    let post = Network {
        topology: topo,
        fibs: net.fibs.clone(),
        layout: net.layout,
    };
    let plan = Planner::new(&post.topology).plan(inv).ok()?;
    let cp = plan.counting()?.clone();
    let mut sim = DvmSim::new(&post, &cp, &inv.packet_space, SimConfig::default());
    sim.burst();
    Some(sim.report().canonical_bytes())
}

/// Drives one op sequence through all three substrates in lockstep,
/// asserting equal accept/reject per event, byte-identical Reports
/// after every op, and an epoch-final Report equal to a fresh plan of
/// the post-churn topology.
fn drive_interleaving(net: &Network, inv: &Invariant, ops: &[Op], loss: f64, seed: u64) {
    let plan = Planner::new(&net.topology).plan(inv).unwrap();
    let cp = plan.counting().unwrap().clone();

    let mut clean = DvmSim::new(net, &cp, &inv.packet_space, SimConfig::default());
    clean.burst();
    let mut lossy = FaultyDvmSim::new(
        net,
        &cp,
        &inv.packet_space,
        SimConfig::default(),
        FaultProfile::loss(seed, loss),
    );
    lossy.burst();
    let mut threaded = DistributedRun::spawn(net, &cp, &inv.packet_space);
    threaded.quiesce();

    let mut churn = ChurnState::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Churn(ev) => {
                let a = clean.apply_topology_event(ev, &net.topology, inv);
                let b = lossy.apply_topology_event(ev, &net.topology, inv);
                let c = threaded.apply_topology_event(ev, &net.topology, inv);
                threaded.quiesce();
                assert_eq!(
                    a.is_ok(),
                    b.is_ok(),
                    "clean/lossy accept divergence at op {i} ({ev:?}, seed {seed}, loss {loss})"
                );
                assert_eq!(
                    a.is_ok(),
                    c.is_ok(),
                    "clean/threaded accept divergence at op {i} ({ev:?}, seed {seed}, loss {loss})"
                );
                if a.is_ok() {
                    churn.apply(ev);
                }
            }
            Op::Crash(dev) => {
                if churn.is_down(*dev) {
                    continue; // a quarantined agent has nothing to crash
                }
                clean.crash_restart(*dev);
                lossy.crash_restart(*dev);
                threaded.crash_restart(*dev);
                threaded.quiesce();
            }
        }
        assert_eq!(clean.epoch(), lossy.epoch(), "epoch skew at op {i}");
        assert_eq!(clean.epoch(), threaded.epoch(), "epoch skew at op {i}");
        let rc = clean.report().canonical_bytes();
        assert_eq!(
            rc,
            lossy.report().canonical_bytes(),
            "clean/lossy Report diverged at op {i} (seed {seed}, loss {loss})"
        );
        assert_eq!(
            rc,
            threaded.report().canonical_bytes(),
            "clean/threaded Report diverged at op {i} (seed {seed}, loss {loss})"
        );
    }

    // Epoch-final: the churned engines must agree with a fresh plan of
    // the post-churn topology (reachable portion of the network).
    if let Some(fresh) = fresh_report_bytes(net, inv, &churn) {
        assert_eq!(
            clean.report().canonical_bytes(),
            fresh,
            "epoch-final Report diverged from fresh post-churn plan (seed {seed}, loss {loss})"
        );
    }
    threaded.shutdown().expect("clean shutdown");
}

#[test]
fn seed_matrix_churn_under_loss_and_crash_stays_byte_identical() {
    let (net, inv) = fig2_setup();
    for seed in SEEDS {
        for loss in LOSS_RATES {
            let ops = build_ops(&net, &inv, seed, 3, true, 1);
            drive_interleaving(&net, &inv, &ops, loss, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_interleavings_keep_substrates_byte_identical(
        (schedule_seed, events, loss_idx, device_churn, crash_pos) in
            (1u64..512, 1usize..5, 0usize..2, any::<bool>(), 0usize..6)
    ) {
        let (net, inv) = fig2_setup();
        let ops = build_ops(&net, &inv, schedule_seed, events, device_churn, crash_pos);
        prop_assert!(!ops.is_empty(), "empty interleaving");
        drive_interleaving(&net, &inv, &ops, LOSS_RATES[loss_idx], schedule_seed);
    }
}
