//! Predicate-backend equivalence: every on-device LEC encoding must
//! produce *byte-identical* Reports on every substrate, with and
//! without management-network loss. The backend changes how fast the
//! hot path runs, never what goes on the wire — `PortablePred` bytes
//! are a pure function of the packet set — so swapping encodings can
//! never change a verdict.
//!
//! Matrix: backend {deltanet, intervals, auto} x substrate {event sim,
//! faulty event sim, threaded run} x loss {0%, 10%}, on one WAN
//! destination's counting session over tiny INet2 with a 24-update
//! churn trace applied in bursts of 8.

use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::Planner;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::{
    BackendKind, DistributedRun, DvmSim, EngineConfig, FaultyDvmSim, LecCache, SimConfig,
};

const BURST: usize = 8;

fn inet2_setup() -> (
    Network,
    Invariant,
    tulkun::core::planner::CountingPlan,
    Vec<RuleUpdate>,
) {
    let ds = tulkun::datasets::by_name("INet2", tulkun::datasets::Scale::Tiny).unwrap();
    let net = ds.network.clone();
    let topo = &net.topology;
    let (dst, prefix) = topo.external_map().next().unwrap();
    let dst_name = topo.name(dst).to_string();
    let ingress: Vec<String> = topo
        .devices()
        .filter(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .collect();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::DstPrefix(prefix))
        .ingress(ingress)
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(&format!(". * {dst_name}"))
                .unwrap()
                .loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(topo).plan(&inv).unwrap();
    let cp = plan.counting().unwrap().clone();
    let trace = tulkun::datasets::rule_updates(&net, 24, 7);
    (net, inv, cp, trace)
}

fn sim_cfg(backend: BackendKind) -> SimConfig {
    SimConfig {
        backend,
        // 24 updates over the session: past the Auto threshold, so
        // `auto` exercises the Delta-net encoding here.
        update_rate_hint: 24.0,
        ..SimConfig::default()
    }
}

/// The non-reference backends under test. `Auto` resolves to Delta-net
/// for this IP-only bursty workload, covering the selection heuristic.
const BACKENDS: [BackendKind; 3] = [
    BackendKind::DeltaNet,
    BackendKind::Intervals,
    BackendKind::Auto,
];

#[test]
fn backends_agree_on_the_event_simulator() {
    let (net, inv, cp, trace) = inet2_setup();
    let run = |backend| {
        let mut sim = DvmSim::new(&net, &cp, &inv.packet_space, sim_cfg(backend));
        sim.burst();
        for chunk in trace.chunks(BURST) {
            sim.apply_batch(chunk);
        }
        sim.report().canonical_bytes()
    };
    let reference = run(BackendKind::Bdd);
    for backend in BACKENDS {
        assert_eq!(
            run(backend),
            reference,
            "{backend} diverged from bdd on the event simulator"
        );
    }
}

#[test]
fn backends_agree_under_loss() {
    let (net, inv, cp, trace) = inet2_setup();
    let run = |backend, loss| {
        let mut sim = FaultyDvmSim::new(
            &net,
            &cp,
            &inv.packet_space,
            sim_cfg(backend),
            FaultProfile::loss(23, loss),
        );
        sim.burst();
        for chunk in trace.chunks(BURST) {
            sim.apply_batch(chunk);
        }
        sim.report().canonical_bytes()
    };
    let reference = run(BackendKind::Bdd, 0.0);
    for backend in BACKENDS {
        for loss in [0.0, 0.10] {
            assert_eq!(
                run(backend, loss),
                reference,
                "{backend} diverged from bdd at {:.0}% loss",
                loss * 100.0
            );
        }
    }
}

#[test]
fn backends_agree_on_the_threaded_runner() {
    let (net, inv, cp, trace) = inet2_setup();
    let run = |backend| {
        let ecfg = EngineConfig {
            backend,
            update_rate_hint: 24.0,
            ..EngineConfig::default()
        };
        let cache = LecCache::new();
        let run = DistributedRun::spawn_with(&net, &cp, &inv.packet_space, &ecfg, &cache);
        run.quiesce();
        for u in &trace {
            run.inject_update(u.clone());
        }
        run.quiesce();
        let report = run.report().canonical_bytes();
        run.shutdown().expect("device task panicked");
        report
    };
    let reference = run(BackendKind::Bdd);
    for backend in BACKENDS {
        assert_eq!(
            run(backend),
            reference,
            "{backend} diverged from bdd on the threaded runner"
        );
    }
}
