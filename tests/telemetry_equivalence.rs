//! Telemetry must be a pure observer: turning it on cannot perturb the
//! verification result by a single byte, on any substrate.
//!
//! For each execution substrate — the reference `Engine` on a FIFO
//! transport, the discrete-event `DvmSim`, the fault-injecting
//! `FaultyDvmSim`, and the threaded `DistributedRun` — the Figure 2a
//! workflow runs twice: once with the default (disabled) telemetry
//! handle and once with an enabled one. The final
//! `Report::canonical_bytes()` must match exactly, while the enabled
//! handle must actually have recorded spans and metrics (so the test
//! cannot pass vacuously) and the disabled handle must have recorded
//! nothing.
//!
//! A second test pins the metrics registry's histogram arithmetic to a
//! hand-computed sequence: exact bucket counts, sum, count, and the
//! bucket-quantized quantiles.

use std::sync::Arc;

use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::{CountingPlan, Planner};
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::runtime::{Engine, FifoTransport, InstantClock, LecCache};
use tulkun::sim::{DistributedRun, DvmSim, EngineConfig, FaultyDvmSim, SimConfig};
use tulkun::telemetry::{HistogramSpec, Telemetry, TelemetryConfig};

fn fig2_setup() -> (Network, Invariant, RuleUpdate) {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    (net, inv, update)
}

/// Burst + repair update on the FIFO-transport reference engine.
fn run_fifo(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    update: &RuleUpdate,
    telemetry: Arc<Telemetry>,
) -> Vec<u8> {
    let cfg = EngineConfig {
        telemetry,
        ..EngineConfig::default()
    };
    let cache = LecCache::new();
    let mut engine = Engine::new_cached(
        net,
        cp,
        ps,
        &cfg,
        &cache,
        FifoTransport::default(),
        InstantClock,
    );
    engine.burst();
    engine.incremental(update);
    engine.report().canonical_bytes()
}

/// Burst + repair update on the discrete-event simulator.
fn run_sim(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    update: &RuleUpdate,
    telemetry: Arc<Telemetry>,
) -> Vec<u8> {
    let cfg = SimConfig {
        telemetry,
        ..SimConfig::default()
    };
    let mut sim = DvmSim::new(net, cp, ps, cfg);
    sim.burst();
    sim.incremental(update);
    sim.report().canonical_bytes()
}

/// Burst + repair update under 10% loss (fixed seed) with
/// crash/restart, so the fault spans and recovery paths execute.
fn run_faulty(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    update: &RuleUpdate,
    telemetry: Arc<Telemetry>,
) -> Vec<u8> {
    let cfg = SimConfig {
        telemetry,
        ..SimConfig::default()
    };
    let mut sim = FaultyDvmSim::new(net, cp, ps, cfg, FaultProfile::loss(23, 0.10));
    sim.burst();
    sim.incremental(update);
    sim.crash_restart(net.topology.expect_device("W"));
    sim.report().canonical_bytes()
}

/// Burst + repair update on the threaded runner.
fn run_threaded(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    update: &RuleUpdate,
    telemetry: Arc<Telemetry>,
) -> Vec<u8> {
    let cfg = EngineConfig {
        telemetry,
        ..EngineConfig::default()
    };
    let cache = LecCache::new();
    let run = DistributedRun::spawn_with(net, cp, ps, &cfg, &cache);
    run.quiesce();
    run.inject_update(update.clone());
    run.quiesce();
    let bytes = run.report().canonical_bytes();
    run.shutdown().expect("clean shutdown");
    bytes
}

/// Burst + repair update on the synchronous reference [`Session`]
/// (the substrate with no clock and no causal trace ids — its journal
/// entries carry trace 0).
fn run_session(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    update: &RuleUpdate,
    telemetry: Arc<Telemetry>,
) -> Vec<u8> {
    use tulkun::core::verify::Session;
    let mut s = Session::from_counting(net, cp.clone(), ps);
    s.set_telemetry(telemetry);
    s.run_to_quiescence();
    s.apply_rule_update(update);
    s.report().canonical_bytes()
}

#[test]
fn reports_byte_identical_with_telemetry_on_and_off() {
    let (net, inv, update) = fig2_setup();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap().clone();
    let ps = &inv.packet_space;

    type Runner = fn(&Network, &CountingPlan, &PacketSpace, &RuleUpdate, Arc<Telemetry>) -> Vec<u8>;
    let substrates: [(&str, Runner); 5] = [
        ("session", run_session),
        ("fifo engine", run_fifo),
        ("event sim", run_sim),
        ("faulty sim", run_faulty),
        ("threaded", run_threaded),
    ];
    for (name, run) in substrates {
        let off = Telemetry::disabled();
        let on = Telemetry::new(TelemetryConfig::enabled());
        // Telemetry on but the flight-recorder ring sized to zero: the
        // journal hot path must stay a pure observer too.
        let no_journal = Telemetry::new(TelemetryConfig::enabled_without_journal());
        let report_off = run(&net, &cp, ps, &update, off.clone());
        let report_on = run(&net, &cp, ps, &update, on.clone());
        let report_no_journal = run(&net, &cp, ps, &update, no_journal.clone());
        assert_eq!(
            report_off, report_on,
            "{name}: enabling telemetry changed the Report bytes"
        );
        assert_eq!(
            report_on, report_no_journal,
            "{name}: disabling the journal changed the Report bytes"
        );
        assert!(
            !on.spans().is_empty() || name == "session",
            "{name}: enabled telemetry recorded no spans (vacuous test)"
        );
        assert!(
            !on.metrics().hists.is_empty() || name == "session",
            "{name}: enabled telemetry recorded no histograms"
        );
        assert!(
            on.journal_recorded() > 0,
            "{name}: enabled telemetry journaled nothing (vacuous test)"
        );
        assert!(
            off.spans().is_empty(),
            "{name}: disabled telemetry recorded spans"
        );
        assert!(
            off.metrics().counters.is_empty() && off.metrics().hists.is_empty(),
            "{name}: disabled telemetry recorded metrics"
        );
        assert_eq!(
            off.journal_recorded(),
            0,
            "{name}: disabled telemetry journaled events"
        );
        assert_eq!(
            no_journal.journal_recorded(),
            0,
            "{name}: zero-capacity journal recorded events"
        );
        assert!(
            no_journal.journal_events().is_empty(),
            "{name}: zero-capacity journal returned events"
        );
    }
}

#[test]
fn histogram_buckets_match_hand_computed_sequence() {
    const SPEC: HistogramSpec = HistogramSpec {
        name: "test_hand_computed",
        bounds: &[10, 20, 50],
    };
    let net = tulkun::datasets::fig2a_network();
    let a = net.topology.expect_device("S");
    let b = net.topology.expect_device("D");
    let tel = Telemetry::new(TelemetryConfig::enabled());
    // Observed from two devices so the sharded registry must merge:
    // one value at each bucket's upper bound, one just above it.
    for v in [1, 10, 11, 20] {
        tel.observe(a, &SPEC, v);
    }
    for v in [21, 50, 51, 1000] {
        tel.observe(b, &SPEC, v);
    }
    let snap = tel.metrics();
    let h = snap.hists.get(SPEC.name).expect("histogram recorded");
    assert_eq!(h.bounds, vec![10, 20, 50]);
    // Buckets are non-cumulative per bound plus one overflow bucket;
    // bounds are inclusive, so 10/20/50 land in their own buckets.
    assert_eq!(h.buckets, vec![2, 2, 2, 2]);
    assert_eq!(h.count, 8);
    assert_eq!(h.sum, 1 + 10 + 11 + 20 + 21 + 50 + 51 + 1000);
    // Quantiles are quantized to bucket upper bounds; the overflow
    // bucket reports the last finite bound as a lower bound.
    assert_eq!(h.quantile(0.25), Some(10));
    assert_eq!(h.quantile(0.50), Some(20));
    assert_eq!(h.quantile(0.75), Some(50));
    assert_eq!(h.quantile(0.99), Some(50));
    assert_eq!(snap.percentile(SPEC.name, 0.50), Some(20));
}
