#![allow(clippy::needless_range_loop)] // bit-packing loops read clearer indexed
//! Differential oracle: the distributed DVM counting must agree with a
//! brute-force enumeration of packet traces over concrete universes.
//!
//! The oracle walks actual traces through the FIBs (replicating on ALL,
//! branching per-universe on ANY, ending on drops/delivery/leaving the
//! simple-path set) and returns the set of possible delivered-copy
//! counts. The DVM session computes the same thing with BDD-partitioned
//! predicates, per-node tasks, message diffing and incremental
//! recomputation — any disagreement exposes a protocol bug.
//!
//! Both a burst comparison and an *incremental consistency* comparison
//! (apply random updates one by one, then re-compare against a fresh
//! oracle of the final network) are property-tested on random networks.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tulkun::core::count::{CountExpr, Counts, ReduceMode};
use tulkun::core::verify::Session;
use tulkun::netmodel::fib::{ActionType, MatchSpec, NextHop};
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

const PREFIX: &str = "10.9.0.0/24";

/// Brute-force: the set of possible delivered-copy counts for a packet
/// in `PREFIX` starting at `dev`, restricted to simple paths (matching
/// the `S .* D loop_free` DPVNet), with per-trace-independent ANY
/// choices — the semantics of Equations (1)/(2).
fn oracle(net: &Network, dev: DeviceId, dst: DeviceId, visited: &mut Vec<bool>) -> BTreeSet<u32> {
    if dev == dst {
        // Destination node: axiomatically one delivered copy (§2.2.2).
        return BTreeSet::from([1]);
    }
    // Effective action: highest-priority rule matching the packet.
    let rule = net
        .fib(dev)
        .rules()
        .iter()
        .find(|r| r.matches.dst.overlaps(&PREFIX.parse().unwrap()));
    let Some(rule) = rule else {
        return BTreeSet::from([0]);
    };
    match &rule.action {
        tulkun::netmodel::fib::Action::Drop => BTreeSet::from([0]),
        tulkun::netmodel::fib::Action::Forward {
            mode, next_hops, ..
        } => {
            let branch = |h: &NextHop, visited: &mut Vec<bool>| -> BTreeSet<u32> {
                match h {
                    NextHop::External => BTreeSet::from([0]), // wrong egress
                    NextHop::Device(v) => {
                        if visited[v.idx()] {
                            BTreeSet::from([0]) // leaves the simple-path set
                        } else {
                            visited[v.idx()] = true;
                            let r = oracle(net, *v, dst, visited);
                            visited[v.idx()] = false;
                            r
                        }
                    }
                }
            };
            match mode {
                ActionType::All => {
                    // Cross-product sum over replicated branches.
                    let mut acc = BTreeSet::from([0u32]);
                    for h in next_hops {
                        let b = branch(h, visited);
                        let mut next = BTreeSet::new();
                        for &x in &acc {
                            for &y in &b {
                                next.insert(x + y);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
                ActionType::Any => {
                    let mut acc = BTreeSet::new();
                    for h in next_hops {
                        acc.extend(branch(h, visited));
                    }
                    if acc.is_empty() {
                        acc.insert(0);
                    }
                    acc
                }
            }
        }
    }
}

fn oracle_counts(net: &Network, src: DeviceId, dst: DeviceId) -> BTreeSet<u32> {
    let mut visited = vec![false; net.topology.num_devices()];
    visited[src.idx()] = true;
    oracle(net, src, dst, &mut visited)
}

/// Extracts the source node's DVM count set for one concrete packet.
fn dvm_counts(session: &mut Session, net: &Network, src: DeviceId) -> Counts {
    let cp = session.plan();
    let (sdev, snode) = cp
        .dpvnet
        .sources()
        .iter()
        .find(|(d, _)| *d == src)
        .copied()
        .expect("source node");
    let v = session.verifier_mut(sdev).expect("verifier");
    // Pick the entry containing the probe packet 10.9.0.1:80.
    let layout = net.layout;
    let mut m = tulkun::bdd::BddManager::new(layout.num_vars());
    let mut bits = vec![false; layout.num_vars() as usize];
    let addr = u32::from_be_bytes([10, 9, 0, 1]);
    for i in 0..32 {
        bits[i] = (addr >> (31 - i)) & 1 == 1;
    }
    bits[32 + 15] = true; // port 1
    for (pred, counts) in v.node_result(snode, None) {
        let p = tulkun::bdd::serial::import(&mut m, &pred).unwrap();
        if m.eval(p, &bits) {
            return counts;
        }
    }
    panic!("no LocCIB entry covers the probe packet");
}

/// A random small network with an announced destination.
#[derive(Debug, Clone)]
struct Scenario {
    net: Network,
    src: DeviceId,
    dst: DeviceId,
    updates: Vec<RuleUpdate>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // 4..=6 devices; random extra edges on top of a path (connected).
    (
        4usize..=6,
        proptest::collection::vec(any::<u32>(), 24),
        proptest::collection::vec(any::<u32>(), 12),
    )
        .prop_map(|(n, seeds, useeds)| {
            let mut topo = Topology::new();
            let ids: Vec<DeviceId> = (0..n).map(|i| topo.add_device(format!("d{i}"))).collect();
            for i in 1..n {
                topo.add_link(ids[i - 1], ids[i], 1000);
            }
            let mut si = 0;
            let mut next_seed = |m: usize| {
                let v = seeds[si % seeds.len()] as usize % m;
                si += 1;
                v
            };
            // A few random extra links.
            for _ in 0..n {
                let a = next_seed(n);
                let b = next_seed(n);
                if a != b && topo.link_between(ids[a], ids[b]).is_none() {
                    topo.add_link(ids[a], ids[b], 1000);
                }
            }
            let src = ids[0];
            let dst = ids[n - 1];
            let prefix: tulkun::netmodel::IpPrefix = PREFIX.parse().unwrap();
            topo.add_external_prefix(dst, prefix);

            let mut net = Network::new(topo);
            // Random action per device.
            for (i, &d) in ids.iter().enumerate() {
                if d == dst {
                    net.fib_mut(d).insert(Rule {
                        priority: 24,
                        matches: MatchSpec::dst(prefix),
                        action: Action::deliver(),
                    });
                    continue;
                }
                let nbrs: Vec<DeviceId> =
                    net.topology.neighbors(d).iter().map(|(x, _)| *x).collect();
                let action = match seeds[(i * 3) % seeds.len()] % 5 {
                    0 => Action::Drop,
                    1 => Action::fwd(nbrs[seeds[(i * 3 + 1) % seeds.len()] as usize % nbrs.len()]),
                    2 => Action::fwd_all(nbrs.iter().copied().take(2)),
                    3 => Action::fwd_any(nbrs.iter().copied().take(2)),
                    _ => Action::fwd_any(nbrs.iter().copied()),
                };
                net.fib_mut(d).insert(Rule {
                    priority: 24,
                    matches: MatchSpec::dst(prefix),
                    action,
                });
            }

            // Random updates: change one device's action.
            let mut updates = Vec::new();
            for (k, &u) in useeds.iter().enumerate() {
                let d = ids[u as usize % (n - 1)]; // never the destination
                let nbrs: Vec<DeviceId> =
                    net.topology.neighbors(d).iter().map(|(x, _)| *x).collect();
                let action = match u % 4 {
                    0 => Action::Drop,
                    1 => Action::fwd(nbrs[(u as usize / 7) % nbrs.len()]),
                    2 => Action::fwd_all(nbrs.iter().copied().take(2)),
                    _ => Action::fwd_any(nbrs.iter().copied().take(2)),
                };
                updates.push(RuleUpdate::Insert {
                    device: d,
                    rule: Rule {
                        priority: 30 + k as u32,
                        matches: MatchSpec::dst(prefix),
                        action,
                    },
                });
            }
            Scenario {
                net,
                src,
                dst,
                updates,
            }
        })
}

fn reachability_session(net: &Network, src: DeviceId, dst: DeviceId) -> Session {
    let topo = &net.topology;
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix(PREFIX))
        .ingress([topo.name(src)])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(&format!("{} .* {}", topo.name(src), topo.name(dst)))
                .unwrap()
                .loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(topo).plan(&inv).unwrap();
    let mut cp = plan.counting().unwrap().clone();
    // Disable Proposition-1 reduction so full outcome sets are exposed.
    cp.reduce = ReduceMode::None;
    let mut s = Session::from_counting(net, cp, &inv.packet_space);
    s.run_to_quiescence();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dvm_burst_matches_trace_oracle(sc in scenario_strategy()) {
        let expected = oracle_counts(&sc.net, sc.src, sc.dst);
        let mut session = reachability_session(&sc.net, sc.src, sc.dst);
        let got = dvm_counts(&mut session, &sc.net, sc.src);
        let got_set: BTreeSet<u32> = got.iter().map(|v| v[0]).collect();
        prop_assert_eq!(got_set, expected, "burst mismatch");
    }

    #[test]
    fn dvm_incremental_matches_trace_oracle(sc in scenario_strategy()) {
        // Maintain the session incrementally through every update, then
        // compare against a fresh oracle of the final network (eventual
        // consistency of §4.2).
        let mut session = reachability_session(&sc.net, sc.src, sc.dst);
        let mut net = sc.net.clone();
        for u in &sc.updates {
            net.apply(u);
            session.apply_rule_update(u);
        }
        let expected = oracle_counts(&net, sc.src, sc.dst);
        let got = dvm_counts(&mut session, &net, sc.src);
        let got_set: BTreeSet<u32> = got.iter().map(|v| v[0]).collect();
        prop_assert_eq!(got_set, expected, "incremental mismatch");

        // And the incrementally-maintained session agrees with a fresh
        // burst over the final network.
        let mut fresh = reachability_session(&net, sc.src, sc.dst);
        let fresh_counts = dvm_counts(&mut fresh, &net, sc.src);
        let fresh_set: BTreeSet<u32> = fresh_counts.iter().map(|v| v[0]).collect();
        let got_set: BTreeSet<u32> = got.iter().map(|v| v[0]).collect();
        prop_assert_eq!(got_set, fresh_set, "incremental vs fresh burst mismatch");
    }
}
