//! Cross-crate integration: the Figure 2 workflow through the facade
//! crate (datasets → spec → planner → DVM session → verdict).

use tulkun::core::verify::Session;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;

#[test]
fn fig2_full_workflow() {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(!report.holds());
    assert_eq!(report.violations.len(), 1);

    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    session.apply_rule_update(&RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    });
    assert!(session.report().holds());
}

#[test]
fn textual_and_builder_specs_agree() {
    let net = tulkun::datasets::fig2a_network();
    let textual = Invariant::parse(
        "(dstIP=10.0.1.0/24 && dstPort=80, [S], (exist >= 1, /S .* W .* D/ loop_free))",
    )
    .unwrap();
    let built = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.1.0/24").and(PacketSpace::dst_port(80)))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let pa = Planner::new(&net.topology).plan(&textual).unwrap();
    let pb = Planner::new(&net.topology).plan(&built).unwrap();
    // Scoped to P3 only, both detect the violation.
    let ra = verify_snapshot(&net, &pa);
    let rb = verify_snapshot(&net, &pb);
    assert!(!ra.holds() && !rb.holds());
    assert_eq!(ra.violations.len(), rb.violations.len());
}

#[test]
fn quickstart_docs_flow() {
    // The README quickstart, kept honest.
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(!report.holds());
}
