//! The `ci.sh fault-matrix` gate: substrate equivalence under injected
//! message faults.
//!
//! With a fixed fault seed, the event simulator over a lossy management
//! network ([`tulkun::sim::FaultyDvmSim`]) must produce Reports
//! *byte-identical* to the perfect-channel reference — at every loss
//! rate in {0%, 1%, 10%}, for every seed in the matrix, before and
//! after the Figure 2a repair update. Retransmission makes loss
//! invisible to results; these tests fail on any divergence.
//!
//! Run via `./ci.sh fault-matrix` (a release-mode invocation of this
//! file); the same tests also run in the plain workspace test pass.

use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::Planner;
use tulkun::netmodel::fib::MatchSpec;
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::{DvmSim, FaultyDvmSim, SimConfig};

/// The fixed CI seed matrix.
const SEEDS: [u64; 4] = [1, 7, 23, 101];
/// The loss rates of the acceptance criterion.
const LOSS_RATES: [f64; 3] = [0.0, 0.01, 0.10];

fn fig2_setup() -> (Network, Invariant, RuleUpdate) {
    let net = tulkun::datasets::fig2a_network();
    let inv = Invariant::parse("(dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))")
        .unwrap();
    let b = net.topology.expect_device("B");
    let w = net.topology.expect_device("W");
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    (net, inv, update)
}

/// Reference Reports (burst, post-update) from the perfect-channel
/// event simulator.
fn reference_reports(net: &Network, inv: &Invariant, update: &RuleUpdate) -> (Vec<u8>, Vec<u8>) {
    let plan = Planner::new(&net.topology).plan(inv).unwrap();
    let cp = plan.counting().unwrap().clone();
    let mut sim = DvmSim::new(net, &cp, &inv.packet_space, SimConfig::default());
    sim.burst();
    let before = sim.report().canonical_bytes();
    sim.incremental(update);
    let after = sim.report().canonical_bytes();
    assert_ne!(before, after, "repair update must change the verdict");
    (before, after)
}

#[test]
fn seed_matrix_loss_rates_leave_reports_byte_identical() {
    let (net, inv, update) = fig2_setup();
    let (ref_before, ref_after) = reference_reports(&net, &inv, &update);
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap().clone();

    let mut high_loss_drops = 0u64;
    for seed in SEEDS {
        for rate in LOSS_RATES {
            let profile = FaultProfile::loss(seed, rate);
            let mut sim =
                FaultyDvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default(), profile);
            sim.burst();
            assert_eq!(
                sim.report().canonical_bytes(),
                ref_before,
                "burst Report diverged (seed {seed}, loss {rate})"
            );
            sim.incremental(&update);
            assert_eq!(
                sim.report().canonical_bytes(),
                ref_after,
                "post-update Report diverged (seed {seed}, loss {rate})"
            );
            let f = sim.stats().fault;
            if rate == 0.0 {
                assert_eq!(f.drops, 0, "0% loss must drop nothing (seed {seed})");
                assert_eq!(f.retransmits, 0, "0% loss needs no retransmits");
            } else {
                assert!(
                    f.retransmits >= f.drops,
                    "every dropped envelope needs at least one retransmit"
                );
                if rate >= 0.10 {
                    high_loss_drops += f.drops;
                }
            }
        }
    }
    // The workload is small, so one unlucky seed may drop nothing —
    // but across the whole matrix, 10% loss must actually bite.
    assert!(
        high_loss_drops > 0,
        "10% loss dropped nothing across the entire seed matrix"
    );
}

#[test]
fn chaos_profile_reports_stay_byte_identical() {
    // Drops + duplicates + reorders + delays together, same matrix
    // seeds: the reliability layer must mask all four fault kinds.
    let (net, inv, update) = fig2_setup();
    let (ref_before, ref_after) = reference_reports(&net, &inv, &update);
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap().clone();

    for seed in SEEDS {
        let profile = FaultProfile::chaos(seed);
        let mut sim =
            FaultyDvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default(), profile);
        sim.burst();
        assert_eq!(
            sim.report().canonical_bytes(),
            ref_before,
            "chaos burst Report diverged (seed {seed})"
        );
        sim.incremental(&update);
        assert_eq!(
            sim.report().canonical_bytes(),
            ref_after,
            "chaos post-update Report diverged (seed {seed})"
        );
    }
}

#[test]
fn crash_restart_under_loss_recovers_the_report() {
    // Device crash/restart on top of a lossy channel: the restarted
    // agent recounts from scratch, neighbors replay their durable
    // state, and the Report must land back on the reference bytes.
    let (net, inv, update) = fig2_setup();
    let (_, ref_after) = reference_reports(&net, &inv, &update);
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap().clone();

    let w = net.topology.expect_device("W");
    let s = net.topology.expect_device("S");
    for seed in SEEDS {
        let profile = FaultProfile::loss(seed, 0.05);
        let mut sim =
            FaultyDvmSim::new(&net, &cp, &inv.packet_space, SimConfig::default(), profile);
        sim.burst();
        sim.incremental(&update);
        for dev in [w, s] {
            sim.crash_restart(dev);
            assert_eq!(
                sim.report().canonical_bytes(),
                ref_after,
                "crash of {:?} under loss diverged (seed {seed})",
                net.topology.name(dev)
            );
        }
        assert_eq!(sim.stats().crashes_recovered, 2);
    }
}
