//! Fault-tolerance integration (§6 / Figure 8): online scene switching
//! must produce the same verdict as planning each failed topology from
//! scratch — for every single-link scene of the example network, and
//! for scene round-trips (fail → recover).

use tulkun::core::churn::{ChurnSchedule, TopologyEvent};
use tulkun::core::count::CountExpr;
use tulkun::core::explain::{device_verdict, explain, Explanation, Subject};
use tulkun::core::fault::{plan_fault_tolerant, subtopology, FaultScene};
use tulkun::core::planner::Planner;
use tulkun::core::spec::FaultSpec;
use tulkun::prelude::*;
use tulkun::sim::{DvmSim, FaultyDvmSim, SimConfig, Telemetry, TelemetryConfig};
use tulkun::telemetry::JournalKind;

fn ft_invariant(net: &Network) -> Invariant {
    Invariant::builder()
        .name("ft reachability")
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* D")
                .unwrap()
                .loop_free()
                .shortest_plus(1),
        ))
        .fault_scenes(FaultSpec::AnyK(1))
        .build()
        .unwrap_or_else(|e| panic!("{e} for {net:?}"))
}

/// Fresh verdict for one scene: re-plan on the failed topology.
fn fresh_verdict(net: &Network, scene: &FaultScene) -> Option<bool> {
    let sub = subtopology(&net.topology, scene);
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* D")
                .unwrap()
                .loop_free()
                .shortest_plus(1),
        ))
        .build()
        .unwrap();
    let planner = Planner::with_options(
        &sub,
        tulkun::core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let plan = planner.plan(&inv).ok()?;
    // Use the same FIBs over the surviving topology; counting treats
    // forwards over removed links as escapes because the DPVNet has no
    // such edge.
    let mut sub_net = Network::new(sub);
    sub_net.fibs = net.fibs.clone();
    Some(verify_snapshot(&sub_net, &plan).holds())
}

#[test]
fn online_recounting_matches_fresh_planning_per_scene() {
    let net = tulkun::datasets::fig2a_network();
    let inv = ft_invariant(&net);
    let (plan, ft) = plan_fault_tolerant(&net.topology, &inv, 10_000, 100_000).unwrap();
    let mut sim = DvmSim::new(&net, &plan, &inv.packet_space, SimConfig::default());
    sim.burst();
    let base_holds = sim.report().holds();
    assert!(base_holds);

    for (idx, scene) in ft.scenes.iter().enumerate().skip(1) {
        if ft.intolerable.contains(&idx) {
            continue; // no valid path at all: the planner alerts instead
        }
        sim.apply_scene(&ft.scene_tasks(idx), 1_000);
        let online = sim.report().holds();
        let fresh = fresh_verdict(&net, scene).expect("plan per scene");
        assert_eq!(
            online, fresh,
            "scene {scene:?}: online recount disagrees with fresh planning"
        );
        // Restore the base scene and confirm the verdict returns.
        sim.apply_scene(&ft.scene_tasks(0), 1_000);
        assert_eq!(
            sim.report().holds(),
            base_holds,
            "scene round-trip broke state"
        );
    }
}

#[test]
fn intolerable_scenes_are_identified() {
    let net = tulkun::datasets::fig2a_network();
    let inv = ft_invariant(&net);
    let (_, ft) = plan_fault_tolerant(&net.topology, &inv, 10_000, 100_000).unwrap();
    // S–A is the only cut link for S→D: exactly its scene is intolerable
    // among single-failure scenes.
    let s = net.topology.expect_device("S");
    let a = net.topology.expect_device("A");
    let idx = ft.scene_index(&FaultScene::new([(s, a)])).unwrap();
    assert!(ft.intolerable.contains(&idx));
    assert_eq!(
        ft.intolerable
            .iter()
            .filter(|&&i| ft.scenes[i].len() == 1)
            .count(),
        1,
        "only the S–A cut is intolerable under single failures"
    );
}

#[test]
fn symbolic_filter_widens_the_ft_dpvnet() {
    // With a symbolic `<= shortest` filter, a 2-link scene that
    // lengthens the shortest path (e.g. {A–B, W–D}: the only surviving
    // route is S,A,W,B,D with 4 hops) admits paths outside the
    // no-failure DPVNet — the union must be strictly larger.
    let net = tulkun::datasets::fig2a_network();
    let base_pe = PathExpr::parse("S .* D")
        .unwrap()
        .loop_free()
        .shortest_plus(0);
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(CountExpr::ge(1), base_pe.clone()))
        .fault_scenes(FaultSpec::AnyK(2))
        .build()
        .unwrap();
    let (_, ft) = plan_fault_tolerant(&net.topology, &inv, 10_000, 100_000).unwrap();
    let base = tulkun::core::dpvnet::DpvNet::build(
        &net.topology,
        &[net.topology.expect_device("S")],
        std::slice::from_ref(&base_pe),
    )
    .unwrap();
    assert!(
        ft.dpvnet.num_paths() > base.num_paths(),
        "fault-tolerant union ({}) must exceed the base path set ({})",
        ft.dpvnet.num_paths(),
        base.num_paths()
    );
}

/// Runs the `tulkun explain` fault scene — seeded link-down + crash of
/// the affected device over a 10% lossy management network under the
/// deterministic lockstep clock — and returns the injected event, the
/// device it names, and the explanation for that device.
fn explain_scene(seed: u64) -> (TopologyEvent, tulkun::netmodel::DeviceId, Explanation) {
    use tulkun::core::fault::FaultProfile;

    let ds = tulkun::datasets::by_name("INet2", tulkun::datasets::Scale::Tiny).unwrap();
    let net = &ds.network;
    let topo = &net.topology;
    let (inv, cp) = tulkun::daemon::dataset_session(net, "INet2").unwrap();
    let telemetry = Telemetry::new(TelemetryConfig::enabled());
    let cfg = SimConfig {
        telemetry: telemetry.clone(),
        model: tulkun::sim::SwitchModel::LOCKSTEP,
        ..SimConfig::default()
    };
    let mut sim = FaultyDvmSim::new(
        net,
        &cp,
        &inv.packet_space,
        cfg,
        FaultProfile::loss(seed, 0.10),
    );
    sim.burst();
    let schedule = ChurnSchedule::seeded(topo, &inv, seed, 8);
    let ev = *schedule
        .0
        .iter()
        .find(|e| matches!(e, TopologyEvent::LinkDown(..)))
        .expect("a plannable link-down in the seeded schedule");
    sim.apply_topology_event(&ev, topo, &inv).unwrap();
    let dev = ev.primary_device();
    sim.crash_restart(dev);
    let report = sim.report();
    let nodes: Vec<u32> = sim
        .intents()
        .global_tasks()
        .iter()
        .filter(|t| t.dev == dev)
        .map(|t| t.node.0)
        .collect();
    let verdict = device_verdict(&report, dev, &nodes);
    let x = explain(&telemetry.journal_events(), Subject::Device(dev), &verdict);
    (ev, dev, x)
}

/// Golden `explain` test: in the seeded fault scene (link-down under
/// 10% loss plus a crash/restart), the explain engine must name the
/// injected link-down as the top-ranked root cause — correct device,
/// epoch, and event kind — and render byte-identical JSON across
/// reruns. Held for two different seeds so the verdict is not an
/// artifact of one lucky schedule.
#[test]
fn explain_names_the_injected_root_cause() {
    for seed in [3u64, 11] {
        let (ev, dev, x) = explain_scene(seed);
        let (ev2, dev2, x2) = explain_scene(seed);
        assert_eq!(ev, ev2, "seed {seed}: scene not reproducible");
        assert_eq!(dev, dev2);
        assert_eq!(
            x.to_json(),
            x2.to_json(),
            "seed {seed}: explain JSON not byte-identical across reruns"
        );
        let root = x.causes.first().expect("a non-empty causal chain");
        assert_eq!(
            root.event.kind,
            JournalKind::TopologyChurn,
            "seed {seed}: root cause is not the injected churn event"
        );
        assert_eq!(
            root.event.device, dev,
            "seed {seed}: root cause names the wrong device"
        );
        assert_eq!(
            root.event.epoch, 1,
            "seed {seed}: the link-down fences epoch 0 -> 1"
        );
        assert_eq!(root.event.detail, ev.describe());
        // The crash/restart of the same device must appear in the
        // chain, outranked by the churn event.
        assert!(
            x.causes
                .iter()
                .any(|c| c.event.kind == JournalKind::CrashRestart && c.event.device == dev),
            "seed {seed}: the injected crash is missing from the chain"
        );
    }
}
