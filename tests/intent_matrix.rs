//! The `ci.sh intent-matrix` gate: substrate equivalence under runtime
//! intent churn.
//!
//! Random interleavings of intent installs/removals and FIB batches —
//! all delivered through the unified [`RuntimeEvent`] API — are driven
//! simultaneously against the synchronous reference session
//! ([`tulkun::core::verify::Session`]), the event simulator
//! ([`tulkun::sim::DvmSim`]), the lossy event simulator
//! ([`tulkun::sim::FaultyDvmSim`], 10% management-plane loss) and the
//! per-device-thread runner ([`tulkun::sim::DistributedRun`]). After
//! every op the Reports must be *byte-identical* across substrates and
//! equal to the merged standalone verdict of the surviving intent set
//! against the current FIBs (each intent freshly planned from scratch,
//! violations re-tagged with its live id). Any divergence is a bug in
//! per-intent slicing, task dedup/refcounting, or the epoch fence.
//!
//! Run via `./ci.sh intent-matrix` (a release-mode invocation of this
//! file); the same tests also run in the plain workspace test pass.

use proptest::prelude::*;
use tulkun::core::count::CountExpr;
use tulkun::core::event::{RuntimeEvent, Substrate};
use tulkun::core::fault::FaultProfile;
use tulkun::core::intent::IntentId;
use tulkun::core::planner::Planner;
use tulkun::core::spec::{Behavior, PathExpr};
use tulkun::core::verify::{Report, Session};
use tulkun::netmodel::fib::{Action, MatchSpec, Rule};
use tulkun::netmodel::network::RuleUpdate;
use tulkun::prelude::*;
use tulkun::sim::{DistributedRun, DvmSim, EngineConfig, FaultyDvmSim, LecCache, SimConfig};

/// The fixed CI seed matrix (same as `churn_matrix`).
const SEEDS: [u64; 4] = [1, 7, 23, 101];
/// The loss rates of the intent acceptance criterion.
const LOSS_RATES: [f64; 2] = [0.0, 0.10];

/// One-behavior reachability invariant over the fig2a packet space,
/// with the first path atom as ingress.
fn invariant(name: &str, expr: &str) -> Invariant {
    Invariant::builder()
        .name(name)
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress([expr.split_whitespace().next().unwrap()])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(expr).unwrap().loop_free(),
        ))
        .build()
        .unwrap()
}

/// The intents a random interleaving may install (repeats allowed —
/// identical intents must dedup to fully shared slices).
fn intent_pool() -> Vec<(&'static str, Invariant)> {
    vec![
        ("waypoint", invariant("waypoint", "S .* W .* D")),
        ("a-reach", invariant("a-reach", "A .* D")),
        ("b-way", invariant("b-way", "S .* B .* D")),
    ]
}

/// One step of an interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Install `intent_pool()[i % len]`.
    Install(usize),
    /// Remove the `i % len`-th live non-base intent (skipped when none
    /// are live).
    Remove(usize),
    /// Toggle B's `10.0.1.0/24` route (withdraw, then restore, ...).
    FibToggle,
}

/// A quiesced standalone session's report for one invariant.
fn fresh_report(net: &Network, inv: &Invariant) -> Report {
    let plan = Planner::new(&net.topology).plan(inv).unwrap();
    let mut s = Session::new(net, &plan);
    s.run_to_quiescence();
    s.report()
}

/// The expected merged verdict: each surviving intent's standalone
/// report against the current FIBs, violations re-tagged with the live
/// intent id, concatenated in id order.
fn merged_reference(net: &Network, intents: &[(u64, Invariant)]) -> Vec<u8> {
    let mut all = Vec::new();
    for (id, inv) in intents {
        let mut r = fresh_report(net, inv);
        for v in &mut r.violations {
            v.intent = *id;
        }
        all.extend(r.violations);
    }
    Report {
        violations: all,
        ..Report::default()
    }
    .canonical_bytes()
}

fn withdraw_update(net: &Network) -> RuleUpdate {
    RuleUpdate::Remove {
        device: net.topology.expect_device("B"),
        priority: 10,
        matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
    }
}

fn restore_update(net: &Network) -> RuleUpdate {
    RuleUpdate::Insert {
        device: net.topology.expect_device("B"),
        rule: Rule {
            priority: 10,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(net.topology.expect_device("D")),
        },
    }
}

/// Drives one op sequence through all four substrates in lockstep via
/// [`Substrate::apply_event`], asserting equal accept/reject and
/// intent-id allocation per event, and byte-identical Reports equal to
/// the merged standalone reference after every op.
fn drive_interleaving(ops: &[Op], loss: f64, seed: u64) {
    let net = tulkun::datasets::fig2a_network();
    let base = invariant("reach", "S .* D");
    let pool = intent_pool();

    let plan = Planner::new(&net.topology).plan(&base).unwrap();
    let cp = plan.counting().unwrap().clone();

    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();

    // Intents may task devices the base plan skipped, so every
    // substrate gets a verifier per topology device up front.
    let sim_cfg = SimConfig {
        all_devices: true,
        ..SimConfig::default()
    };
    let mut clean = DvmSim::new(&net, &cp, &base.packet_space, sim_cfg.clone());
    clean.burst();
    let mut lossy = FaultyDvmSim::new(
        &net,
        &cp,
        &base.packet_space,
        sim_cfg,
        FaultProfile::loss(seed, loss),
    );
    lossy.burst();
    let ecfg = EngineConfig {
        all_devices: true,
        ..EngineConfig::default()
    };
    let mut threaded =
        DistributedRun::spawn_with(&net, &cp, &base.packet_space, &ecfg, &LecCache::new());
    threaded.quiesce();

    // The model the substrates must track: live intents + current FIBs.
    let mut live: Vec<(u64, Invariant)> = vec![(0, base.clone())];
    let mut net_now = net.clone();
    let mut withdrawn = false;

    for (i, op) in ops.iter().enumerate() {
        let ev = match op {
            Op::Install(p) => {
                let (name, inv) = &pool[p % pool.len()];
                RuntimeEvent::InstallIntent {
                    name: name.to_string(),
                    invariant: inv.clone(),
                }
            }
            Op::Remove(p) => {
                let non_base: Vec<u64> = live
                    .iter()
                    .map(|(id, _)| *id)
                    .filter(|id| *id != 0)
                    .collect();
                if non_base.is_empty() {
                    continue;
                }
                RuntimeEvent::RemoveIntent(IntentId(non_base[p % non_base.len()]))
            }
            Op::FibToggle => {
                let u = if withdrawn {
                    restore_update(&net)
                } else {
                    withdraw_update(&net)
                };
                withdrawn = !withdrawn;
                RuntimeEvent::Batch(vec![u])
            }
        };

        let a = session.apply_event(&ev);
        let b = clean.apply_event(&ev);
        let c = lossy.apply_event(&ev);
        let d = threaded.apply_event(&ev);
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "session/clean accept divergence at op {i} ({op:?}, seed {seed}, loss {loss})"
        );
        assert_eq!(
            a.is_ok(),
            c.is_ok(),
            "session/lossy accept divergence at op {i} ({op:?}, seed {seed}, loss {loss})"
        );
        assert_eq!(
            a.is_ok(),
            d.is_ok(),
            "session/threaded accept divergence at op {i} ({op:?}, seed {seed}, loss {loss})"
        );

        // Track the model and check intent-id agreement.
        if let Ok(out) = &a {
            match &ev {
                RuntimeEvent::InstallIntent { invariant, .. } => {
                    let id = out.intent.expect("install outcome carries the id");
                    for (o, n) in [(b, "clean"), (c, "lossy"), (d, "threaded")] {
                        assert_eq!(
                            o.unwrap().intent,
                            Some(id),
                            "{n} allocated a different intent id at op {i}"
                        );
                    }
                    live.push((id.0, invariant.clone()));
                }
                RuntimeEvent::RemoveIntent(id) => {
                    live.retain(|(l, _)| *l != id.0);
                }
                RuntimeEvent::Batch(updates) => {
                    for u in updates {
                        net_now.apply(u);
                    }
                }
                _ => unreachable!(),
            }
        }

        let expect = merged_reference(&net_now, &live);
        assert_eq!(
            session.report().canonical_bytes(),
            expect,
            "session Report diverged from merged reference at op {i} (seed {seed}, loss {loss})"
        );
        let rc = clean.report().canonical_bytes();
        assert_eq!(
            rc, expect,
            "clean Report diverged from merged reference at op {i} (seed {seed}, loss {loss})"
        );
        assert_eq!(
            lossy.report().canonical_bytes(),
            expect,
            "lossy Report diverged at op {i} (seed {seed}, loss {loss})"
        );
        assert_eq!(
            threaded.report().canonical_bytes(),
            expect,
            "threaded Report diverged at op {i} (seed {seed}, loss {loss})"
        );
    }
    threaded.shutdown().expect("clean shutdown");
}

/// The deterministic CI matrix: a fixed install/remove/FIB interleaving
/// per seed, at 0% and 10% loss.
#[test]
fn seed_matrix_intent_churn_under_loss_stays_byte_identical() {
    let ops = [
        Op::Install(0),
        Op::FibToggle,
        Op::Install(1),
        Op::Remove(0),
        Op::Install(2),
        Op::FibToggle,
        Op::Remove(1),
    ];
    for seed in SEEDS {
        for loss in LOSS_RATES {
            drive_interleaving(&ops, loss, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_interleavings_keep_substrates_byte_identical(
        (raw, loss_idx, seed) in (
            proptest::collection::vec((0usize..3, 0usize..4), 1..6),
            0usize..2,
            1u64..512,
        )
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(kind, idx)| match kind {
                0 => Op::Install(idx),
                1 => Op::Remove(idx),
                _ => Op::FibToggle,
            })
            .collect();
        drive_interleaving(&ops, LOSS_RATES[loss_idx], seed);
    }
}

/// Installing one intent on a real dataset (INet2) must re-task only
/// the devices in that intent's slice, reusing base-plan nodes where
/// the slices overlap — not re-plan the whole network.
#[test]
fn inet2_intent_install_is_slice_local() {
    let ds = tulkun::datasets::by_name("INet2", tulkun::datasets::Scale::Tiny).unwrap();
    let net = &ds.network;
    let (inv, cp) = tulkun::daemon::dataset_session(net, "INet2").unwrap();

    let sim_cfg = SimConfig {
        all_devices: true,
        ..SimConfig::default()
    };
    let mut sim = DvmSim::new(net, &cp, &inv.packet_space, sim_cfg);
    sim.burst();
    let before = sim.report().canonical_bytes();

    // A narrower intent over the same destination: one ingress only.
    let topo = &net.topology;
    let (dst, _) = topo.external_map().next().unwrap();
    let dst_name = topo.name(dst);
    let ingress = topo
        .devices()
        .find(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .unwrap();
    // Same outcome-vector shape as the base session (exist ∧ covered,
    // escape-tracked): one counting profile per session.
    let path = PathExpr::parse(&format!(". * {dst_name}"))
        .unwrap()
        .loop_free()
        .shortest_plus(2);
    let narrow = Invariant::builder()
        .name("narrow reach")
        .packet_space(inv.packet_space.clone())
        .ingress([ingress.clone()])
        .behavior(Behavior::exist(CountExpr::ge(1), path.clone()).and(Behavior::covered(path)))
        .build()
        .unwrap();

    let (id, delta, _) = sim.install_intent("narrow reach", &narrow).unwrap();
    assert!(
        delta.changed.len() < topo.num_devices(),
        "install re-tasked the whole network: {} of {} devices",
        delta.changed.len(),
        topo.num_devices()
    );
    assert!(
        delta.reused_nodes > 0,
        "overlapping slices must share counting tasks: {delta:?}"
    );

    // Removal un-tasks at most the installed slice and restores the
    // pre-install verdict byte-for-byte.
    let (rm, _) = sim.remove_intent(id).unwrap();
    assert!(rm.removed.values().map(Vec::len).sum::<usize>() <= delta.total_nodes);
    assert_eq!(sim.report().canonical_bytes(), before);
}
