//! The bare-`cargo test` footgun guard.
//!
//! `cargo test` without `--workspace` only runs the facade package —
//! historically a silent all-green that covered none of the member
//! crates. This test closes the gap: when the facade's test suite runs
//! *outside* the workspace-wide invocation, it spawns the member-crate
//! test run itself (`cargo test --workspace --exclude tulkun`), so a
//! naive `cargo test` still exercises every crate and fails if any of
//! them does.
//!
//! The `TULKUN_WORKSPACE_TESTS` environment variable marks an outer
//! workspace run (`ci.sh test` sets it); in that case the guard is a
//! no-op so member tests don't run twice.

use std::process::Command;

#[test]
fn bare_cargo_test_covers_the_workspace() {
    if std::env::var_os("TULKUN_WORKSPACE_TESTS").is_some() {
        // Already inside `cargo test --workspace` (or ci.sh): the
        // member crates run in this same invocation.
        return;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let status = Command::new(cargo)
        .args([
            "test",
            "-q",
            "--workspace",
            "--exclude",
            "tulkun",
            "--manifest-path",
            manifest,
        ])
        .env("TULKUN_WORKSPACE_TESTS", "1")
        .status()
        .expect("spawning the workspace test run");
    assert!(
        status.success(),
        "member-crate tests failed. A bare `cargo test` only runs the \
         facade package, so this guard ran the rest of the workspace for \
         you — rerun `cargo test --workspace` (or `./ci.sh test`) to see \
         the failure directly."
    );
}
