#!/bin/sh
# Staged CI pipeline. Run from the repository root.
#
#   ./ci.sh              run every stage in order (default: all)
#   ./ci.sh <stage>...   run only the named stage(s)
#
# Stages:
#   build         release build of the whole workspace, all targets
#   test          full workspace test pass (TULKUN_WORKSPACE_TESTS=1
#                 marks the outer run so the facade's workspace guard
#                 does not recurse; a bare `cargo test` outside CI is
#                 covered by tests/workspace_guard.rs, which spawns the
#                 member-crate run itself)
#   lint          clippy, warnings are errors
#   fmt           rustfmt check
#   fault-matrix  substrate equivalence under injected faults: fixed
#                 seeds {1,7,23,101} x loss {0%,1%,10%} plus chaos and
#                 crash/restart profiles; fails on any Report
#                 divergence (tests/fault_matrix.rs, release mode)
#   bench-smoke   runs the ablation harness on tiny topologies and
#                 validates every emitted figure JSON (structure only,
#                 no timing assertions -- the CI box has 1 CPU)
#   obs-smoke     runs `tulkun trace` / `tulkun metrics` on tiny INet2
#                 and validates the Chrome-trace JSON and Prometheus
#                 text with check_telemetry (structure only, no timing
#                 -- the CI box has 1 CPU); also asserts a run with
#                 telemetry disabled (--off) emits zero output
#   doc-check     README/DESIGN must document the core runtime types
set -eu

stage_build() {
    cargo build --release --workspace --all-targets
}

stage_test() {
    TULKUN_WORKSPACE_TESTS=1 cargo test -q --workspace
}

stage_lint() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --check
}

stage_fault_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test fault_matrix
}

stage_bench_smoke() {
    cargo run --release -p tulkun-bench --bin ablation -- \
        --scale tiny --datasets INet2,AT1-2 --updates 48
    cargo run --release -p tulkun-bench --bin check_figures -- \
        ablation_reduction \
        ablation_suffix_merge \
        ablation_lec_sharing \
        ablation_scene_reuse \
        ablation_parallel_init \
        ablation_fault_overhead \
        ablation_burst_updates
}

stage_obs_smoke() {
    obs_dir="target/obs-smoke"
    mkdir -p "$obs_dir"
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --out "$obs_dir/trace.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --out "$obs_dir/metrics.prom"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.prom"
    # The disabled path must be a no-op: zero spans, zero metrics.
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --off --out "$obs_dir/trace_off.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --off --out "$obs_dir/metrics_off.prom"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --expect-empty \
        --trace "$obs_dir/trace_off.json" --metrics "$obs_dir/metrics_off.prom"
}

stage_doc_check() {
    for name in Engine ThreadedEngine FaultyTransport RuntimeStats \
                TelemetryConfig MetricsRegistry; do
        for doc in README.md DESIGN.md; do
            if ! grep -q "$name" "$doc"; then
                echo "doc-check: $doc does not mention $name" >&2
                exit 1
            fi
        done
    done
    echo "doc-check: ok"
}

run_stage() {
    echo "== ci.sh: $1 =="
    case "$1" in
        build)        stage_build ;;
        test)         stage_test ;;
        lint)         stage_lint ;;
        fmt)          stage_fmt ;;
        fault-matrix) stage_fault_matrix ;;
        bench-smoke)  stage_bench_smoke ;;
        obs-smoke)    stage_obs_smoke ;;
        doc-check)    stage_doc_check ;;
        all)
            for s in build test lint fmt fault-matrix bench-smoke obs-smoke doc-check; do
                run_stage "$s"
            done
            ;;
        *)
            echo "ci.sh: unknown stage '$1'" >&2
            echo "stages: build test lint fmt fault-matrix bench-smoke obs-smoke doc-check all" >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    run_stage all
else
    for s in "$@"; do
        run_stage "$s"
    done
fi
