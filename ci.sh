#!/bin/sh
# Workspace CI gate. Run from the repository root.
#
# Note: a bare `cargo test` only exercises the facade package; the
# `--workspace` flag below is what covers every crate and shim.
set -eux

cargo build --release --workspace --all-targets
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
