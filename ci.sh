#!/bin/sh
# Staged CI pipeline. Run from the repository root.
#
#   ./ci.sh              run every stage in order (default: all)
#   ./ci.sh <stage>...   run only the named stage(s)
#
# Stages:
#   build         release build of the whole workspace, all targets
#   test          full workspace test pass (TULKUN_WORKSPACE_TESTS=1
#                 marks the outer run so the facade's workspace guard
#                 does not recurse; a bare `cargo test` outside CI is
#                 covered by tests/workspace_guard.rs, which spawns the
#                 member-crate run itself)
#   lint          clippy, warnings are errors
#   fmt           rustfmt check
#   fault-matrix  substrate equivalence under injected faults: fixed
#                 seeds {1,7,23,101} x loss {0%,1%,10%} plus chaos and
#                 crash/restart profiles; fails on any Report
#                 divergence (tests/fault_matrix.rs, release mode)
#   churn-matrix  substrate equivalence under live topology churn:
#                 seeds {1,7,23,101} x loss {0%,10%} x crash/restart
#                 interleaved with link/device down/up events; fails on
#                 any epoch-final Report divergence
#                 (tests/churn_matrix.rs, release mode)
#   backend-matrix  predicate-backend equivalence: backend {deltanet,
#                 intervals, auto} x substrate {event sim, faulty event
#                 sim, threaded run} x loss {0%,10%} must produce
#                 byte-equal Reports (tests/backend_equivalence.rs plus
#                 the baselines agreement property test, release mode)
#   bench-smoke   runs the ablation harness on tiny topologies and
#                 validates every emitted figure JSON (structure only,
#                 no timing assertions -- the CI box has 1 CPU); also
#                 refreshes the BENCH_backends.json snapshot from the
#                 bench_backends figure
#   obs-smoke     runs `tulkun trace` / `tulkun metrics` on tiny INet2
#                 and validates the Chrome-trace JSON and Prometheus
#                 text with check_telemetry (structure only, no timing
#                 -- the CI box has 1 CPU); also asserts a run with
#                 telemetry disabled (--off) emits zero output
#   doc-check     README/DESIGN must document the core runtime types
#
# Every stage runs under a wall-clock cap (CI_STAGE_TIMEOUT seconds,
# default 1800): a convergence hang — a wedged device thread, a lost
# quiescence signal — must fail CI loudly instead of stalling the
# runner forever.
set -eu

STAGE_TIMEOUT="${CI_STAGE_TIMEOUT:-1800}"

# Runs `$2` (a stage function) with stage name `$1` under the
# wall-clock cap. The stage runs in a background subshell; a watcher
# kills it on expiry, so the `wait` below returns non-zero and `set -e`
# aborts the pipeline. The watcher polls in short sleeps (never one
# long sleep) so it exits — and releases any pipe CI wraps around this
# script — promptly after the stage finishes. (Killing cargo can leave
# a test child behind, but CI still exits loudly — the box is recycled
# per run.)
run_with_timeout() {
    "$2" &
    cmd=$!
    (
        elapsed=0
        while kill -0 "$cmd" 2>/dev/null; do
            if [ "$elapsed" -ge "$STAGE_TIMEOUT" ]; then
                echo "ci.sh: stage '$1' exceeded ${STAGE_TIMEOUT}s (convergence hang?)" >&2
                kill -TERM "$cmd" 2>/dev/null
                exit 0
            fi
            sleep 5
            elapsed=$((elapsed + 5))
        done
    ) &
    watcher=$!
    rc=0
    wait "$cmd" || rc=$?
    wait "$watcher" 2>/dev/null || true
    return "$rc"
}

stage_build() {
    cargo build --release --workspace --all-targets
}

stage_test() {
    TULKUN_WORKSPACE_TESTS=1 cargo test -q --workspace
}

stage_lint() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --check
}

stage_fault_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test fault_matrix
}

stage_churn_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test churn_matrix
}

stage_backend_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test backend_equivalence
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun-baselines --test backend_agreement
}

stage_bench_smoke() {
    cargo run --release -p tulkun-bench --bin ablation -- \
        --scale tiny --datasets INet2,AT1-2 --updates 48
    cargo run --release -p tulkun-bench --bin check_figures -- \
        ablation_reduction \
        ablation_suffix_merge \
        ablation_lec_sharing \
        ablation_scene_reuse \
        ablation_parallel_init \
        ablation_fault_overhead \
        ablation_burst_updates \
        ablation_churn \
        bench_backends
    cp "${CARGO_TARGET_DIR:-target}/figures/bench_backends.json" BENCH_backends.json
    echo "bench-smoke: refreshed BENCH_backends.json"
}

stage_obs_smoke() {
    obs_dir="target/obs-smoke"
    mkdir -p "$obs_dir"
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --out "$obs_dir/trace.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --out "$obs_dir/metrics.prom"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.prom"
    # The disabled path must be a no-op: zero spans, zero metrics.
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --off --out "$obs_dir/trace_off.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --off --out "$obs_dir/metrics_off.prom"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --expect-empty \
        --trace "$obs_dir/trace_off.json" --metrics "$obs_dir/metrics_off.prom"
}

stage_doc_check() {
    for name in Engine ThreadedEngine FaultyTransport RuntimeStats \
                TelemetryConfig MetricsRegistry; do
        for doc in README.md DESIGN.md; do
            if ! grep -q "$name" "$doc"; then
                echo "doc-check: $doc does not mention $name" >&2
                exit 1
            fi
        done
    done
    echo "doc-check: ok"
}

run_stage() {
    echo "== ci.sh: $1 =="
    case "$1" in
        build)        run_with_timeout "$1" stage_build ;;
        test)         run_with_timeout "$1" stage_test ;;
        lint)         run_with_timeout "$1" stage_lint ;;
        fmt)          run_with_timeout "$1" stage_fmt ;;
        fault-matrix) run_with_timeout "$1" stage_fault_matrix ;;
        churn-matrix) run_with_timeout "$1" stage_churn_matrix ;;
        backend-matrix) run_with_timeout "$1" stage_backend_matrix ;;
        bench-smoke)  run_with_timeout "$1" stage_bench_smoke ;;
        obs-smoke)    run_with_timeout "$1" stage_obs_smoke ;;
        doc-check)    run_with_timeout "$1" stage_doc_check ;;
        all)
            for s in build test lint fmt fault-matrix churn-matrix \
                     backend-matrix bench-smoke obs-smoke doc-check; do
                run_stage "$s"
            done
            ;;
        *)
            echo "ci.sh: unknown stage '$1'" >&2
            echo "stages: build test lint fmt fault-matrix churn-matrix backend-matrix bench-smoke obs-smoke doc-check all" >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    run_stage all
else
    for s in "$@"; do
        run_stage "$s"
    done
fi
