#!/bin/sh
# Staged CI pipeline. Run from the repository root.
#
#   ./ci.sh              run every stage in order (default: all)
#   ./ci.sh <stage>...   run only the named stage(s)
#
# Stages:
#   build         release build of the whole workspace, all targets
#   test          full workspace test pass (TULKUN_WORKSPACE_TESTS=1
#                 marks the outer run so the facade's workspace guard
#                 does not recurse; a bare `cargo test` outside CI is
#                 covered by tests/workspace_guard.rs, which spawns the
#                 member-crate run itself)
#   lint          clippy, warnings are errors
#   fmt           rustfmt check
#   fault-matrix  substrate equivalence under injected faults: fixed
#                 seeds {1,7,23,101} x loss {0%,1%,10%} plus chaos and
#                 crash/restart profiles; fails on any Report
#                 divergence (tests/fault_matrix.rs, release mode)
#   churn-matrix  substrate equivalence under live topology churn:
#                 seeds {1,7,23,101} x loss {0%,10%} x crash/restart
#                 interleaved with link/device down/up events; fails on
#                 any epoch-final Report divergence
#                 (tests/churn_matrix.rs, release mode)
#   intent-matrix substrate equivalence under runtime intent churn:
#                 seeds {1,7,23,101} x loss {0%,10%} x intent
#                 install/remove interleaved with FIB batches, driven
#                 through the unified RuntimeEvent API on all four
#                 substrates; fails if any per-op Report diverges from
#                 the merged standalone per-intent reference
#                 (tests/intent_matrix.rs, release mode)
#   churn-intent-matrix  substrate equivalence under *overlapping*
#                 intent and topology churn: installs/removals racing
#                 link/device events x loss {0%,10%} x crash/restart,
#                 with no rejected arms — installs racing a fence park,
#                 severed slices degrade; fails if lifecycle state or
#                 any per-op Report diverges from the merged
#                 from-scratch reference
#                 (tests/churn_intent_matrix.rs, release mode)
#   backend-matrix  predicate-backend equivalence: backend {deltanet,
#                 intervals, auto} x substrate {event sim, faulty event
#                 sim, threaded run} x loss {0%,10%} must produce
#                 byte-equal Reports (tests/backend_equivalence.rs plus
#                 the baselines agreement property test, release mode)
#   bench-smoke   runs the ablation harness on tiny topologies and
#                 validates every figure in ABLATION_FIGURES (structure
#                 only, no timing assertions -- the CI box has 1 CPU);
#                 diffs the bench_backends figure against the committed
#                 BENCH_backends.json (labels + equivalence verdicts
#                 must not drift) before refreshing the snapshot
#   perf-gate     runs the bench_daemon replay workload (always-on
#                 service: admission + churn + queries on tiny INet2)
#                 and diffs it against the committed BENCH_daemon.json:
#                 labels, admission counters and the report-equivalence
#                 bit exactly; the p99 handle-time column under a
#                 tolerance band (PERF_GATE_TOLERANCE, default 25%).
#                 The latency gate is skipped with a loud notice on
#                 1-CPU hosts (TULKUN_PERF_GATE_FORCE=1 overrides); an
#                 always-on self-test proves a synthetic 2x p99
#                 inflation trips the gate
#   obs-smoke     runs `tulkun trace` / `tulkun metrics` on tiny INet2
#                 and validates the Chrome-trace JSON and Prometheus
#                 text with check_telemetry (structure only, no timing
#                 -- the CI box has 1 CPU); also asserts a run with
#                 telemetry disabled (--off) emits zero output
#   doc-check     README/DESIGN must document the core runtime types
#
# Every stage runs under a wall-clock cap (CI_STAGE_TIMEOUT seconds,
# default 1800): a convergence hang — a wedged device thread, a lost
# quiescence signal — must fail CI loudly instead of stalling the
# runner forever.
set -eu

STAGE_TIMEOUT="${CI_STAGE_TIMEOUT:-1800}"

# Runs stage `$1` under the wall-clock cap. The stage runs as a
# re-exec of this script (`__stage` dispatch below) in its own session
# via setsid, so on expiry the watcher can kill the stage's entire
# session — cargo AND the test children it spawned (even ones that made
# their own process groups) — not just the stage shell. `pkill -s`
# rather than `kill -- -pgid` because dash's kill builtin rejects
# negative pids. The watcher polls in short sleeps (never one long
# sleep) so it exits — and releases any pipe CI wraps around this
# script — promptly after the stage finishes.
run_with_timeout() {
    if command -v setsid >/dev/null 2>&1; then
        # setsid execs in place (the background job is not a group
        # leader here), so $cmd is also the new session's id.
        setsid sh "$0" __stage "$1" &
    else
        # No setsid: the session kill below degrades to a single kill.
        sh "$0" __stage "$1" &
    fi
    cmd=$!
    (
        elapsed=0
        while kill -0 "$cmd" 2>/dev/null; do
            if [ "$elapsed" -ge "$STAGE_TIMEOUT" ]; then
                echo "ci.sh: stage '$1' exceeded ${STAGE_TIMEOUT}s (convergence hang?)" >&2
                pkill -TERM -s "$cmd" 2>/dev/null || kill -TERM "$cmd" 2>/dev/null
                sleep 2
                pkill -KILL -s "$cmd" 2>/dev/null || kill -KILL "$cmd" 2>/dev/null || true
                exit 0
            fi
            sleep 5
            elapsed=$((elapsed + 5))
        done
    ) &
    watcher=$!
    rc=0
    wait "$cmd" || rc=$?
    wait "$watcher" 2>/dev/null || true
    return "$rc"
}

stage_build() {
    cargo build --release --workspace --all-targets
}

stage_test() {
    TULKUN_WORKSPACE_TESTS=1 cargo test -q --workspace
}

stage_lint() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --check
}

stage_fault_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test fault_matrix
}

stage_churn_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test churn_matrix
}

stage_intent_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test intent_matrix
}

stage_churn_intent_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test churn_intent_matrix
}

stage_backend_matrix() {
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun --test backend_equivalence
    TULKUN_WORKSPACE_TESTS=1 cargo test --release -q -p tulkun-baselines --test backend_agreement
}

stage_bench_smoke() {
    cargo run --release -p tulkun-bench --bin ablation -- \
        --scale tiny --datasets INet2,AT1-2 --updates 48
    # --ablation-set expands to ABLATION_FIGURES in crates/bench — the
    # one list both the ablation binary and this check assert against.
    cargo run --release -p tulkun-bench --bin check_figures -- --ablation-set
    # Drift check against the committed snapshot: labels and the
    # backend-equivalence verdicts must be unchanged. Message/byte
    # counts and timings are run-dependent on the event sim, so only
    # these columns are exact.
    cargo run --release -p tulkun-bench --bin check_figures -- \
        --diff BENCH_backends.json \
        "${CARGO_TARGET_DIR:-target}/figures/bench_backends.json" \
        --exact "dataset,workload,backend,same report"
    cp "${CARGO_TARGET_DIR:-target}/figures/bench_backends.json" BENCH_backends.json
    echo "bench-smoke: refreshed BENCH_backends.json"
}

stage_perf_gate() {
    cargo run --release -p tulkun-bench --bin bench_daemon -- \
        --scale tiny --updates 200
    fresh="${CARGO_TARGET_DIR:-target}/figures/bench_daemon.json"
    if [ ! -f BENCH_daemon.json ]; then
        echo "perf-gate: no committed BENCH_daemon.json; seeding from this run" >&2
        cp "$fresh" BENCH_daemon.json
    fi
    # Admission decisions depend only on queue lengths, never timing,
    # so labels, counters and the report-equivalence bit must match the
    # committed snapshot exactly. ("slo ok" is exact too: handle times
    # are measured CPU time, and the budgets carry >10x headroom.)
    cargo run --release -p tulkun-bench --bin check_figures -- \
        --diff BENCH_daemon.json "$fresh" \
        --exact "dataset,policy,loss,batches,churn,intents,queries,admitted,shed,processed,rej intents,parked,degraded,slo ok,same report"
    # The latency budget itself: p99 handle time may not regress past
    # the tolerance band. Meaningful only on a multi-core box — on one
    # CPU the daemon and the sim's bookkeeping share a core and the
    # numbers measure contention, not the data path.
    cpus="$(nproc 2>/dev/null || echo 1)"
    if [ "$cpus" -gt 1 ] || [ "${TULKUN_PERF_GATE_FORCE:-0}" = "1" ]; then
        cargo run --release -p tulkun-bench --bin check_figures -- \
            --diff BENCH_daemon.json "$fresh" \
            --gate "p99 ns" --tolerance "${PERF_GATE_TOLERANCE:-25}"
    else
        # Machine-readable marker, also recorded by bench_daemon in the
        # snapshot's "notes" field — grep for it to tell a skipped gate
        # from a passed one.
        echo "perf-gate: SKIP(reason=1cpu)"
        echo "perf-gate: SKIPPING the p99 latency gate: this host has $cpus CPU" >&2
        echo "perf-gate: (timing here measures core contention, not the daemon;" >&2
        echo "perf-gate:  set TULKUN_PERF_GATE_FORCE=1 to run the gate anyway)" >&2
    fi
    # Self-test, always on: a synthetic 2x p99 inflation must FAIL the
    # gate — proves the tripwire is armed even when the real gate was
    # skipped above.
    if cargo run --release -p tulkun-bench --bin check_figures -- \
        --diff BENCH_daemon.json BENCH_daemon.json \
        --gate "p99 ns" --tolerance "${PERF_GATE_TOLERANCE:-25}" --inflate 2 \
        >/dev/null 2>&1; then
        echo "perf-gate: self-test FAILED -- a 2x p99 inflation passed the gate" >&2
        exit 1
    fi
    echo "perf-gate: self-test ok (synthetic 2x p99 inflation trips the gate)"
    cp "$fresh" BENCH_daemon.json
    echo "perf-gate: refreshed BENCH_daemon.json"
}

stage_obs_smoke() {
    obs_dir="target/obs-smoke"
    mkdir -p "$obs_dir"
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --out "$obs_dir/trace.json" \
        --journal-out "$obs_dir/journal.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --out "$obs_dir/metrics.prom"
    # The flight-recorder dump must be schema-valid tulkun-journal-v1.
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.prom" \
        --journal "$obs_dir/journal.json"
    # The disabled path must be a no-op: zero spans, zero metrics, and
    # literally zero journal bytes.
    cargo run --release -p tulkun --bin tulkun -- \
        trace --name INet2 --scale tiny --off --out "$obs_dir/trace_off.json" \
        --journal-out "$obs_dir/journal_off.json"
    cargo run --release -p tulkun --bin tulkun -- \
        metrics --name INet2 --scale tiny --off --out "$obs_dir/metrics_off.prom"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --expect-empty \
        --trace "$obs_dir/trace_off.json" --metrics "$obs_dir/metrics_off.prom" \
        --journal "$obs_dir/journal_off.json"
    # Explain must be deterministic: two runs of the seeded fault scene
    # render byte-identical tulkun-explain-v1 JSON.
    cargo run --release -p tulkun --bin tulkun -- \
        explain --name INet2 --scale tiny --seed 3 --json \
        > "$obs_dir/explain.json" 2>/dev/null
    cargo run --release -p tulkun --bin tulkun -- \
        explain --name INet2 --scale tiny --seed 3 --json \
        > "$obs_dir/explain_rerun.json" 2>/dev/null
    cmp "$obs_dir/explain.json" "$obs_dir/explain_rerun.json"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --explain "$obs_dir/explain.json"
    # Explain from a live daemon: a scripted faulty session with an
    # impossible SLO budget must answer `events`/`explain` over the
    # wire and auto-dump its journal on the breach.
    rm -f "$obs_dir/daemon_journal.json"
    printf '%s\n' \
        "config slo 1 1 1 1" \
        "churn ci link-down SEAT LOSA" \
        "drain" \
        "events ci" \
        "explain ci SEAT" \
        "quit" \
    | cargo run --release -p tulkun --bin tulkun -- \
        daemon --name INet2 --scale tiny --faults 7 \
        --journal-dump "$obs_dir/daemon_journal.json" \
        > "$obs_dir/daemon.out"
    grep -q '"kind":"topology_churn"' "$obs_dir/daemon.out" || {
        echo "obs-smoke: daemon events reply has no topology_churn entry" >&2
        exit 1
    }
    sed -n 's/^ok \({"schema":"tulkun-explain-v1".*\)$/\1/p' \
        "$obs_dir/daemon.out" > "$obs_dir/daemon_explain.json"
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --explain "$obs_dir/daemon_explain.json"
    if [ ! -s "$obs_dir/daemon_journal.json" ]; then
        echo "obs-smoke: daemon did not auto-dump its journal on the SLO breach" >&2
        exit 1
    fi
    cargo run --release -p tulkun-bench --bin check_telemetry -- \
        --journal "$obs_dir/daemon_journal.json"
}

stage_doc_check() {
    for name in Engine ThreadedEngine FaultyTransport RuntimeStats \
                TelemetryConfig MetricsRegistry \
                DaemonSession SloTracker AdmissionPolicy \
                IntentStore RuntimeEvent \
                JournalKind explain; do
        for doc in README.md DESIGN.md; do
            if ! grep -q "$name" "$doc"; then
                echo "doc-check: $doc does not mention $name" >&2
                exit 1
            fi
        done
    done
    echo "doc-check: ok"
}

run_stage() {
    echo "== ci.sh: $1 =="
    case "$1" in
        build|test|lint|fmt|fault-matrix|churn-matrix|intent-matrix|churn-intent-matrix|backend-matrix|bench-smoke|perf-gate|obs-smoke|doc-check)
            run_with_timeout "$1"
            ;;
        all)
            for s in build test lint fmt fault-matrix churn-matrix \
                     intent-matrix churn-intent-matrix backend-matrix \
                     bench-smoke perf-gate obs-smoke doc-check; do
                run_stage "$s"
            done
            ;;
        *)
            echo "ci.sh: unknown stage '$1'" >&2
            echo "stages: build test lint fmt fault-matrix churn-matrix intent-matrix churn-intent-matrix backend-matrix bench-smoke perf-gate obs-smoke doc-check all" >&2
            exit 2
            ;;
    esac
}

# Hidden dispatch used by run_with_timeout: runs one stage function in
# the foreground of a re-exec'd (and setsid'd) copy of this script.
if [ "${1:-}" = "__stage" ]; then
    fn="stage_$(printf '%s' "$2" | tr - _)"
    "$fn"
    exit "$?"
fi

if [ "$#" -eq 0 ]; then
    run_stage all
else
    for s in "$@"; do
        run_stage "$s"
    done
fi
