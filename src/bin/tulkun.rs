//! The `tulkun` command-line tool: plan and verify invariants against a
//! network snapshot, export DPVNets, and generate datasets.
//!
//! ```text
//! tulkun datasets --name INet2 --out net.json        # generate a snapshot
//! tulkun verify --network net.json --invariants invs.tk
//! tulkun plan   --network net.json --invariant "(…)" [--dot dpvnet.dot]
//! tulkun example --out fig2a.json                    # the paper's Fig. 2a
//! ```
//!
//! Invariant files (`.tk`) hold one textual invariant per line, `#`
//! comments allowed:
//!
//! ```text
//! # every packet to 10.0.0.0/23 entering at S waypoints W
//! (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))
//! ```

use std::process::ExitCode;
use tulkun::core::planner::{Plan, PlanKind, Planner, PlannerOptions};
use tulkun::core::spec::Invariant;
use tulkun::core::verify::{verify_snapshot, ViolationKind};
use tulkun::netmodel::network::Network;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match cmd.as_str() {
        "datasets" => {
            let name = get("--name").unwrap_or_else(|| "INet2".into());
            let scale = match get("--scale").as_deref() {
                Some("paper") => tulkun::datasets::Scale::Paper,
                _ => tulkun::datasets::Scale::Tiny,
            };
            let Some(ds) = tulkun::datasets::by_name(&name, scale) else {
                eprintln!(
                    "unknown dataset {name:?}; available: {}",
                    tulkun::datasets::DATASET_NAMES.join(", ")
                );
                return ExitCode::FAILURE;
            };
            write_network(&ds.network, get("--out"))
        }
        "example" => write_network(&tulkun::datasets::fig2a_network(), get("--out")),
        "verify" => {
            let net = match load_network(get("--network")) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let invariants = match load_invariants(get("--invariants"), get("--invariant")) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let planner = Planner::with_options(
                &net.topology,
                PlannerOptions {
                    skip_consistency_check: args.iter().any(|a| a == "--no-consistency-check"),
                    ..Default::default()
                },
            );
            let mut failed = false;
            for inv in &invariants {
                let plan = match planner.plan(inv) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{}: planning failed: {e}", inv.name);
                        failed = true;
                        continue;
                    }
                };
                let report = verify_snapshot(&net, &plan);
                if report.holds() {
                    println!("PASS  {}", inv.name);
                } else {
                    failed = true;
                    println!(
                        "FAIL  {} ({} violation class(es))",
                        inv.name,
                        report.violations.len()
                    );
                    for v in report.violations.iter().take(5) {
                        describe_violation(&net, &plan, v);
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "plan" => {
            let net = match load_network(get("--network")) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(text) = get("--invariant") else {
                eprintln!("--invariant \"(...)\" required");
                return ExitCode::FAILURE;
            };
            let inv = match Invariant::parse(&text) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let planner = Planner::with_options(
                &net.topology,
                PlannerOptions {
                    skip_consistency_check: true,
                    ..Default::default()
                },
            );
            let plan = match planner.plan(&inv) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("planning failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            summarize_plan(&net, &plan);
            if let Some(path) = get("--dot") {
                let dpvnet = match &plan.kind {
                    PlanKind::Counting(c) => &c.dpvnet,
                    PlanKind::Local(l) => &l.dpvnet,
                };
                if let Err(e) = std::fs::write(&path, dpvnet.to_dot(&net.topology)) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tulkun datasets --name <NAME> [--scale tiny|paper] [--out net.json]\n  \
         tulkun example [--out net.json]\n  \
         tulkun verify --network net.json (--invariants file.tk | --invariant \"(...)\") \
         [--no-consistency-check]\n  \
         tulkun plan --network net.json --invariant \"(...)\" [--dot out.dot]"
    );
    ExitCode::FAILURE
}

fn write_network(net: &Network, out: Option<String>) -> ExitCode {
    let json = tulkun::json::to_string_pretty(net);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path}: {} devices, {} links, {} rules",
                net.topology.num_devices(),
                net.topology.num_links(),
                net.total_rules()
            );
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn load_network(path: Option<String>) -> Result<Network, String> {
    let path = path.ok_or("--network <file.json> required")?;
    let data = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    tulkun::json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))
}

fn load_invariants(file: Option<String>, inline: Option<String>) -> Result<Vec<Invariant>, String> {
    let mut out = Vec::new();
    if let Some(text) = inline {
        out.push(Invariant::parse(&text).map_err(|e| e.to_string())?);
    }
    if let Some(path) = file {
        let data = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        for (lineno, line) in data.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut inv =
                Invariant::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            if inv.name == "invariant" {
                inv.name = format!("{path}:{}", lineno + 1);
            }
            out.push(inv);
        }
    }
    if out.is_empty() {
        return Err("no invariants given (use --invariants or --invariant)".into());
    }
    Ok(out)
}

fn summarize_plan(net: &Network, plan: &Plan) {
    match &plan.kind {
        PlanKind::Counting(cp) => {
            println!(
                "counting plan: {} DPVNet nodes, {} valid paths, {} path expression(s), \
                 reduction {:?}, {} on-device tasks across {} devices",
                cp.dpvnet.num_nodes(),
                cp.dpvnet.num_paths(),
                cp.exprs.len(),
                cp.reduce,
                cp.tasks.len(),
                cp.tasks
                    .iter()
                    .map(|t| t.dev)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len(),
            );
        }
        PlanKind::Local(lp) => {
            println!(
                "local-contract plan ('equal'): {} contracts over a {}-node shortest-path DAG, \
                 zero messages",
                lp.contracts.len(),
                lp.dpvnet.num_nodes()
            );
        }
    }
    let _ = net;
}

fn describe_violation(net: &Network, plan: &Plan, v: &tulkun::core::verify::Violation) {
    let label = match &plan.kind {
        PlanKind::Counting(c) => c.dpvnet.node(v.node).label.clone(),
        PlanKind::Local(l) => l.dpvnet.node(v.node).label.clone(),
    };
    match &v.kind {
        ViolationKind::Counting { counts } => {
            println!(
                "      at {} (node {label}): per-universe counts {counts}",
                net.topology.name(v.device)
            );
        }
        ViolationKind::Contract {
            expected,
            found,
            reason,
        } => {
            let names = |ds: &[tulkun::netmodel::DeviceId]| {
                ds.iter()
                    .map(|d| net.topology.name(*d).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!(
                "      at {} (node {label}): {reason} (expected [{}], found [{}])",
                net.topology.name(v.device),
                names(expected),
                names(found)
            );
        }
    }
}
