//! The `tulkun` command-line tool: plan and verify invariants against a
//! network snapshot, export DPVNets, and generate datasets.
//!
//! ```text
//! tulkun datasets --name INet2 --out net.json        # generate a snapshot
//! tulkun verify --network net.json --invariants invs.tk
//! tulkun plan   --network net.json --invariant "(…)" [--dot dpvnet.dot]
//! tulkun example --out fig2a.json                    # the paper's Fig. 2a
//! ```
//!
//! Invariant files (`.tk`) hold one textual invariant per line, `#`
//! comments allowed:
//!
//! ```text
//! # every packet to 10.0.0.0/23 entering at S waypoints W
//! (dstIP=10.0.0.0/23, [S], (exist >= 1, /S .* W .* D/ loop_free))
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use tulkun::core::fault::FaultProfile;
use tulkun::core::planner::{Plan, PlanKind, Planner, PlannerOptions};
use tulkun::core::spec::Invariant;
use tulkun::core::verify::{verify_snapshot, ViolationKind};
use tulkun::json::Json;
use tulkun::netmodel::network::Network;
use tulkun::sim::{DvmSim, FaultyDvmSim, RuntimeStats, SimConfig, Telemetry, TelemetryConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match cmd.as_str() {
        "datasets" => {
            let name = get("--name").unwrap_or_else(|| "INet2".into());
            let scale = match get("--scale").as_deref() {
                Some("paper") => tulkun::datasets::Scale::Paper,
                _ => tulkun::datasets::Scale::Tiny,
            };
            let Some(ds) = tulkun::datasets::by_name(&name, scale) else {
                eprintln!(
                    "unknown dataset {name:?}; available: {}",
                    tulkun::datasets::DATASET_NAMES.join(", ")
                );
                return ExitCode::FAILURE;
            };
            write_network(&ds.network, get("--out"))
        }
        "example" => write_network(&tulkun::datasets::fig2a_network(), get("--out")),
        "verify" => {
            let net = match load_network(get("--network")) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let invariants = match load_invariants(get("--invariants"), get("--invariant")) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let planner = Planner::with_options(
                &net.topology,
                PlannerOptions {
                    skip_consistency_check: args.iter().any(|a| a == "--no-consistency-check"),
                    ..Default::default()
                },
            );
            let mut failed = false;
            for inv in &invariants {
                let plan = match planner.plan(inv) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{}: planning failed: {e}", inv.name);
                        failed = true;
                        continue;
                    }
                };
                let report = verify_snapshot(&net, &plan);
                if report.holds() {
                    println!("PASS  {}", inv.name);
                } else {
                    failed = true;
                    println!(
                        "FAIL  {} ({} violation class(es))",
                        inv.name,
                        report.violations.len()
                    );
                    for v in report.violations.iter().take(5) {
                        describe_violation(&net, &plan, v);
                    }
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "plan" => {
            let net = match load_network(get("--network")) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(text) = get("--invariant") else {
                eprintln!("--invariant \"(...)\" required");
                return ExitCode::FAILURE;
            };
            let inv = match Invariant::parse(&text) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let planner = Planner::with_options(
                &net.topology,
                PlannerOptions {
                    skip_consistency_check: true,
                    ..Default::default()
                },
            );
            let plan = match planner.plan(&inv) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("planning failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            summarize_plan(&net, &plan);
            if let Some(path) = get("--dot") {
                let dpvnet = match &plan.kind {
                    PlanKind::Counting(c) => &c.dpvnet,
                    PlanKind::Local(l) => &l.dpvnet,
                };
                if let Err(e) = std::fs::write(&path, dpvnet.to_dot(&net.topology)) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            ExitCode::SUCCESS
        }
        "churn" => match churn_run(&args, &get) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "daemon" => match daemon_run(&args, &get) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "status" => match status_run(&get) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "explain" => match explain_run(&args, &get) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "trace" => match observed_run(&args, &get) {
            Ok(run) => emit_observed(run.telemetry.chrome_trace_json(), &run, &args, &get),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "metrics" => match observed_run(&args, &get) {
            Ok(run) => emit_observed(run.telemetry.prometheus_text(), &run, &args, &get),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tulkun datasets --name <NAME> [--scale tiny|paper] [--out net.json]\n  \
         tulkun example [--out net.json]\n  \
         tulkun verify --network net.json (--invariants file.tk | --invariant \"(...)\") \
         [--no-consistency-check]\n  \
         tulkun plan --network net.json --invariant \"(...)\" [--dot out.dot]\n  \
         tulkun trace [--name <NAME>] [--scale tiny|paper] [--updates N] [--seed S] \
         [--backend bdd|deltanet|intervals|auto] [--faults SEED] [--off] [--out trace.json] \
         [--journal-out journal.json] [--stats]\n  \
         tulkun metrics [--name <NAME>] [--scale tiny|paper] [--updates N] [--seed S] \
         [--backend bdd|deltanet|intervals|auto] [--faults SEED] [--off] [--out metrics.prom] \
         [--journal-out journal.json] [--stats]\n  \
         tulkun churn [--name <NAME>] [--scale tiny|paper] [--seed S] [--events N] \
         [--backend bdd|deltanet|intervals|auto] [--faults SEED] [--threaded]\n  \
         tulkun daemon [--name <NAME>] [--scale tiny|paper] \
         [--backend bdd|deltanet|intervals|auto] [--faults SEED] [--policy shed|block] \
         [--queue-cap N] [--per-source-cap N] [--drain-every N] [--slo-p50 NS] [--slo-p90 NS] \
         [--slo-p99 NS] [--slo-lag-p99 NS] [--uds PATH] [--journal-dump PATH]\n  \
         tulkun status --uds PATH\n  \
         tulkun explain [--name <NAME>] [--scale tiny|paper] [--seed S] \
         [--backend bdd|deltanet|intervals|auto] [--subject <device|intent:<id>>] [--json]"
    );
    ExitCode::FAILURE
}

/// A finished, telemetry-observed DVM run (see [`observed_run`]).
struct ObservedRun {
    telemetry: Arc<Telemetry>,
    stats: RuntimeStats,
    holds: bool,
}

/// Runs one destination's counting session on a generated dataset with
/// telemetry attached: burst, then a deterministic churn trace applied
/// as coalesced batches (over a seeded lossy channel with `--faults`).
/// This is the workload behind `tulkun trace` and `tulkun metrics`.
fn observed_run(
    args: &[String],
    get: &dyn Fn(&str) -> Option<String>,
) -> Result<ObservedRun, String> {
    let name = get("--name").unwrap_or_else(|| "INet2".into());
    let scale = match get("--scale").as_deref() {
        Some("paper") => tulkun::datasets::Scale::Paper,
        _ => tulkun::datasets::Scale::Tiny,
    };
    let ds = tulkun::datasets::by_name(&name, scale).ok_or_else(|| {
        format!(
            "unknown dataset {name:?}; available: {}",
            tulkun::datasets::DATASET_NAMES.join(", ")
        )
    })?;
    let net = &ds.network;
    let (inv, cp) = dataset_session(net, &name)?;

    let telemetry = if args.iter().any(|a| a == "--off") {
        Telemetry::disabled()
    } else {
        Telemetry::new(TelemetryConfig::enabled())
    };
    let updates: usize = get("--updates").and_then(|v| v.parse().ok()).unwrap_or(16);
    let cfg = SimConfig {
        telemetry: telemetry.clone(),
        backend: parse_backend(get)?,
        update_rate_hint: updates as f64,
        ..SimConfig::default()
    };
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let trace = tulkun::datasets::rule_updates(net, updates, seed);
    let burst = (updates / 2).max(1);

    let (stats, holds) = match get("--faults").and_then(|v| v.parse::<u64>().ok()) {
        Some(fault_seed) => {
            let mut sim = FaultyDvmSim::new(
                net,
                &cp,
                &inv.packet_space,
                cfg,
                FaultProfile::loss(fault_seed, 0.10),
            );
            sim.burst();
            for chunk in trace.chunks(burst) {
                sim.apply_batch(chunk);
            }
            let holds = sim.report().holds();
            (sim.stats().clone(), holds)
        }
        None => {
            let mut sim = DvmSim::new(net, &cp, &inv.packet_space, cfg);
            sim.burst();
            for chunk in trace.chunks(burst) {
                sim.apply_batch(chunk);
            }
            let holds = sim.report().holds();
            (sim.stats().clone(), holds)
        }
    };
    Ok(ObservedRun {
        telemetry,
        stats,
        holds,
    })
}

/// Parses `--backend` into a [`tulkun::sim::BackendKind`] (defaulting
/// to the BDD backend when the flag is absent).
fn parse_backend(get: &dyn Fn(&str) -> Option<String>) -> Result<tulkun::sim::BackendKind, String> {
    match get("--backend") {
        Some(s) => s.parse().map_err(|e| format!("{e}")),
        None => Ok(tulkun::sim::BackendKind::default()),
    }
}

// The dataset workload construction lives in the library now (the
// daemon shares it); see [`tulkun::daemon::dataset_session`].
use tulkun::daemon::dataset_session;

/// `tulkun daemon`: the always-on verification service behind the
/// line-oriented request protocol (see `tulkun::daemon` module docs),
/// served over stdin/stdout or, with `--uds PATH`, a unix domain
/// socket accepting sequential client connections.
fn daemon_run(_args: &[String], get: &dyn Fn(&str) -> Option<String>) -> Result<ExitCode, String> {
    use tulkun::daemon::{serve, DaemonConfig, DaemonSession};
    use tulkun::sim::{AdmissionPolicy, ServiceConfig};
    use tulkun::telemetry::SloPolicy;

    let scale = match get("--scale").as_deref() {
        Some("paper") => tulkun::datasets::Scale::Paper,
        _ => tulkun::datasets::Scale::Tiny,
    };
    let mut slo = SloPolicy::default();
    if let Some(v) = get("--slo-p50").and_then(|v| v.parse().ok()) {
        slo.p50_ns = v;
    }
    if let Some(v) = get("--slo-p90").and_then(|v| v.parse().ok()) {
        slo.p90_ns = v;
    }
    if let Some(v) = get("--slo-p99").and_then(|v| v.parse().ok()) {
        slo.p99_ns = v;
    }
    if let Some(v) = get("--slo-lag-p99").and_then(|v| v.parse().ok()) {
        slo.lag_p99_ns = v;
    }
    let mut service = ServiceConfig {
        policy: match get("--policy").as_deref() {
            Some("shed") => AdmissionPolicy::Shed,
            Some("block") | None => AdmissionPolicy::Block,
            Some(other) => return Err(format!("unknown policy {other:?}")),
        },
        slo,
        backend: parse_backend(get)?,
        faults: get("--faults")
            .and_then(|v| v.parse::<u64>().ok())
            .map(|seed| FaultProfile::loss(seed, 0.10)),
        ..ServiceConfig::default()
    };
    if let Some(v) = get("--queue-cap").and_then(|v| v.parse().ok()) {
        service.queue_cap = v;
    }
    if let Some(v) = get("--per-source-cap").and_then(|v| v.parse().ok()) {
        service.per_source_cap = v;
    }
    let cfg = DaemonConfig {
        name: get("--name").unwrap_or_else(|| "INet2".into()),
        scale,
        service,
        drain_every: get("--drain-every")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };
    let mut session = DaemonSession::new(cfg)?;
    if let Some(path) = get("--journal-dump") {
        session.set_journal_dump(path);
    }

    match get("--uds") {
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("bind {path}: {e}"))?;
            eprintln!("tulkun daemon listening on {path}");
            loop {
                let (stream, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                let reader =
                    std::io::BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                match serve(&mut session, reader, &stream) {
                    Ok(true) => break,     // peer sent quit: daemon shuts down
                    Ok(false) => continue, // peer disconnected: next client
                    Err(e) => {
                        eprintln!("client error: {e}");
                        continue;
                    }
                }
            }
            let _ = std::fs::remove_file(&path);
            Ok(ExitCode::SUCCESS)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(&mut session, stdin.lock(), stdout.lock())
                .map_err(|e| format!("session i/o: {e}"))?;
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// `tulkun status`: one-shot client for a `--uds` daemon. Prints the
/// daemon's status and SLO verdict; exit code reflects the SLO (0 =
/// within budget).
fn status_run(get: &dyn Fn(&str) -> Option<String>) -> Result<ExitCode, String> {
    use std::io::{BufRead, BufReader, Write};

    let path = get("--uds").ok_or("--uds <path> required (the daemon's socket)")?;
    let mut stream = std::os::unix::net::UnixStream::connect(&path)
        .map_err(|e| format!("connect {path}: {e}"))?;
    stream
        .write_all(b"status\nslo\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut read_line = || -> Result<String, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        Ok(line.trim_end().to_string())
    };
    let status = read_line()?;
    let slo = read_line()?;
    println!("{status}");
    println!("{slo}");
    let ok = slo.starts_with("ok ") && slo.contains("\"ok\":true");
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `tulkun explain`: runs a seeded fault scene — one link-down plus a
/// crash/restart of the affected device, over a 10% lossy management
/// network — against a generated dataset, then asks the explain engine
/// why the affected device's slice looks the way it does. The walk is
/// deterministic: the same seed produces byte-identical `--json`
/// output across reruns. `--subject` redirects the question to another
/// device (by name) or to `intent:<id>`.
fn explain_run(args: &[String], get: &dyn Fn(&str) -> Option<String>) -> Result<ExitCode, String> {
    use tulkun::core::churn::{ChurnSchedule, TopologyEvent};
    use tulkun::core::explain::{device_verdict, explain, intent_verdict, Subject};
    use tulkun::core::intent::IntentId;

    let name = get("--name").unwrap_or_else(|| "INet2".into());
    let scale = match get("--scale").as_deref() {
        Some("paper") => tulkun::datasets::Scale::Paper,
        _ => tulkun::datasets::Scale::Tiny,
    };
    let ds = tulkun::datasets::by_name(&name, scale).ok_or_else(|| {
        format!(
            "unknown dataset {name:?}; available: {}",
            tulkun::datasets::DATASET_NAMES.join(", ")
        )
    })?;
    let net = &ds.network;
    let topo = &net.topology;
    let (inv, cp) = dataset_session(net, &name)?;
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let telemetry = Telemetry::new(TelemetryConfig::enabled());
    // The lockstep model makes the virtual timeline — and with it the
    // fault RNG draw order and the journal — a pure function of the
    // seed, so the explanation is byte-identical across reruns.
    let cfg = SimConfig {
        telemetry: telemetry.clone(),
        backend: parse_backend(get)?,
        model: tulkun::sim::SwitchModel::LOCKSTEP,
        ..SimConfig::default()
    };
    let mut sim = FaultyDvmSim::new(
        net,
        &cp,
        &inv.packet_space,
        cfg,
        FaultProfile::loss(seed, 0.10),
    );
    sim.burst();
    let schedule = ChurnSchedule::seeded(topo, &inv, seed, 8);
    let Some(ev) = schedule
        .0
        .iter()
        .find(|e| matches!(e, TopologyEvent::LinkDown(..)))
        .copied()
    else {
        return Err("no plannable link-down event for this dataset/invariant".into());
    };
    sim.apply_topology_event(&ev, topo, &inv)
        .map_err(|e| format!("churn re-plan failed: {e}"))?;
    let hit = ev.primary_device();
    sim.crash_restart(hit);
    let report = sim.report();
    eprintln!(
        "scene: {} + crash/restart of {} under 10% loss (seed {seed})",
        ev.describe(),
        topo.name(hit)
    );
    let explanation = match get("--subject") {
        Some(s) if s.starts_with("intent:") => {
            let id: u64 = s["intent:".len()..]
                .parse()
                .map_err(|_| format!("bad intent id in {s:?}"))?;
            let nodes: Vec<u32> = sim
                .intents()
                .get(IntentId(id))
                .map(|i| i.global_nodes().iter().map(|n| n.0).collect())
                .unwrap_or_default();
            let verdict = intent_verdict(&report, id, &nodes);
            explain(&telemetry.journal_events(), Subject::Intent(id), &verdict)
        }
        other => {
            let dev = match other {
                Some(name) => topo
                    .device(&name)
                    .ok_or_else(|| format!("unknown device {name:?}"))?,
                None => hit,
            };
            let nodes: Vec<u32> = sim
                .intents()
                .global_tasks()
                .iter()
                .filter(|t| t.dev == dev)
                .map(|t| t.node.0)
                .collect();
            let verdict = device_verdict(&report, dev, &nodes);
            explain(&telemetry.journal_events(), Subject::Device(dev), &verdict)
        }
    };
    if args.iter().any(|a| a == "--json") {
        println!("{}", explanation.to_json());
    } else {
        print!("{}", explanation.to_text());
    }
    Ok(ExitCode::SUCCESS)
}

/// `tulkun churn`: drives a seeded live-churn schedule against a
/// generated dataset, printing per-event epoch, re-plan reuse and
/// re-convergence cost, and the final report's freshness summary. With
/// `--threaded` the schedule runs on the concurrent substrate under
/// the convergence watchdog; with `--faults SEED` it runs over a 10%
/// lossy management network.
fn churn_run(args: &[String], get: &dyn Fn(&str) -> Option<String>) -> Result<ExitCode, String> {
    use tulkun::core::churn::{ChurnSchedule, TopologyEvent};
    use tulkun::core::verify::{Freshness, Report};

    let name = get("--name").unwrap_or_else(|| "INet2".into());
    let scale = match get("--scale").as_deref() {
        Some("paper") => tulkun::datasets::Scale::Paper,
        _ => tulkun::datasets::Scale::Tiny,
    };
    let ds = tulkun::datasets::by_name(&name, scale).ok_or_else(|| {
        format!(
            "unknown dataset {name:?}; available: {}",
            tulkun::datasets::DATASET_NAMES.join(", ")
        )
    })?;
    let net = &ds.network;
    let topo = &net.topology;
    let (inv, cp) = dataset_session(net, &name)?;
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let events: usize = get("--events").and_then(|v| v.parse().ok()).unwrap_or(4);
    let backend = parse_backend(get)?;
    let schedule = ChurnSchedule::seeded(topo, &inv, seed, events);
    if schedule.is_empty() {
        return Err("no plannable churn events for this dataset/invariant".into());
    }
    let describe = |ev: &TopologyEvent| match ev {
        TopologyEvent::LinkDown(a, b) => format!("link-down {}-{}", topo.name(*a), topo.name(*b)),
        TopologyEvent::LinkUp(a, b) => format!("link-up {}-{}", topo.name(*a), topo.name(*b)),
        TopologyEvent::DeviceDown(d) => format!("device-down {}", topo.name(*d)),
        TopologyEvent::DeviceUp(d) => format!("device-up {}", topo.name(*d)),
    };
    let summarize = |report: &Report| {
        let mut fresh = 0usize;
        let mut stale = 0usize;
        let mut unreachable = 0usize;
        for (_, f) in &report.freshness {
            match f {
                Freshness::Fresh => fresh += 1,
                Freshness::Stale(_) => stale += 1,
                Freshness::Unreachable => unreachable += 1,
            }
        }
        println!(
            "final report: holds={} violations={} fresh={fresh} stale={stale} \
             unreachable={unreachable} quarantined=[{}]",
            report.holds(),
            report.violations.len(),
            report
                .quarantined
                .iter()
                .map(|d| topo.name(*d).to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    };

    if args.iter().any(|a| a == "--threaded") {
        let ecfg = tulkun::sim::EngineConfig {
            backend,
            ..Default::default()
        };
        let cache = tulkun::sim::LecCache::new();
        let mut run =
            tulkun::sim::DistributedRun::spawn_with(net, &cp, &inv.packet_space, &ecfg, &cache);
        run.quiesce();
        let cfg = tulkun::sim::WatchdogConfig::default();
        for ev in &schedule.0 {
            run.apply_topology_event(ev, topo, &inv)
                .map_err(|e| format!("churn re-plan failed: {e}"))?;
            let verdict = run.quiesce_watched(&cfg);
            println!(
                "epoch {:>3}  {:<28} watchdog={verdict:?}",
                run.epoch(),
                describe(ev)
            );
        }
        summarize(&run.report());
        run.shutdown()
            .map_err(|p| format!("{} device task(s) panicked", p.len()))?;
    } else {
        let faults = get("--faults").and_then(|v| v.parse::<u64>().ok());
        let cfg = SimConfig {
            backend,
            ..SimConfig::default()
        };
        match faults {
            Some(fs) => {
                let mut sim = FaultyDvmSim::new(
                    net,
                    &cp,
                    &inv.packet_space,
                    cfg,
                    FaultProfile::loss(fs, 0.10),
                );
                sim.burst();
                for ev in &schedule.0 {
                    let r = sim
                        .apply_topology_event(ev, topo, &inv)
                        .map_err(|e| format!("churn re-plan failed: {e}"))?;
                    println!(
                        "epoch {:>3}  {:<28} messages={} completion_ns={}",
                        sim.epoch(),
                        describe(ev),
                        r.messages,
                        r.completion_ns
                    );
                }
                let f = sim.stats().fault;
                println!(
                    "fault channel: drops={} retransmits={} backpressure={}",
                    f.drops, f.retransmits, f.backpressure
                );
                summarize(&sim.report());
            }
            None => {
                let mut sim = DvmSim::new(net, &cp, &inv.packet_space, cfg);
                sim.burst();
                for ev in &schedule.0 {
                    let (r, total, reused) = sim
                        .apply_topology_event_with_delta(ev, topo, &inv)
                        .map_err(|e| format!("churn re-plan failed: {e}"))?;
                    println!(
                        "epoch {:>3}  {:<28} reused {reused}/{total} nodes, messages={} \
                         completion_ns={}",
                        sim.epoch(),
                        describe(ev),
                        r.messages,
                        r.completion_ns
                    );
                }
                summarize(&sim.report());
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes the exported artifact (`--out` or stdout); with `--stats`,
/// prints the final [`RuntimeStats`] as JSON on stderr.
fn emit_observed(
    artifact: String,
    run: &ObservedRun,
    args: &[String],
    get: &dyn Fn(&str) -> Option<String>,
) -> ExitCode {
    if args.iter().any(|a| a == "--stats") {
        eprintln!("{}", tulkun::json::to_string_pretty(&stats_json(run)));
    }
    if let Some(path) = get("--journal-out") {
        // Zero bytes when nothing was journaled (telemetry off, or the
        // journal ring disabled): CI asserts the disabled path writes
        // literally nothing, not an empty-but-valid dump document.
        let dump = if run.telemetry.journal_recorded() > 0 {
            run.telemetry.journal_json()
        } else {
            String::new()
        };
        if let Err(e) = std::fs::write(&path, dump) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    match get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, artifact) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{artifact}"),
    }
    ExitCode::SUCCESS
}

/// The final [`RuntimeStats`] (including fault-injection counters and
/// crash recoveries) as a JSON value.
fn stats_json(run: &ObservedRun) -> Json {
    let s = &run.stats;
    let f = &s.fault;
    let int = |v: u64| Json::Int(v as i64);
    let fault = Json::Object(vec![
        ("drops".into(), int(f.drops)),
        ("ack_drops".into(), int(f.ack_drops)),
        ("dups".into(), int(f.dups)),
        ("reorders".into(), int(f.reorders)),
        ("delays".into(), int(f.delays)),
        ("retransmits".into(), int(f.retransmits)),
        ("retransmit_bytes".into(), int(f.retransmit_bytes)),
        ("forced".into(), int(f.forced)),
        ("dup_suppressed".into(), int(f.dup_suppressed)),
        ("acks".into(), int(f.acks)),
        ("ack_bytes".into(), int(f.ack_bytes)),
    ]);
    let per_device = Json::Object(
        s.per_device
            .iter()
            .map(|(dev, d)| {
                (
                    format!("dev{}", dev.0),
                    Json::Object(vec![
                        ("init_ns".into(), int(d.init_ns)),
                        ("busy_ns".into(), int(d.busy_ns)),
                        ("messages".into(), int(d.messages)),
                        ("bytes_sent".into(), int(d.bytes_sent)),
                        ("bdd_nodes".into(), int(d.bdd_nodes as u64)),
                        ("max_msg_ns".into(), int(d.max_msg_ns)),
                    ]),
                )
            })
            .collect(),
    );
    Json::Object(vec![
        ("holds".into(), Json::Bool(run.holds)),
        ("messages".into(), int(s.messages as u64)),
        ("bytes".into(), int(s.bytes)),
        ("max_msg_ns".into(), int(s.max_msg_ns())),
        (
            "msg_samples_kept".into(),
            int(s.msg_ns_samples.len() as u64),
        ),
        ("msg_samples_seen".into(), int(s.msg_ns_samples.seen())),
        ("crashes_recovered".into(), int(s.crashes_recovered)),
        ("fault".into(), fault),
        ("per_device".into(), per_device),
        ("spans_dropped".into(), int(run.telemetry.spans_dropped())),
    ])
}

fn write_network(net: &Network, out: Option<String>) -> ExitCode {
    let json = tulkun::json::to_string_pretty(net);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {path}: {} devices, {} links, {} rules",
                net.topology.num_devices(),
                net.topology.num_links(),
                net.total_rules()
            );
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn load_network(path: Option<String>) -> Result<Network, String> {
    let path = path.ok_or("--network <file.json> required")?;
    let data = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    tulkun::json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))
}

fn load_invariants(file: Option<String>, inline: Option<String>) -> Result<Vec<Invariant>, String> {
    let mut out = Vec::new();
    if let Some(text) = inline {
        out.push(Invariant::parse(&text).map_err(|e| e.to_string())?);
    }
    if let Some(path) = file {
        let data = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        for (lineno, line) in data.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut inv =
                Invariant::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            if inv.name == "invariant" {
                inv.name = format!("{path}:{}", lineno + 1);
            }
            out.push(inv);
        }
    }
    if out.is_empty() {
        return Err("no invariants given (use --invariants or --invariant)".into());
    }
    Ok(out)
}

fn summarize_plan(net: &Network, plan: &Plan) {
    match &plan.kind {
        PlanKind::Counting(cp) => {
            println!(
                "counting plan: {} DPVNet nodes, {} valid paths, {} path expression(s), \
                 reduction {:?}, {} on-device tasks across {} devices",
                cp.dpvnet.num_nodes(),
                cp.dpvnet.num_paths(),
                cp.exprs.len(),
                cp.reduce,
                cp.tasks.len(),
                cp.tasks
                    .iter()
                    .map(|t| t.dev)
                    .collect::<std::collections::BTreeSet<_>>()
                    .len(),
            );
        }
        PlanKind::Local(lp) => {
            println!(
                "local-contract plan ('equal'): {} contracts over a {}-node shortest-path DAG, \
                 zero messages",
                lp.contracts.len(),
                lp.dpvnet.num_nodes()
            );
        }
    }
    let _ = net;
}

fn describe_violation(net: &Network, plan: &Plan, v: &tulkun::core::verify::Violation) {
    let label = match &plan.kind {
        PlanKind::Counting(c) => c.dpvnet.node(v.node).label.clone(),
        PlanKind::Local(l) => l.dpvnet.node(v.node).label.clone(),
    };
    match &v.kind {
        ViolationKind::Counting { counts } => {
            println!(
                "      at {} (node {label}): per-universe counts {counts}",
                net.topology.name(v.device)
            );
        }
        ViolationKind::Contract {
            expected,
            found,
            reason,
        } => {
            let names = |ds: &[tulkun::netmodel::DeviceId]| {
                ds.iter()
                    .map(|d| net.topology.name(*d).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!(
                "      at {} (node {label}): {reason} (expected [{}], found [{}])",
                net.topology.name(v.device),
                names(expected),
                names(found)
            );
        }
    }
}
