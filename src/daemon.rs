//! The always-on daemon behind `tulkun daemon`: a line-oriented
//! request protocol over a long-lived [`Service`].
//!
//! # Protocol grammar
//!
//! One request per line; blank lines and `#` comments are ignored
//! (no response). Every request gets exactly one reply line starting
//! `ok` or `err` — except `metrics`, whose `ok <n>` reply is followed
//! by `n` raw export lines.
//!
//! ```text
//! batch <source> <json array of rule updates>   admit a FIB batch
//! churn <source> link-down <A> <B>              admit a churn event
//! churn <source> link-up <A> <B>
//! churn <source> device-down <D>
//! churn <source> device-up <D>
//! intent add <source> <json object>             admit an intent install
//! intent remove <source> <id>                   admit an intent removal
//! drain [<max>]                                 apply queued requests
//! report                                        canonical Report JSON
//! status                                        counters + queue state
//!                                               (incl. parked/degraded)
//! slo                                           SLO verdict JSON
//! metrics                                       Prometheus exposition
//! events <source> [n]                           flight-recorder entries
//! explain <source> <node|intent:<id>>           ranked causal chain JSON
//! config backend <bdd|deltanet|intervals|auto>  hot-swap the backend
//! config policy <shed|block>                    admission policy
//! config drain-every <n>                        auto-drain cadence
//! config slo <p50> <p90> <p99> <lag-p99>        budgets, ns
//! quit                                          end the session
//! ```
//!
//! `events` replies `ok <k>` followed by `k` one-line JSON journal
//! entries (oldest first); `explain` replies one `tulkun-explain-v1`
//! JSON line. For both, `<source>` is an ingress source name or `*`
//! for all sources; a named source keeps its own entries plus untagged
//! driver-side entries (bursts, fences, admission decisions — shared
//! causal context). The `explain` subject is a device name from the
//! dataset topology or `intent:<id>`. With `--journal-dump <path>` on
//! `tulkun daemon`, the full journal is written to `<path>` whenever
//! the service observes an SLO breach or an `Unreachable` verdict.
//!
//! Rule-update JSON is the wire encoding of
//! [`netmodel::network::RuleUpdate`], e.g.
//! `[{"Insert":{"device":3,"rule":{...}}}]`.
//!
//! Intent JSON names the intent and carries the invariant in the spec
//! surface syntax, e.g. `{"name":"edge reach","spec":"(dstIP=10.0.0.0/23,
//! [S], (exist >= 1, /S .* W .* D/ loop_free))"}`. The `ok` reply to
//! `intent add` echoes the queue depth; the id the install will get is
//! reported by `status` once drained. `intent remove <id>` takes that
//! id (the base session is intent 0 and cannot be removed).
//!
//! Installs and churn interleave freely: an install whose slice cannot
//! be planned while a topology fence is in flight is *parked* (not
//! rejected) and re-planned against the next epoch, and an intent
//! whose slice churn severed *degrades* (stale results, revived by a
//! later fence) instead of poisoning the session. `status` reports
//! both populations (`parked`/`degraded` counts plus a per-intent
//! `degraded` flag), and `explain <source> intent:<id>` walks the
//! causal chain back to the fence that parked or degraded the intent.
//!
//! Determinism contract: a scripted session (batches + churn from one
//! source, drained in order) produces a final Report byte-equal to
//! applying the same events directly via `apply_batch` /
//! `apply_topology_event` — `tests/daemon_session.rs` holds this,
//! including over a 10% lossy management network.

use crate::core::churn::TopologyEvent;
use crate::core::count::CountExpr;
use crate::core::intent::IntentId;
use crate::core::planner::{CountingPlan, Planner};
use crate::core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use crate::netmodel::network::{Network, RuleUpdate};
use crate::netmodel::topology::Topology;
use crate::sim::{AdmissionPolicy, BackendKind, Service, ServiceConfig, ServiceRequest};
use crate::telemetry::SloPolicy;

/// One WAN destination's subset-reachability counting session on a
/// generated dataset (the §9.3.1 workload shape): every other device
/// delivers along loop-free, <= shortest+2 paths. This is the session
/// behind `tulkun trace`/`metrics`/`churn` and the daemon.
pub fn dataset_session(net: &Network, name: &str) -> Result<(Invariant, CountingPlan), String> {
    let topo = &net.topology;
    let (dst, _) = topo
        .external_map()
        .next()
        .ok_or_else(|| format!("dataset {name:?} announces no external prefixes"))?;
    let prefixes = topo.external_prefixes(dst).to_vec();
    let dst_name = topo.name(dst);
    let ingress: Vec<String> = topo
        .devices()
        .filter(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .collect();
    let mut ps = PacketSpace::DstPrefix(prefixes[0]);
    for p in &prefixes[1..] {
        ps = ps.or(PacketSpace::DstPrefix(*p));
    }
    let path = PathExpr::parse(&format!(". * {dst_name}"))
        .map_err(|e| e.to_string())?
        .loop_free()
        .shortest_plus(2);
    let inv = Invariant::builder()
        .name(format!("subset reachability -> {dst_name}"))
        .packet_space(ps)
        .ingress(ingress)
        .behavior(Behavior::exist(CountExpr::ge(1), path.clone()).and(Behavior::covered(path)))
        .build()
        .map_err(|e| e.to_string())?;
    let plan = Planner::new(topo)
        .plan(&inv)
        .map_err(|e| format!("planning failed: {e}"))?;
    let cp = plan
        .counting()
        .ok_or("invariant planned as a local contract; nothing to drive")?
        .clone();
    Ok((inv, cp))
}

/// Configuration for a [`DaemonSession`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Dataset the session verifies (see `tulkun datasets`).
    pub name: String,
    /// Dataset scale.
    pub scale: crate::datasets::Scale,
    /// Admission/SLO/backend/fault configuration of the service.
    pub service: ServiceConfig,
    /// Auto-drain after this many admitted requests (0 = only drain on
    /// explicit `drain` requests or `Block`-policy backpressure).
    pub drain_every: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            name: "INet2".into(),
            scale: crate::datasets::Scale::Tiny,
            service: ServiceConfig::default(),
            drain_every: 0,
        }
    }
}

/// A reply to one protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Reply text: one line, or `1 + n` lines for `metrics`.
    pub text: String,
    /// Whether the request was `quit`.
    pub quit: bool,
}

impl Reply {
    fn ok(text: impl Into<String>) -> Reply {
        Reply {
            text: format!("ok {}", text.into()),
            quit: false,
        }
    }

    fn err(text: impl Into<String>) -> Reply {
        Reply {
            text: format!("err {}", text.into()),
            quit: false,
        }
    }
}

/// The long-lived session `tulkun daemon` drives: parses protocol
/// lines, admits work into the [`Service`], answers snapshots.
pub struct DaemonSession {
    service: Service,
    topo: Topology,
    drain_every: usize,
    since_drain: usize,
    journal_dump: Option<std::path::PathBuf>,
}

impl DaemonSession {
    /// Builds the session: dataset by name → counting plan → service
    /// (initial burst included).
    pub fn new(cfg: DaemonConfig) -> Result<DaemonSession, String> {
        let ds = crate::datasets::by_name(&cfg.name, cfg.scale).ok_or_else(|| {
            format!(
                "unknown dataset {:?}; available: {}",
                cfg.name,
                crate::datasets::DATASET_NAMES.join(", ")
            )
        })?;
        let (inv, cp) = dataset_session(&ds.network, &cfg.name)?;
        let service = Service::new(&ds.network, &cp, &inv, cfg.service);
        Ok(DaemonSession {
            service,
            topo: ds.network.topology.clone(),
            drain_every: cfg.drain_every,
            since_drain: 0,
            journal_dump: None,
        })
    }

    /// Arms the journal auto-dump: whenever the service flags an SLO
    /// breach or an `Unreachable` verdict, the full journal is written
    /// to `path` (overwriting the previous dump).
    pub fn set_journal_dump(&mut self, path: impl Into<std::path::PathBuf>) {
        self.journal_dump = Some(path.into());
    }

    /// Writes the journal to the armed dump path if the service has a
    /// dump pending. Returns the path written to, if any.
    pub fn maybe_dump_journal(&mut self) -> std::io::Result<Option<std::path::PathBuf>> {
        let Some(path) = self.journal_dump.clone() else {
            // No dump armed: leave the pending flag for an embedder
            // that polls `Service::take_dump_pending` itself.
            return Ok(None);
        };
        if !self.service.take_dump_pending() {
            return Ok(None);
        }
        std::fs::write(&path, self.service.journal_json())?;
        Ok(Some(path))
    }

    /// Direct access to the underlying service (tests, embedding).
    pub fn service_mut(&mut self) -> &mut Service {
        &mut self.service
    }

    /// The session's topology (device-name resolution).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Handles one protocol line. `None` for blank lines and comments;
    /// otherwise exactly one [`Reply`].
    pub fn handle_line(&mut self, line: &str) -> Option<Reply> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        Some(match cmd {
            "batch" => self.handle_batch(rest),
            "churn" => self.handle_churn(rest),
            "intent" => self.handle_intent(rest),
            "drain" => {
                let max = if rest.is_empty() {
                    usize::MAX
                } else {
                    match rest.parse() {
                        Ok(n) => n,
                        Err(_) => return Some(Reply::err(format!("bad drain count {rest:?}"))),
                    }
                };
                let n = self.service.drain_upto(max);
                self.since_drain = 0;
                Reply::ok(format!("processed={n}"))
            }
            "report" => {
                let bytes = self.service.report().canonical_bytes();
                Reply::ok(String::from_utf8_lossy(&bytes).into_owned())
            }
            "status" => Reply::ok(crate::json::to_string(&self.service.status().to_json())),
            "slo" => Reply::ok(crate::json::to_string(&self.service.slo().to_json())),
            "metrics" => {
                let text = self.service.metrics_text();
                let lines: Vec<&str> = text.lines().collect();
                let mut out = format!("ok {}", lines.len());
                for l in &lines {
                    out.push('\n');
                    out.push_str(l);
                }
                Reply {
                    text: out,
                    quit: false,
                }
            }
            "events" => self.handle_events(rest),
            "explain" => self.handle_explain(rest),
            "config" => self.handle_config(rest),
            "quit" => Reply {
                text: "ok bye".into(),
                quit: true,
            },
            other => Reply::err(format!("unknown request {other:?}")),
        })
    }

    fn handle_batch(&mut self, rest: &str) -> Reply {
        let Some((source, json)) = rest.split_once(char::is_whitespace) else {
            return Reply::err("usage: batch <source> <json array>");
        };
        let updates: Vec<RuleUpdate> = match crate::json::from_str(json.trim()) {
            Ok(u) => u,
            Err(e) => return Reply::err(format!("bad batch json: {e}")),
        };
        let n = updates.len();
        match self.service.offer(source, ServiceRequest::Batch(updates)) {
            Ok(()) => {
                self.after_admit();
                Reply::ok(format!(
                    "admitted={n} queued={}",
                    self.service.status().queued
                ))
            }
            Err(e) => Reply::err(e.to_string()),
        }
    }

    fn handle_churn(&mut self, rest: &str) -> Reply {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let dev = |name: &str| {
            self.topo
                .device(name)
                .ok_or_else(|| format!("unknown device {name:?}"))
        };
        let ev = match parts.as_slice() {
            [_, "link-down", a, b] => match (dev(a), dev(b)) {
                (Ok(a), Ok(b)) => TopologyEvent::LinkDown(a, b),
                (Err(e), _) | (_, Err(e)) => return Reply::err(e),
            },
            [_, "link-up", a, b] => match (dev(a), dev(b)) {
                (Ok(a), Ok(b)) => TopologyEvent::LinkUp(a, b),
                (Err(e), _) | (_, Err(e)) => return Reply::err(e),
            },
            [_, "device-down", d] => match dev(d) {
                Ok(d) => TopologyEvent::DeviceDown(d),
                Err(e) => return Reply::err(e),
            },
            [_, "device-up", d] => match dev(d) {
                Ok(d) => TopologyEvent::DeviceUp(d),
                Err(e) => return Reply::err(e),
            },
            _ => {
                return Reply::err(
                    "usage: churn <source> (link-down|link-up) <A> <B> | \
                     churn <source> (device-down|device-up) <D>",
                )
            }
        };
        match self.service.offer(parts[0], ServiceRequest::Churn(ev)) {
            Ok(()) => {
                self.after_admit();
                Reply::ok(format!("queued={}", self.service.status().queued))
            }
            Err(e) => Reply::err(e.to_string()),
        }
    }

    fn handle_intent(&mut self, rest: &str) -> Reply {
        const USAGE: &str =
            "usage: intent add <source> {\"name\":...,\"spec\":...} | intent remove <source> <id>";
        let Some((verb, rest)) = rest.split_once(char::is_whitespace) else {
            return Reply::err(USAGE);
        };
        let Some((source, arg)) = rest.trim().split_once(char::is_whitespace) else {
            return Reply::err(USAGE);
        };
        let req = match verb {
            "add" => {
                let obj = match crate::json::parse(arg.trim()) {
                    Ok(o) => o,
                    Err(e) => return Reply::err(format!("bad intent json: {e}")),
                };
                let Some(name) = obj.get("name").and_then(|v| v.as_str()) else {
                    return Reply::err("intent json needs a string \"name\" field");
                };
                let Some(spec) = obj.get("spec").and_then(|v| v.as_str()) else {
                    return Reply::err("intent json needs a string \"spec\" field");
                };
                let invariant = match Invariant::parse(spec) {
                    Ok(inv) => inv,
                    Err(e) => return Reply::err(format!("bad intent spec: {e}")),
                };
                ServiceRequest::IntentAdd {
                    name: name.to_string(),
                    invariant,
                }
            }
            "remove" => match arg.trim().parse::<u64>() {
                Ok(id) => ServiceRequest::IntentRemove(IntentId(id)),
                Err(_) => return Reply::err(format!("bad intent id {arg:?}")),
            },
            _ => return Reply::err(USAGE),
        };
        match self.service.offer(source, req) {
            Ok(()) => {
                self.after_admit();
                Reply::ok(format!("queued={}", self.service.status().queued))
            }
            Err(e) => Reply::err(e.to_string()),
        }
    }

    /// `events <source> [n]`: the newest `n` (default: all) journal
    /// entries visible to `source` (`*` = every source), oldest first,
    /// as `ok <k>` plus `k` one-line JSON entries.
    fn handle_events(&mut self, rest: &str) -> Reply {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (source, limit) = match parts.as_slice() {
            [source] => (*source, usize::MAX),
            [source, n] => match n.parse::<usize>() {
                Ok(n) => (*source, n),
                Err(_) => return Reply::err(format!("bad event count {n:?}")),
            },
            _ => return Reply::err("usage: events <source|*> [n]"),
        };
        let filter = (source != "*").then_some(source);
        let events = self.service.journal_events(filter, limit);
        let mut out = format!("ok {}", events.len());
        for e in &events {
            out.push('\n');
            out.push_str(&crate::json::to_string(&e.to_json()));
        }
        Reply {
            text: out,
            quit: false,
        }
    }

    /// `explain <source> <node|intent:<id>>`: the ranked causal chain
    /// for a device's or intent's current verdict, walked out of the
    /// journal entries visible to `source` (`*` = every source), as
    /// one `tulkun-explain-v1` JSON line.
    fn handle_explain(&mut self, rest: &str) -> Reply {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [source, subject] = parts.as_slice() else {
            return Reply::err("usage: explain <source|*> <node|intent:<id>>");
        };
        let filter = (*source != "*").then_some(*source);
        let explanation = if let Some(id) = subject.strip_prefix("intent:") {
            let Ok(id) = id.parse::<u64>() else {
                return Reply::err(format!("bad intent id {id:?}"));
            };
            self.service.explain_intent(filter, id)
        } else {
            let Some(dev) = self.topo.device(subject) else {
                return Reply::err(format!("unknown device {subject:?}"));
            };
            self.service.explain_device(filter, dev)
        };
        Reply::ok(explanation.to_json())
    }

    fn handle_config(&mut self, rest: &str) -> Reply {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["backend", kind] => {
                let kind: BackendKind = match kind.parse() {
                    Ok(k) => k,
                    Err(e) => return Reply::err(format!("{e}")),
                };
                match self.service.set_backend(kind) {
                    Ok(()) => Reply::ok(format!("backend={kind}")),
                    Err(e) => Reply::err(e.to_string()),
                }
            }
            ["policy", p] => {
                let policy = match *p {
                    "shed" => AdmissionPolicy::Shed,
                    "block" => AdmissionPolicy::Block,
                    other => return Reply::err(format!("unknown policy {other:?}")),
                };
                self.service.set_policy(policy);
                Reply::ok(format!("policy={p}"))
            }
            ["drain-every", n] => match n.parse::<usize>() {
                Ok(n) => {
                    self.drain_every = n;
                    Reply::ok(format!("drain-every={n}"))
                }
                Err(_) => Reply::err(format!("bad drain-every {n:?}")),
            },
            ["slo", p50, p90, p99, lag] => {
                let parse = |s: &str| s.parse::<u64>().map_err(|_| format!("bad budget {s:?}"));
                match (parse(p50), parse(p90), parse(p99), parse(lag)) {
                    (Ok(p50_ns), Ok(p90_ns), Ok(p99_ns), Ok(lag_p99_ns)) => {
                        self.service.set_slo(SloPolicy {
                            p50_ns,
                            p90_ns,
                            p99_ns,
                            lag_p99_ns,
                            ..*self.service_slo_policy()
                        });
                        Reply::ok("slo updated")
                    }
                    (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (.., Err(e)) => {
                        Reply::err(e)
                    }
                }
            }
            _ => Reply::err(
                "usage: config backend <kind> | config policy <shed|block> | \
                 config drain-every <n> | config slo <p50> <p90> <p99> <lag-p99>",
            ),
        }
    }

    fn service_slo_policy(&self) -> &SloPolicy {
        // The tracker's current policy (windows/min_samples survive a
        // budget edit).
        self.service.slo_policy()
    }

    fn after_admit(&mut self) {
        self.since_drain += 1;
        if self.drain_every > 0 && self.since_drain >= self.drain_every {
            self.service.drain();
            self.since_drain = 0;
        }
    }
}

/// Serves a full session over any line stream: reads requests from
/// `input`, writes replies to `output`, stops on EOF or `quit`.
/// Returns whether the peer asked to quit (vs plain EOF).
pub fn serve<R: std::io::BufRead, W: std::io::Write>(
    session: &mut DaemonSession,
    input: R,
    mut output: W,
) -> std::io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        let Some(reply) = session.handle_line(&line) else {
            continue;
        };
        writeln!(output, "{}", reply.text)?;
        output.flush()?;
        if let Some(path) = session.maybe_dump_journal()? {
            eprintln!("tulkun daemon: journal dumped to {}", path.display());
        }
        if reply.quit {
            return Ok(true);
        }
    }
    Ok(false)
}

/// A one-line JSON summary a client (e.g. `tulkun status`) can request
/// remotely and a human can read: status + SLO verdict.
pub fn status_line(session: &mut DaemonSession) -> String {
    let status = crate::json::to_string(&session.service.status().to_json());
    let slo = crate::json::to_string(&session.service.slo().to_json());
    format!("{{\"status\":{status},\"slo\":{slo}}}")
}
