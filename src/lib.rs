//! # Tulkun — distributed, on-device data plane verification
//!
//! This is the facade crate for the Tulkun workspace, a Rust reproduction of
//! *"Network can check itself: scaling data plane checking via distributed,
//! on-device verification"* (HotNets '22) and its extended SIGCOMM '23
//! version.
//!
//! Tulkun transforms data plane verification (DPV) into a counting problem
//! on a DAG — **DPVNet** — that compactly represents all valid paths of an
//! invariant, decomposes the count into lightweight per-device tasks, and
//! runs those tasks on the devices themselves, connected by the **DVM**
//! (distributed verification messaging) protocol.
//!
//! ## Crate map
//!
//! * [`bdd`] — binary decision diagrams used to encode packet-set predicates.
//! * [`netmodel`] — topologies, FIBs (match-action tables), routing.
//! * [`automata`] — regular expressions over device names, compiled to DFAs.
//! * [`predicate`] — the pluggable [`predicate::PredicateBackend`] trait
//!   with the BDD, Delta-net and interval-set LEC encodings, all
//!   exporting byte-identical wire predicates.
//! * [`core`] — the paper's contribution: specification language, planner,
//!   DPVNet, counting, the DVM protocol, on-device verifiers, and
//!   fault-tolerance support.
//! * [`sim`] — the shared device-runtime layer (`Engine`, `Transport`,
//!   `Clock`, `RuntimeStats`) with its substrates: a discrete-event
//!   simulator and a threaded distributed runner that execute the
//!   verifiers at scale.
//! * [`telemetry`] — span tracing, the sharded metrics registry, and
//!   the Chrome-trace / Prometheus exporters shared by every substrate.
//! * [`json`] — the vendored, dependency-free JSON (de)serialization
//!   layer the workspace uses for all wire and sidecar formats.
//! * [`baselines`] — centralized DPV baselines (AP, APKeep, Delta-net,
//!   VeriFlow, Flash) used by the evaluation harness.
//! * [`datasets`] — generators for the thirteen evaluation datasets.
//!
//! ## Quickstart
//!
//! ```
//! use tulkun::prelude::*;
//!
//! // Build the 5-device example network of the paper's Figure 2a.
//! let net = tulkun::datasets::fig2a_network();
//!
//! // "Every packet to 10.0.0.0/23 entering at S reaches D via a simple
//! //  path through the waypoint W."
//! let inv = Invariant::builder()
//!     .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
//!     .ingress(["S"])
//!     .behavior(Behavior::exist(
//!         CountExpr::ge(1),
//!         PathExpr::parse("S .* W .* D").unwrap().loop_free(),
//!     ))
//!     .build()
//!     .unwrap();
//!
//! // Plan: invariant × topology → DPVNet → on-device tasks.
//! let plan = Planner::new(&net.topology).plan(&inv).unwrap();
//!
//! // Verify in-process (the simulator and threaded runner exercise the
//! // same verifier code distributed across devices).
//! let report = verify_snapshot(&net, &plan);
//! assert!(!report.holds()); // Fig. 2a's data plane violates the invariant.
//! ```

pub mod daemon;

pub use tulkun_automata as automata;
pub use tulkun_baselines as baselines;
pub use tulkun_bdd as bdd;
pub use tulkun_core as core;
pub use tulkun_datasets as datasets;
pub use tulkun_json as json;
pub use tulkun_netmodel as netmodel;
pub use tulkun_predicate as predicate;
pub use tulkun_sim as sim;
pub use tulkun_telemetry as telemetry;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tulkun_core::count::{CountExpr, Counts};
    pub use tulkun_core::dpvnet::DpvNet;
    pub use tulkun_core::planner::{Plan, Planner};
    pub use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
    pub use tulkun_core::verify::{verify_snapshot, Report};
    pub use tulkun_netmodel::fib::{Action, ActionType, Fib, Rule};
    pub use tulkun_netmodel::network::Network;
    pub use tulkun_netmodel::topology::{DeviceId, Topology};
}
