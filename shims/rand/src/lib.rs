#![warn(missing_docs)]
//! A vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in fully offline environments, so the handful
//! of `rand` features the repo uses are reimplemented here and the
//! dependency key `rand` is mapped to this crate in `Cargo.toml`
//! (`rand = { path = ..., package = "tulkun-rand" }`). Call sites keep
//! the upstream spelling (`use rand::{Rng, SeedableRng}`).
//!
//! Only the surface the repo exercises is provided: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. Distribution details differ
//! from upstream `rand` (this is not a bit-compatible clone); every
//! generator here is deterministic in its seed, which is the property
//! the datasets and tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    /// Panics on empty ranges, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors upstream rand's structure: `Range<T>` implements
/// [`SampleRange<T>`] for any `T: SampleUniform`, so the element type
/// of a range literal is inferred from surrounding context (e.g.
/// `rng.gen_range(2..30) * some_u64` samples a `u64`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Bounds are pre-validated.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform `u64` in `[0, n)` without modulo bias (rejection sampling).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// The `rngs` module of upstream rand, reduced to [`rngs::SmallRng`].
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(5u32..5);
    }
}
