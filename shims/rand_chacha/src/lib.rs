#![warn(missing_docs)]
//! A vendored ChaCha8-based RNG exposing the same names the repo used
//! from the external `rand_chacha` crate ([`ChaCha8Rng`]).
//!
//! Implements the real ChaCha8 stream cipher keystream (RFC 8439 round
//! function, 8 rounds) over the [`rand`] shim traits, so dataset
//! generation keeps a statistically strong, seed-deterministic source.
//! `seed_from_u64` expands the 64-bit state into a 32-byte key with
//! SplitMix64 — the exact stream differs from upstream `rand_chacha`,
//! but determinism per seed (the property tests and datasets rely on)
//! is preserved.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 64-byte output block, as sixteen 32-bit words.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds a generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // words 12..14: 64-bit block counter; 14..16: nonce (zero).
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = working;
        self.cursor = 0;
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as upstream rand does for seeds.
        let mut s = state;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        // 16 words per block: draw 40 words and make sure refills work
        // and values are not trivially repeating.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let unique: std::collections::BTreeSet<_> = words.iter().collect();
        assert!(unique.len() > 35, "keystream looks degenerate: {words:?}");
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0u32..10);
            assert!(x < 10);
        }
    }
}
