#![warn(missing_docs)]
//! Dependency-free JSON for the tulkun workspace: a [`Json`] value
//! type, a strict recursive-descent parser, compact and pretty
//! writers, and [`ToJson`]/[`FromJson`] conversion traits with an
//! [`impl_json_object!`] helper macro for plain structs.
//!
//! This replaces `serde`/`serde_json`, which cannot be fetched in the
//! offline build environment. The API mirrors the serde_json entry
//! points the repo used — [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`from_slice`] — over explicit trait impls instead of
//! derives. Struct fields serialize in declaration order and objects
//! preserve insertion order, which gives deterministic bytes for equal
//! values (the cross-substrate equivalence test depends on this).
//!
//! Numbers are kept as `i64` or `f64`; every integer the workspace
//! serializes (u8..u32, small u64 counters) fits `i64` exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// A number with fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (linear; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// Parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Error for an absent required object field.
    pub fn missing_field(name: &str) -> Self {
        JsonError::new(format!("missing field `{name}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, got: &Json) -> Self {
        JsonError::new(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------- writer

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` omits ".0" for integral floats; keep it so the value
        // re-parses as a float, matching serde_json's behaviour.
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json writes null.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => write_float(out, *x),
        Json::Str(s) => write_escaped(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Json, indent: usize) {
    const STEP: usize = 2;
    match v {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {word})")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // we only parse from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Parses a complete JSON document from a string.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// ---------------------------------------------------------------- traits

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or explains why the value doesn't fit.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_compact(&mut out, &value.to_json());
    out
}

/// Serializes to human-readable, 2-space-indented JSON text.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_json(), 0);
    out
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

/// Parses a value of `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: FromJson>(input: &[u8]) -> Result<T, JsonError> {
    let s =
        std::str::from_utf8(input).map_err(|e| JsonError::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::try_from(*self).expect("integer too large for JSON i64"))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| JsonError::new(format!(
                            "{} out of range for {}", i, stringify!($t)))),
                    other => Err(JsonError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            other => Err(JsonError::expected("number", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::expected("array", other)),
        }
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::expected("array", other)),
        }
    }
}

impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        // Pairs, not a JSON object: keys may not be strings.
        Json::Array(
            self.iter()
                .map(|(k, v)| Json::Array(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::expected("array of pairs", v))?;
        items
            .iter()
            .map(|item| {
                let pair = item
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| JsonError::expected("[key, value] pair", item))?;
                Ok((K::from_json(&pair[0])?, V::from_json(&pair[1])?))
            })
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

macro_rules! impl_json_tuple {
    ($( ($len:literal: $($t:ident . $idx:tt),+) )*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($t: FromJson),+> FromJson for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v
                    .as_array()
                    .filter(|a| a.len() == $len)
                    .ok_or_else(|| JsonError::expected(
                        concat!($len, "-element array"), v))?;
                Ok(($($t::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
}

/// Implements [`ToJson`]/[`FromJson`] for a plain struct by listing
/// its fields, replacing what a serde derive used to do. Must be
/// invoked where the fields are visible. Fields serialize in the order
/// given; missing fields fail `from_json` (no defaults).
#[macro_export]
macro_rules! impl_json_object {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::FromJson::from_json(
                        v.get(stringify!($field))
                            .ok_or_else(|| $crate::JsonError::missing_field(stringify!($field)))?,
                    )?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\uD83D\uDE00""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndA😀".to_string()));
        let rendered = to_string(&Json::Str("tab\there \u{1}".into()));
        assert_eq!(rendered, r#""tab\there \u0001""#);
        assert_eq!(
            parse(&rendered).unwrap(),
            Json::Str("tab\there \u{1}".into())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": {"d": [true, false], "e": -2.25}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "[1] x",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u32,
        name: String,
        tags: Vec<(u32, String)>,
        note: Option<String>,
    }
    impl_json_object!(Demo {
        id,
        name,
        tags,
        note
    });

    #[test]
    fn object_macro_round_trips() {
        let d = Demo {
            id: 7,
            name: "x".into(),
            tags: vec![(1, "a".into()), (2, "b".into())],
            note: None,
        };
        let s = to_string(&d);
        let back: Demo = from_str(&s).unwrap();
        assert_eq!(back, d);
        let pretty = to_string_pretty(&d);
        let back2: Demo = from_slice(pretty.as_bytes()).unwrap();
        assert_eq!(back2, d);
    }

    #[test]
    fn missing_field_is_reported() {
        let err = from_str::<Demo>(r#"{"id": 1, "name": "x", "note": null}"#).unwrap_err();
        assert!(err.to_string().contains("tags"), "{err}");
    }
}
