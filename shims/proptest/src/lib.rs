//! A vendored mini property-testing framework exposing the subset of
//! the `proptest` API this repo uses, so the workspace builds fully
//! offline. The dependency key `proptest` maps here via
//! `proptest = { path = ..., package = "tulkun-proptest" }`, keeping
//! `use proptest::prelude::*` call sites unchanged.
//!
//! Differences from upstream proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its seed and case index;
//!   re-running is deterministic, so the case reproduces exactly.
//! - `prop_assert*` panics (like `assert*`) instead of returning a
//!   `Result`; test bodies here never rely on early-return semantics.
//! - `prop_recursive`'s `desired_size`/`expected_branch` hints are
//!   accepted but only depth is honoured.
//!
//! Supported surface: [`Strategy`] (`prop_map`, `prop_recursive`,
//! `boxed`), [`BoxedStrategy`], [`Just`], `any::<T>()`, ranges as
//! strategies, tuples of strategies (arity 2–6), [`collection::vec`],
//! [`collection::btree_set`], [`option::of`], `prop_oneof!`,
//! `proptest!` (with optional `#![proptest_config(...)]`),
//! `prop_assert!`, `prop_assert_eq!`, and [`ProptestConfig`].

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving test-case generation. Deterministic per test name,
/// so failures reproduce without a persisted regression file.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded from the test's name (FNV-1a hash), so every
    /// test gets an independent but fully reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value-tree/shrinking layer: a
/// strategy directly produces a value from the test RNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// sub-terms and returns the strategy for one composite level.
    /// Levels are expanded `depth` times; at each level the generator
    /// picks the composite case twice as often as a leaf, so trees of
    /// all depths up to `depth` occur.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(level).boxed();
            let leaf = leaf.clone();
            level = BoxedStrategy::new(move |rng| {
                if rng.gen_range(0u32..3) == 0 {
                    leaf.generate(rng)
                } else {
                    composite.generate(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable via `Rc`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy mapping another strategy's output (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one case");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a whole type's domain; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s (see [`btree_set`]).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below the target; a bounded
            // number of extra draws restores it when the element
            // domain is large enough.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A strategy for `BTreeSet`s with element strategy and size spec.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies (`of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Option`s (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` three quarters of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Like `assert!`, evaluated inside a generated test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, evaluated inside a generated test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn` runs `config.cases` times with
/// freshly generated inputs. On failure the panic message names the
/// test and case index; generation is deterministic per test name, so
/// every failure reproduces exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$attr:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let run = || {
                        let ($($pat,)+) =
                            ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                        $body
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (deterministic; rerun reproduces)",
                            stringify!($name), case, config.cases
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_and_tuples");
        let s = (0u32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_case() {
        let mut rng = crate::TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let seen: std::collections::BTreeSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn recursive_strategy_varies_depth() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_test("recursive");
        let depths: std::collections::BTreeSet<u32> =
            (0..300).map(|_| depth(&s.generate(&mut rng))).collect();
        assert!(depths.len() >= 3, "expected varied depths, got {depths:?}");
        assert!(depths.iter().all(|&d| d <= 4));
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_test("collections");
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..100, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let exact = crate::collection::vec(any::<u16>(), 24usize).generate(&mut rng);
            assert_eq!(exact.len(), 24);
            let set = crate::collection::btree_set(0u32..1000, 2..5).generate(&mut rng);
            assert!((2..5).contains(&set.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn proptest_macro_binds_patterns((a, b) in (0u32..5, 0u32..5), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(v.len() < 4, true, "len was {}", v.len());
        }
    }
}
