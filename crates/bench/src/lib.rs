//! Shared machinery for the figure-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation: it builds the workload, runs Tulkun (simulated on
//! the measured-CPU event simulator) and the centralized baselines, and
//! prints the same rows/series the paper reports. Results are also
//! written as JSON under `target/figures/` so EXPERIMENTS.md can be
//! regenerated mechanically.

pub mod replay;
pub mod report;
pub mod workload;

pub use replay::{churn_trace, replay_trace, replay_trace_with, ReplayOutcome};
pub use report::FigureTable;
pub use workload::{all_pair_workload, AllPairRun, TulkunAllPairs};

/// Every figure id the `ablation` binary emits, in emission order —
/// the single source of truth `check_figures --ablation-set` and the
/// `bench-smoke` CI stage validate against. Adding a figure to the
/// ablation harness without listing it here (or vice versa) fails CI,
/// so a new figure cannot silently escape validation.
pub const ABLATION_FIGURES: &[&str] = &[
    "ablation_reduction",
    "ablation_suffix_merge",
    "ablation_lec_sharing",
    "ablation_scene_reuse",
    "ablation_parallel_init",
    "ablation_fault_overhead",
    "ablation_burst_updates",
    "ablation_churn",
    "bench_backends",
];

/// Parses `--scale tiny|paper` and `--datasets a,b,c` style CLI args.
pub struct Cli {
    pub scale: tulkun_datasets::Scale,
    pub datasets: Option<Vec<String>>,
    pub updates: usize,
    pub scenes: usize,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let mut scale = tulkun_datasets::Scale::Tiny;
        let mut datasets = None;
        let mut updates = 200;
        let mut scenes = 10;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    scale = match args.get(i).map(String::as_str) {
                        Some("paper") => tulkun_datasets::Scale::Paper,
                        _ => tulkun_datasets::Scale::Tiny,
                    };
                }
                "--datasets" => {
                    i += 1;
                    datasets = args.get(i).map(|s| {
                        s.split(',')
                            .map(|x| x.trim().to_string())
                            .collect::<Vec<_>>()
                    });
                }
                "--updates" => {
                    i += 1;
                    updates = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(updates);
                }
                "--scenes" => {
                    i += 1;
                    scenes = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(scenes);
                }
                other => {
                    eprintln!("ignoring unknown argument {other:?}");
                }
            }
            i += 1;
        }
        Cli {
            scale,
            datasets,
            updates,
            scenes,
        }
    }

    /// Does the run include this dataset?
    pub fn wants(&self, name: &str) -> bool {
        self.datasets
            .as_ref()
            .is_none_or(|d| d.iter().any(|x| x == name))
    }
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The p-quantile (0..=1) of a sample, by sorting.
pub fn quantile(xs: &[u64], p: f64) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    v[idx.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&xs, 0.0), 1);
        assert_eq!(quantile(&xs, 1.0), 100);
        let q80 = quantile(&xs, 0.8);
        assert!((79..=81).contains(&q80));
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
