//! Update-trace replay: replays a deterministic churn trace
//! ([`tulkun_datasets::rule_updates`]) against one destination's DVM
//! session, either rule-by-rule or as coalesced per-device bursts, and
//! reports the wire cost and verification time of each regime. The
//! final [`Report`] must be byte-identical across burst sizes — the
//! batched pipeline changes how much work is done, never the verdict.

use tulkun_core::planner::CountingPlan;
use tulkun_core::spec::PacketSpace;
use tulkun_datasets::rule_updates;
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_sim::{BackendKind, DvmSim, SimConfig, Telemetry, TelemetryConfig};
use tulkun_telemetry::HANDLE_NS;

/// Cost and verdict of one trace replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Rule updates replayed.
    pub updates: usize,
    /// Batches applied (== `updates` at burst size 1).
    pub batches: usize,
    /// Summed simulated verification time across batches.
    pub completion_ns: u64,
    /// DVM messages sent re-converging after the trace.
    pub messages: usize,
    /// DVM bytes on the wire re-converging after the trace.
    pub bytes: u64,
    /// Canonical bytes of the final report (burst-size independent).
    pub report: Vec<u8>,
    /// Per-message handle-time percentiles (scaled ns), derived from
    /// the telemetry `tulkun_dvm_handle_ns` histogram — bucket upper
    /// bounds, so values are quantized to the 1-2-5 grid.
    pub p50_ns: u64,
    /// 90th percentile of per-message handle time (scaled ns).
    pub p90_ns: u64,
    /// 99th percentile of per-message handle time (scaled ns).
    pub p99_ns: u64,
}

/// Replays `trace` in chunks of `burst` updates (each chunk applied as
/// one coalesced [`tulkun_netmodel::UpdateBatch`]); `burst = 1` is the
/// per-rule baseline.
pub fn replay_trace(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    trace: &[RuleUpdate],
    burst: usize,
) -> ReplayOutcome {
    replay_trace_with(net, cp, ps, trace, burst, BackendKind::Bdd)
}

/// Like [`replay_trace`], on an explicit predicate backend. The trace
/// length doubles as the `Auto` update-rate hint, so `Auto` picks the
/// Delta-net encoding for IP-only bursty replays.
pub fn replay_trace_with(
    net: &Network,
    cp: &CountingPlan,
    ps: &PacketSpace,
    trace: &[RuleUpdate],
    burst: usize,
    backend: BackendKind,
) -> ReplayOutcome {
    assert!(burst > 0, "burst size must be positive");
    let telemetry = Telemetry::new(TelemetryConfig::enabled());
    let mut sim = DvmSim::new(
        net,
        cp,
        ps,
        SimConfig {
            telemetry: telemetry.clone(),
            backend,
            update_rate_hint: trace.len() as f64,
            ..SimConfig::default()
        },
    );
    sim.burst();
    let mut out = ReplayOutcome {
        updates: trace.len(),
        batches: 0,
        completion_ns: 0,
        messages: 0,
        bytes: 0,
        report: Vec::new(),
        p50_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
    };
    for chunk in trace.chunks(burst) {
        let r = sim.apply_batch(chunk);
        out.batches += 1;
        out.completion_ns += r.completion_ns;
        out.messages += r.messages;
        out.bytes += r.bytes;
    }
    out.report = sim.report().canonical_bytes();
    let m = telemetry.metrics();
    out.p50_ns = m.percentile(HANDLE_NS.name, 0.50).unwrap_or(0);
    out.p90_ns = m.percentile(HANDLE_NS.name, 0.90).unwrap_or(0);
    out.p99_ns = m.percentile(HANDLE_NS.name, 0.99).unwrap_or(0);
    out
}

/// A deterministic churn trace for a dataset network (first announced
/// destination's session replays it).
pub fn churn_trace(net: &Network, n: usize, seed: u64) -> Vec<RuleUpdate> {
    rule_updates(net, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_bench_testutil::*;

    #[test]
    fn burst_sizes_agree_on_the_verdict() {
        let (net, cp, ps) = inet2_session();
        let trace = churn_trace(&net, 24, 7);
        let per_rule = replay_trace(&net, &cp, &ps, &trace, 1);
        let batched = replay_trace(&net, &cp, &ps, &trace, 8);
        assert_eq!(per_rule.updates, 24);
        assert_eq!(per_rule.batches, 24);
        assert_eq!(batched.batches, 3);
        assert_eq!(
            per_rule.report, batched.report,
            "burst size must not change the verdict"
        );
        // Message counts depend on delivery order (the event sim
        // schedules by measured CPU time), so only the verdict is
        // asserted, not the wire counters.
    }

    #[test]
    fn backends_agree_on_the_replayed_report() {
        let (net, cp, ps) = inet2_session();
        let trace = churn_trace(&net, 24, 7);
        let bdd = replay_trace_with(&net, &cp, &ps, &trace, 8, BackendKind::Bdd);
        for kind in [BackendKind::DeltaNet, BackendKind::Intervals] {
            let other = replay_trace_with(&net, &cp, &ps, &trace, 8, kind);
            assert_eq!(
                bdd.report, other.report,
                "{kind} backend diverged from bdd on the replayed report"
            );
        }
    }
}

#[cfg(test)]
mod tulkun_bench_testutil {
    use tulkun_core::planner::{CountingPlan, Planner};
    use tulkun_core::spec::PacketSpace;
    use tulkun_datasets::{by_name, Scale};
    use tulkun_netmodel::network::Network;

    /// One WAN destination's counting session on tiny INet2.
    pub fn inet2_session() -> (Network, CountingPlan, PacketSpace) {
        let ds = by_name("INet2", Scale::Tiny).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = crate::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (ds.network.clone(), cp, inv.packet_space)
    }
}
