//! Table printing and JSON figure output.

use std::path::PathBuf;

/// A printable figure/table with a JSON sidecar.
#[derive(Debug, Clone)]
pub struct FigureTable {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Machine-readable annotations riding along with the data — e.g.
    /// why a gate was skipped (`"perf-gate: SKIP(reason=1cpu)"`).
    pub notes: Vec<String>,
}

impl FigureTable {
    /// New empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> FigureTable {
        FigureTable {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The table as a compact JSON string.
    pub fn to_json_string(&self) -> String {
        tulkun_json::to_string(self)
    }

    /// Adds a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Adds a machine-readable note to the JSON sidecar.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        println!();
    }

    /// Writes the JSON sidecar to `target/figures/<id>.json`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir =
            PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
                .join("figures");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, tulkun_json::to_string_pretty(self))?;
        Ok(path)
    }

    /// Prints and saves.
    pub fn finish(&self) {
        self.print();
        match self.save() {
            Ok(p) => println!("[saved {}]", p.display()),
            Err(e) => eprintln!("[could not save figure json: {e}]"),
        }
    }
}

tulkun_json::impl_json_object!(FigureTable {
    id,
    title,
    headers,
    rows,
    notes
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_serializes() {
        let mut t = FigureTable::new("test", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let json = t.to_json_string();
        assert!(json.contains("demo"));
        let back: FigureTable = tulkun_json::from_str(&json).unwrap();
        assert_eq!(back.rows, t.rows);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = FigureTable::new("t", "t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
