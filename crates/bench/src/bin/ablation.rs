//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Minimal counting information** (Proposition 1): wire bytes and
//!    messages with reduction on vs off.
//! 2. **Suffix merging** (state minimization): DPVNet nodes vs the raw
//!    path trie.
//! 3. **LEC sharing across invariants** (§8): per-device init cost with
//!    and without the shared table.
//! 4. **Proposition-2 scene reuse**: fault-tolerant DPVNet computation
//!    with and without the reuse short-cut.
//! 5. **Parallel init**: engine burst-init wall clock with sequential
//!    vs concurrent per-device verifier construction (the runtime
//!    layer's `parallel_init` option), with a report-equality check.
//! 6. **Verification under loss**: DVM over a lossy management network
//!    (the sim crate's `FaultyTransport`) — retransmit/ack overhead per
//!    loss rate, with a report-equality check against the perfect
//!    channel.

use std::time::Instant;
use tulkun_bench::{fmt_ns, Cli, FigureTable};
use tulkun_core::churn::{ChurnSchedule, ChurnState, TopologyEvent};
use tulkun_core::count::ReduceMode;
use tulkun_core::dpvnet::{self, DpvNet};
use tulkun_core::fault::{build_ft_dpvnet, expand_fault_spec, FaultProfile};
use tulkun_core::planner::Planner;
use tulkun_core::spec::{FaultSpec, PathExpr};
use tulkun_core::verify::Session;
use tulkun_datasets::by_name;
use tulkun_netmodel::network::Network;
use tulkun_sim::event::LecCache;
use tulkun_sim::{
    network_ip_only, BackendKind, DvmSim, FaultyDvmSim, SimConfig, Telemetry, TelemetryConfig,
};

fn main() {
    let cli = Cli::parse();
    ablate_reduction(&cli);
    ablate_suffix_merging(&cli);
    ablate_lec_sharing(&cli);
    ablate_scene_reuse(&cli);
    ablate_parallel_init(&cli);
    ablate_fault_overhead(&cli);
    ablate_burst_updates(&cli);
    ablate_churn(&cli);
    bench_backends(&cli);

    // The canonical figure list (tulkun_bench::ABLATION_FIGURES) and
    // this binary's emissions must agree: a figure added above without
    // being listed — or listed without being emitted — fails right
    // here, before CI's check_figures --ablation-set ever runs.
    let dir = std::path::PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
    )
    .join("figures");
    for id in tulkun_bench::ABLATION_FIGURES {
        let path = dir.join(format!("{id}.json"));
        assert!(
            path.exists(),
            "ABLATION_FIGURES lists {id:?} but this run did not emit {}",
            path.display()
        );
    }
}

/// The predicate backends a network's workload admits: all of
/// [`BackendKind::CONCRETE`] for destination-prefix-only FIBs, just the
/// BDD backend otherwise (the interval encodings are DST_ONLY).
fn admitted_backends(net: &Network) -> Vec<BackendKind> {
    if network_ip_only(net) {
        BackendKind::CONCRETE.to_vec()
    } else {
        vec![BackendKind::Bdd]
    }
}

/// Predicate-backend race: the same burst-replay and churn workloads on
/// every admitted LEC encoding, with byte-equality of the final Report
/// against the BDD run. This is the `BENCH_backends.json` snapshot the
/// `backend-matrix` CI stage regenerates.
fn bench_backends(cli: &Cli) {
    let mut t = FigureTable::new(
        "bench_backends",
        "Predicate backends: burst replay and churn per LEC encoding (seed 7)",
        &[
            "dataset",
            "workload",
            "backend",
            "verify time",
            "messages",
            "bytes",
            "p50",
            "p90",
            "p99",
            "speedup vs bdd",
            "same report",
        ],
    );
    for name in ["INet2", "B4-13", "AT1-2"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();
        let trace = tulkun_bench::churn_trace(&ds.network, cli.updates.min(96), 7);
        let backends = admitted_backends(&ds.network);

        // Burst replay at two coalescing regimes.
        for burst in [8usize, 32] {
            let mut bdd_ref: Option<tulkun_bench::ReplayOutcome> = None;
            for &backend in &backends {
                let r = tulkun_bench::replay_trace_with(
                    &ds.network,
                    cp,
                    &inv.packet_space,
                    &trace,
                    burst,
                    backend,
                );
                let (speedup, same) = match &bdd_ref {
                    None => ("1.00x".into(), true),
                    Some(b) => (
                        format!(
                            "{:.2}x",
                            b.completion_ns as f64 / r.completion_ns.max(1) as f64
                        ),
                        b.report == r.report,
                    ),
                };
                t.row(vec![
                    name.into(),
                    format!("burst {burst}"),
                    backend.to_string(),
                    fmt_ns(r.completion_ns),
                    r.messages.to_string(),
                    r.bytes.to_string(),
                    fmt_ns(r.p50_ns),
                    fmt_ns(r.p90_ns),
                    fmt_ns(r.p99_ns),
                    speedup,
                    same.to_string(),
                ]);
                if bdd_ref.is_none() {
                    bdd_ref = Some(r);
                }
            }
        }

        // Live topology churn (4 seeded events after the initial burst).
        let schedule = ChurnSchedule::seeded(topo, &inv, 7, 4);
        let mut bdd_churn: Option<(u64, Vec<u8>)> = None;
        for &backend in &backends {
            let telemetry = Telemetry::new(TelemetryConfig::enabled());
            let mut sim = DvmSim::new(
                &ds.network,
                cp,
                &inv.packet_space,
                SimConfig {
                    backend,
                    telemetry: telemetry.clone(),
                    ..SimConfig::default()
                },
            );
            sim.burst();
            let (mut completion, mut messages, mut bytes) = (0u64, 0usize, 0u64);
            for ev in &schedule.0 {
                let Ok(r) = sim.apply_topology_event(ev, topo, &inv) else {
                    continue;
                };
                completion += r.completion_ns;
                messages += r.messages;
                bytes += r.bytes;
            }
            let report = sim.report().canonical_bytes();
            let m = telemetry.metrics();
            let pct = |p| {
                m.percentile(tulkun_telemetry::HANDLE_NS.name, p)
                    .unwrap_or(0)
            };
            let (speedup, same) = match &bdd_churn {
                None => ("1.00x".into(), true),
                Some((b_ns, b_report)) => (
                    format!("{:.2}x", *b_ns as f64 / completion.max(1) as f64),
                    *b_report == report,
                ),
            };
            t.row(vec![
                name.into(),
                format!("churn x{}", schedule.0.len()),
                backend.to_string(),
                fmt_ns(completion),
                messages.to_string(),
                bytes.to_string(),
                fmt_ns(pct(0.50)),
                fmt_ns(pct(0.90)),
                fmt_ns(pct(0.99)),
                speedup,
                same.to_string(),
            ]);
            if bdd_churn.is_none() {
                bdd_churn = Some((completion, report));
            }
        }
    }
    t.finish();
}

/// Live topology churn: incremental re-plan (epoch fence + reused
/// DPVNet nodes) vs tearing the session down and re-initializing from a
/// fresh plan of the post-churn topology — convergence wall clock and
/// wire cost per event, with a report-equality check.
fn ablate_churn(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_churn",
        "Topology churn: incremental re-plan vs full re-init (seed 7)",
        &[
            "dataset",
            "event",
            "reused nodes",
            "re-plan",
            "messages",
            "re-init",
            "init messages",
            "speedup",
            "same report",
        ],
    );
    for name in ["INet2", "B4-13"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        let schedule = ChurnSchedule::seeded(topo, &inv, 7, 4);
        let mut sim = DvmSim::new(&ds.network, cp, &inv.packet_space, SimConfig::default());
        sim.burst();
        let mut churn = ChurnState::new();
        for ev in &schedule.0 {
            let t0 = Instant::now();
            let (r, total, reused) = match sim.apply_topology_event_with_delta(ev, topo, &inv) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let replan_wall = t0.elapsed().as_nanos() as u64;
            churn.apply(ev);

            // Full re-init: fresh plan + verifier construction + burst
            // over the same post-churn topology.
            let post = Network {
                topology: churn.apply_to(topo),
                fibs: ds.network.fibs.clone(),
                layout: ds.network.layout,
            };
            let t1 = Instant::now();
            let fresh_plan = Planner::new(&post.topology).plan(&inv).unwrap();
            let fresh_cp = fresh_plan.counting().unwrap();
            let mut fresh = DvmSim::new(&post, fresh_cp, &inv.packet_space, SimConfig::default());
            let fr = fresh.burst();
            let reinit_wall = t1.elapsed().as_nanos() as u64;

            t.row(vec![
                name.into(),
                match ev {
                    TopologyEvent::LinkDown(a, b) => {
                        format!("link-down {}-{}", topo.name(*a), topo.name(*b))
                    }
                    TopologyEvent::LinkUp(a, b) => {
                        format!("link-up {}-{}", topo.name(*a), topo.name(*b))
                    }
                    TopologyEvent::DeviceDown(d) => format!("device-down {}", topo.name(*d)),
                    TopologyEvent::DeviceUp(d) => format!("device-up {}", topo.name(*d)),
                },
                format!("{reused}/{total}"),
                fmt_ns(replan_wall),
                r.messages.to_string(),
                fmt_ns(reinit_wall),
                fr.messages.to_string(),
                format!("{:.2}x", reinit_wall as f64 / replan_wall.max(1) as f64),
                (sim.report().canonical_bytes() == fresh.report().canonical_bytes()).to_string(),
            ]);
        }
    }
    t.finish();
}

/// Burst-update pipeline: replaying a churn trace rule-by-rule vs as
/// coalesced per-device batches — wire cost and verification time per
/// burst size, with a report-equality check against the per-rule run.
fn ablate_burst_updates(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_burst_updates",
        "Burst updates: per-rule vs coalesced batch replay, per backend (seed 7)",
        &[
            "dataset",
            "backend",
            "burst",
            "batches",
            "messages",
            "bytes",
            "verify time",
            "p50",
            "p90",
            "p99",
            "same report",
        ],
    );
    for name in ["INet2", "B4-13"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        let trace = tulkun_bench::churn_trace(&ds.network, cli.updates.min(96), 7);
        let mut reference = None;
        for backend in admitted_backends(&ds.network) {
            for burst in [1usize, 4, 16, 64] {
                let r = tulkun_bench::replay_trace_with(
                    &ds.network,
                    cp,
                    &inv.packet_space,
                    &trace,
                    burst,
                    backend,
                );
                // One reference per dataset: backends and burst sizes
                // must all converge to the same Report bytes.
                let same = match &reference {
                    None => {
                        reference = Some(r.report.clone());
                        true
                    }
                    Some(reference) => *reference == r.report,
                };
                t.row(vec![
                    name.into(),
                    backend.to_string(),
                    burst.to_string(),
                    r.batches.to_string(),
                    r.messages.to_string(),
                    r.bytes.to_string(),
                    fmt_ns(r.completion_ns),
                    fmt_ns(r.p50_ns),
                    fmt_ns(r.p90_ns),
                    fmt_ns(r.p99_ns),
                    same.to_string(),
                ]);
            }
        }
    }
    t.finish();
}

/// Runtime-layer `parallel_init`: wall-clock burst init (verifier
/// construction + LEC build) sequential vs concurrent, same verdict.
fn ablate_parallel_init(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_parallel_init",
        "parallel_init: burst-init wall clock, sequential vs concurrent",
        &[
            "dataset",
            "sequential",
            "parallel",
            "speedup",
            "workers",
            "host cpus",
            "same report",
        ],
    );
    // Speedup is bounded by the host: report the CPU count so a 1.0x
    // result on a 1-CPU CI box reads as expected, not as a regression.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for name in ["INet2", "BTNA"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        // Per-worker construction timings come from the telemetry
        // `init.build` spans (worker index in `aux`), so the figure can
        // report how many workers the pool actually used on this host.
        let run = |parallel_init: bool| {
            let telemetry = Telemetry::new(TelemetryConfig::enabled());
            let t0 = Instant::now();
            let mut sim = DvmSim::new(
                &ds.network,
                cp,
                &inv.packet_space,
                SimConfig {
                    parallel_init,
                    telemetry: telemetry.clone(),
                    ..Default::default()
                },
            );
            let init_wall = t0.elapsed().as_nanos() as u64;
            sim.burst();
            let workers = telemetry
                .spans()
                .iter()
                .filter(|s| s.name == "init.build")
                .map(|s| s.aux)
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            (init_wall, sim.report().canonical_bytes(), workers)
        };
        let (seq, seq_report, _) = run(false);
        let (par, par_report, workers) = run(true);
        t.row(vec![
            name.into(),
            fmt_ns(seq),
            fmt_ns(par),
            format!("{:.2}x", seq as f64 / par.max(1) as f64),
            workers.to_string(),
            host_cpus.to_string(),
            (seq_report == par_report).to_string(),
        ]);
    }
    t.finish();
}

/// Verification under loss: at-least-once DVM delivery over the
/// fault-injecting transport, overhead per loss rate (fixed seed 23).
fn ablate_fault_overhead(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_fault_overhead",
        "DVM under message loss: retransmit/ack overhead, burst (seed 23)",
        &[
            "dataset",
            "loss",
            "messages",
            "drops",
            "retransmits",
            "retx bytes",
            "acks",
            "ack bytes",
            "same report",
        ],
    );
    for name in ["INet2", "B4-13"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();

        let mut clean = DvmSim::new(&ds.network, cp, &inv.packet_space, SimConfig::default());
        clean.burst();
        let reference = clean.report().canonical_bytes();

        for loss in [0.0, 0.01, 0.10] {
            let mut sim = FaultyDvmSim::new(
                &ds.network,
                cp,
                &inv.packet_space,
                SimConfig::default(),
                FaultProfile::loss(23, loss),
            );
            let r = sim.burst();
            let f = sim.stats().fault;
            t.row(vec![
                name.into(),
                format!("{:.0}%", loss * 100.0),
                r.messages.to_string(),
                f.drops.to_string(),
                f.retransmits.to_string(),
                f.retransmit_bytes.to_string(),
                f.acks.to_string(),
                f.ack_bytes.to_string(),
                (sim.report().canonical_bytes() == reference).to_string(),
            ]);
        }
    }
    t.finish();
}

/// Proposition 1: minimal counting information on the wire.
fn ablate_reduction(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_reduction",
        "Proposition 1 (minimal counting information): wire cost, burst",
        &["dataset", "mode", "messages", "bytes"],
    );
    for name in ["INet2", "B4-13", "BTNA"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
        // The all-pair invariant tracks escapes → reduction off by
        // design; ablate on the pure reachability variant instead.
        let inv = tulkun_core::spec::Invariant {
            behavior: tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                inv.behavior.path_exprs()[0].clone(),
            ),
            ..inv
        };
        let plan = Planner::new(topo).plan(&inv).unwrap();
        let base = plan.counting().unwrap().clone();
        for (label, reduce) in [
            ("min (Prop. 1)", base.reduce),
            ("full sets", ReduceMode::None),
        ] {
            let mut cp = base.clone();
            cp.reduce = reduce;
            let mut session = Session::from_counting(&ds.network, cp, &inv.packet_space);
            session.run_to_quiescence();
            let (msgs, bytes) = session
                .plan()
                .dpvnet
                .iter()
                .map(|(_, n)| n.dev)
                .collect::<std::collections::BTreeSet<_>>()
                .iter()
                .filter_map(|d| session.verifier(*d))
                .fold((0u64, 0u64), |(m, b), v| {
                    (m + v.stats.messages_sent, b + v.stats.bytes_sent)
                });
            t.row(vec![
                name.into(),
                label.into(),
                msgs.to_string(),
                bytes.to_string(),
            ]);
        }
    }
    t.finish();
}

/// Suffix merging: minimal DAG vs raw trie size.
fn ablate_suffix_merging(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_suffix_merge",
        "State minimization (suffix merging): DPVNet nodes vs raw trie nodes",
        &["dataset", "paths", "trie nodes", "merged nodes", "ratio"],
    );
    for name in ["INet2", "B4-13", "BTNA", "NTT"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let ingress: Vec<_> = topo.devices().filter(|d| *d != dst).collect();
        let pe = PathExpr::parse(&format!(". * {}", topo.name(dst)))
            .unwrap()
            .loop_free()
            .shortest_plus(2);
        let paths =
            dpvnet::enumerate_valid_paths(topo, &ingress, std::slice::from_ref(&pe), 2_000_000)
                .unwrap();
        // Raw trie size = number of distinct prefixes (incl. each path's
        // nodes).
        let mut prefixes = std::collections::BTreeSet::new();
        for p in &paths {
            for l in 1..=p.devices.len() {
                prefixes.insert(p.devices[..l].to_vec());
            }
        }
        let merged = dpvnet::from_paths(&paths, 1, topo);
        t.row(vec![
            name.into(),
            paths.len().to_string(),
            prefixes.len().to_string(),
            merged.num_nodes().to_string(),
            format!(
                "{:.1}x",
                prefixes.len() as f64 / merged.num_nodes().max(1) as f64
            ),
        ]);
    }
    t.finish();
}

/// LEC sharing (§8): per-device verifier construction with and without
/// the shared table, across 8 destination invariants.
fn ablate_lec_sharing(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_lec_sharing",
        "Shared LEC tables across invariants: total verifier construction time",
        &["dataset", "shared", "not shared", "speedup"],
    );
    for name in ["AT1-2", "BTNA"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let dsts: Vec<_> = tulkun_bench::workload::destinations(&ds.network)
            .into_iter()
            .take(8)
            .collect();
        let plans: Vec<_> = dsts
            .iter()
            .map(|(dst, prefixes)| {
                let inv = tulkun_bench::workload::wan_invariant(&ds.network, *dst, prefixes);
                (Planner::new(topo).plan(&inv).unwrap(), inv)
            })
            .collect();

        let run = |share: bool| {
            let t0 = Instant::now();
            let cache = LecCache::new();
            for (plan, inv) in &plans {
                let cp = plan.counting().unwrap();
                if share {
                    let _ = DvmSim::new_cached(
                        &ds.network,
                        cp,
                        &inv.packet_space,
                        SimConfig::default(),
                        &cache,
                    );
                } else {
                    let _ = DvmSim::new(&ds.network, cp, &inv.packet_space, SimConfig::default());
                }
            }
            t0.elapsed().as_nanos() as u64
        };
        let shared = run(true);
        let unshared = run(false);
        t.row(vec![
            name.into(),
            fmt_ns(shared),
            fmt_ns(unshared),
            format!("{:.2}x", unshared as f64 / shared.max(1) as f64),
        ]);
    }
    t.finish();
}

/// Proposition 2: scene reuse in fault-tolerant DPVNet computation.
fn ablate_scene_reuse(cli: &Cli) {
    let mut t = FigureTable::new(
        "ablation_scene_reuse",
        "Proposition 2 scene reuse in fault-tolerant DPVNet computation (k=2)",
        &[
            "dataset",
            "scenes",
            "reused",
            "with reuse",
            "naive estimate",
        ],
    );
    for name in ["INet2", "B4-13", "STFD"] {
        if !cli.wants(name) {
            continue;
        }
        let ds = by_name(name, cli.scale).unwrap();
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let src = topo.devices().find(|d| *d != dst).unwrap();
        let pe = PathExpr::parse(&format!("{} .* {}", topo.name(src), topo.name(dst)))
            .unwrap()
            .loop_free()
            .shortest_plus(1);
        let scenes = expand_fault_spec(topo, &FaultSpec::AnyK(2), 2_000).unwrap();
        let t0 = Instant::now();
        let ft =
            build_ft_dpvnet(topo, &[src], std::slice::from_ref(&pe), &scenes, 500_000).unwrap();
        let with_reuse = t0.elapsed().as_nanos() as u64;
        // Naive estimate: measure one full enumeration and charge it for
        // every reused scene on top of the measured run.
        let t1 = Instant::now();
        let _ = DpvNet::build(topo, &[src], std::slice::from_ref(&pe)).unwrap();
        let one = t1.elapsed().as_nanos() as u64;
        let naive = with_reuse + one * ft.reused_scenes as u64;
        t.row(vec![
            name.into(),
            scenes.len().to_string(),
            ft.reused_scenes.to_string(),
            fmt_ns(with_reuse),
            fmt_ns(naive),
        ]);
    }
    t.finish();
}
