//! Figure 13: fault-tolerant DPVNet computation latency for k = 0..3
//! link failures, per topology (the planner-side cost of §6).
//!
//! For each WAN/LAN/DC topology we compute the fault-tolerant DPVNet of
//! one representative `(<= shortest+1)` reachability invariant under all
//! scenes of up to k failures (sampling scenes above a cap so every row
//! completes; the sampled fraction is reported).

use std::time::Instant;
use tulkun_bench::{fmt_ns, Cli, FigureTable};
use tulkun_core::fault::{build_ft_dpvnet, expand_fault_spec, sample_scenes, FaultScene};
use tulkun_core::spec::{FaultSpec, PathExpr};
use tulkun_datasets::all_datasets;

/// Scenes above this count are sampled.
const SCENE_CAP: usize = 400;

fn main() {
    let cli = Cli::parse();
    let mut table = FigureTable::new(
        "fig13",
        "Fault-tolerant DPVNet computation latency (k = failed links)",
        &[
            "dataset",
            "k=0",
            "k=1",
            "k=2",
            "k=3",
            "scenes(k=3)",
            "reused",
            "union nodes",
        ],
    );
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) {
            continue;
        }
        // Skip AT1-2/AT2-2: same topology as AT1-1/AT2-1 (the paper
        // deduplicates them in this figure too).
        if ds.spec.name == "AT1-2" || ds.spec.name == "AT2-2" {
            continue;
        }
        eprintln!("[fig13] {}", ds.spec.name);
        let topo = &ds.network.topology;
        // Representative invariant: reachability from one device to one
        // announced destination with a symbolic filter.
        let (dst, _) = topo.external_map().next().expect("announced prefix");
        let src = topo.devices().find(|d| *d != dst).unwrap();
        let pe = PathExpr::parse(&format!("{} .* {}", topo.name(src), topo.name(dst)))
            .unwrap()
            .loop_free()
            .shortest_plus(1);

        let mut cells = Vec::new();
        let mut scenes3 = 0usize;
        let mut reused = 0usize;
        let mut union_nodes = 0usize;
        for k in 0..=3u32 {
            let scenes: Vec<FaultScene> =
                match expand_fault_spec(topo, &FaultSpec::AnyK(k), SCENE_CAP) {
                    Ok(s) => s,
                    Err(_) => sample_scenes(topo, k, SCENE_CAP, 0xF1613 + k as u64),
                };
            let t0 = Instant::now();
            match build_ft_dpvnet(topo, &[src], std::slice::from_ref(&pe), &scenes, 500_000) {
                Ok(ft) => {
                    cells.push(fmt_ns(t0.elapsed().as_nanos() as u64));
                    if k == 3 {
                        scenes3 = scenes.len();
                        reused = ft.reused_scenes;
                        union_nodes = ft.dpvnet.num_nodes();
                    }
                }
                Err(e) => {
                    cells.push(format!("err({e})"));
                }
            }
        }
        let mut row = vec![ds.spec.name.clone()];
        row.extend(cells);
        row.push(scenes3.to_string());
        row.push(reused.to_string());
        row.push(union_nodes.to_string());
        table.row(row);
    }
    table.finish();
    println!("scenes capped at {SCENE_CAP} (sampled beyond; the paper enumerates exhaustively)");
}
