//! The daemon replay workload behind the `perf-gate` CI stage: drives
//! the always-on [`Service`] through a multi-source session of FIB
//! batches, live churn, runtime intent churn and snapshot queries —
//! per admission policy and management-plane loss rate — and emits
//! `bench_daemon.json`.
//!
//! Column contract (the perf-gate relies on it):
//!
//! * Label and counter columns (`dataset`..`rej intents`) are
//!   *deterministic* for a given workload — admission decisions depend
//!   only on queue lengths, churn state and seeded loss, never on
//!   timing — and are diffed exactly against the committed
//!   `BENCH_daemon.json`.
//! * Timing columns (`p50 ns` etc.) are raw nanosecond integers,
//!   bucket-quantized to the telemetry histogram's 1-2-5 grid (stable
//!   across runs unless latency actually moves a bucket); `p99 ns` is
//!   the gated column, with a tolerance band.
//!
//! `same report` is the workload's correctness bit: the service's final
//! drained Report must be byte-equal to applying the same admitted
//! requests — including intent installs/removals, replayed under their
//! original ids — directly to a fresh *clean* simulator (the lossy row
//! must converge to the clean fixpoint).

use tulkun_bench::{Cli, FigureTable};
use tulkun_core::churn::{ChurnSchedule, TopologyEvent};
use tulkun_core::count::CountExpr;
use tulkun_core::fault::FaultProfile;
use tulkun_core::intent::IntentId;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PathExpr};
use tulkun_datasets::{by_name, rule_updates};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_sim::{AdmissionPolicy, DvmSim, Service, ServiceConfig, ServiceRequest, SimConfig};
use tulkun_telemetry::{CONVERGENCE_LAG_NS, HANDLE_NS};

/// One admitted request, in apply order, for the reference replay.
enum Applied {
    Batch(Vec<RuleUpdate>),
    Churn(TopologyEvent),
    /// An install the service accepted, under the id it allocated.
    IntentAdd(IntentId, Invariant),
    IntentRemove(IntentId),
}

/// The narrow runtime intent the workload churns: subset reachability
/// toward the same external destination from one ingress, same
/// outcome-vector shape as the base invariant.
fn narrow_intent(net: &Network) -> Invariant {
    let topo = &net.topology;
    let (dst, _) = topo.external_map().next().expect("external prefixes");
    let dst_name = topo.name(dst);
    let prefix = topo.external_prefixes(dst)[0];
    let ingress = topo
        .devices()
        .find(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .expect("an ingress");
    let path = PathExpr::parse(&format!(". * {dst_name}"))
        .unwrap()
        .loop_free()
        .shortest_plus(2);
    Invariant::builder()
        .name(format!("narrow reach {ingress} -> {dst_name}"))
        .packet_space(tulkun_core::spec::PacketSpace::DstPrefix(prefix))
        .ingress([ingress])
        .behavior(Behavior::exist(CountExpr::ge(1), path.clone()).and(Behavior::covered(path)))
        .build()
        .expect("narrow intent")
}

fn main() {
    let cli = Cli::parse();
    let names = cli
        .datasets
        .clone()
        .unwrap_or_else(|| vec!["INet2".to_string()]);

    let mut t = FigureTable::new(
        "bench_daemon",
        "always-on daemon: admission, intent churn, SLO windows, report equivalence",
        &[
            "dataset",
            "policy",
            "loss",
            "batches",
            "churn",
            "intents",
            "queries",
            "admitted",
            "shed",
            "processed",
            "rej intents",
            "parked",
            "degraded",
            "p50 ns",
            "p90 ns",
            "p99 ns",
            "lag p99 ns",
            "slo ok",
            "same report",
        ],
    );

    for name in &names {
        let Some(ds) = by_name(name, cli.scale) else {
            eprintln!("bench_daemon: unknown dataset {name:?}, skipping");
            continue;
        };
        let net = &ds.network;
        let topo = &net.topology;
        let (dst, _) = topo.external_map().next().expect("external prefixes");
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(net, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).expect("plannable");
        let cp = plan.counting().expect("counting plan").clone();
        let narrow = narrow_intent(net);

        let trace = rule_updates(net, cli.updates, 7);
        let churn = ChurnSchedule::seeded(topo, &inv, 11, 6).0;

        for (policy, loss) in [
            (AdmissionPolicy::Block, 0.0),
            (AdmissionPolicy::Shed, 0.0),
            (AdmissionPolicy::Shed, 0.10),
        ] {
            let cfg = ServiceConfig {
                policy,
                // Three sub-batches per source turn against a cap of 2:
                // Block drains mid-turn and stays lossless, Shed drops
                // the third — the rows differ only in policy and loss.
                per_source_cap: 2,
                faults: (loss > 0.0).then(|| FaultProfile::loss(31, loss)),
                ..ServiceConfig::default()
            };
            let mut svc = Service::new(net, &cp, &inv, cfg);

            // The session overlaps its regimes: every 3rd source turn
            // a fourth source toggles the narrow intent (install when
            // untracked, remove when live *or* parked), interleaved
            // with the FIB batches — including through the final
            // third, where every 2nd turn the "net" source offers one
            // churn event and drains again (its own round — drain is
            // round-robin across sources, so sharing a round would
            // interleave the churn between batches and break the
            // linear replay below). Installs landing while a fence is
            // active park and re-plan at the next epoch rather than
            // being rejected, so `rej intents` stays 0 here. Every
            // 4th turn queries status + report. Only state the
            // service actually committed (reconciled against the
            // intent store around each drain, counting parked
            // installs as committed — `install_intent_as` re-parks
            // them deterministically in the replay) enters the
            // reference.
            let mut applied: Vec<Applied> = Vec::new();
            let mut batches = 0u64;
            let mut churn_admitted = 0u64;
            let mut intent_ops = 0u64;
            let mut queries = 0u64;
            let mut churn_iter = churn.iter().cycle();
            let groups = trace.chunks(12).count();
            let churn_start = groups * 2 / 3;
            for (g, group) in trace.chunks(12).enumerate() {
                let source = if g % 2 == 0 { "cp" } else { "ops" };
                for chunk in group.chunks(4) {
                    batches += 1;
                    if svc
                        .offer(source, ServiceRequest::Batch(chunk.to_vec()))
                        .is_ok()
                    {
                        applied.push(Applied::Batch(chunk.to_vec()));
                    }
                }
                svc.drain();
                if g >= churn_start && g % 2 == 1 {
                    if let Some(ev) = churn_iter.next() {
                        if svc.offer("net", ServiceRequest::Churn(*ev)).is_ok() {
                            // Planner-rejected events are still counted
                            // by the service and mirrored in the replay
                            // below.
                            applied.push(Applied::Churn(*ev));
                            churn_admitted += 1;
                        }
                    }
                    svc.drain();
                }
                // Tracked = live + parked: a parked install is
                // committed state (it lands at the next fence), so
                // the toggle must see it or it would double-install.
                let tracked_non_base = |svc: &Service| -> Vec<u64> {
                    let mut ids: Vec<u64> = svc
                        .intents()
                        .live()
                        .map(|i| i.id.0)
                        .chain(svc.intents().parked().map(|p| p.id.0))
                        .filter(|id| *id != 0)
                        .collect();
                    ids.sort_unstable();
                    ids
                };
                if g % 3 == 2 {
                    let before = tracked_non_base(&svc);
                    let req = match before.last() {
                        Some(id) => ServiceRequest::IntentRemove(IntentId(*id)),
                        None => ServiceRequest::IntentAdd {
                            name: "narrow".into(),
                            invariant: narrow.clone(),
                        },
                    };
                    let next_id = svc.intents().next_intent_id();
                    if svc.offer("intent", req).is_ok() {
                        svc.drain();
                        let now = tracked_non_base(&svc);
                        if now.contains(&next_id) && !before.contains(&next_id) {
                            applied.push(Applied::IntentAdd(IntentId(next_id), narrow.clone()));
                            intent_ops += 1;
                        } else if let Some(id) = before.iter().find(|id| !now.contains(id)) {
                            applied.push(Applied::IntentRemove(IntentId(*id)));
                            intent_ops += 1;
                        }
                    }
                }
                if g % 4 == 3 {
                    let _ = svc.status();
                    let _ = svc.report();
                    queries += 2;
                }
            }
            svc.drain();
            let final_report = svc.report().canonical_bytes();
            let status = svc.status();
            let verdict = svc.slo();

            // Reference: the same admitted requests, applied directly.
            let sim_cfg = SimConfig {
                all_devices: true,
                ..SimConfig::default()
            };
            let mut reference = DvmSim::new(net, &cp, &inv.packet_space, sim_cfg);
            reference.burst();
            for a in &applied {
                match a {
                    Applied::Batch(chunk) => {
                        reference.apply_batch(chunk);
                    }
                    Applied::Churn(ev) => {
                        // The service counted planner-rejected events
                        // without applying them; mirror that.
                        let _ = reference.apply_topology_event(ev, topo, &inv);
                    }
                    Applied::IntentAdd(id, inv) => {
                        reference
                            .install_intent_as(*id, "narrow", inv)
                            .expect("replay install");
                    }
                    Applied::IntentRemove(id) => {
                        reference.remove_intent(*id).expect("replay remove");
                    }
                }
            }
            let same = reference.report().canonical_bytes() == final_report;

            let m = svc.metrics();
            let q = |p: f64| m.percentile(HANDLE_NS.name, p).unwrap_or(0);
            let lag = m.percentile(CONVERGENCE_LAG_NS.name, 0.99).unwrap_or(0);
            t.row(vec![
                name.clone(),
                match policy {
                    AdmissionPolicy::Block => "block".into(),
                    AdmissionPolicy::Shed => "shed".into(),
                },
                format!("{}%", (loss * 100.0) as u32),
                batches.to_string(),
                churn_admitted.to_string(),
                intent_ops.to_string(),
                queries.to_string(),
                status.admitted.to_string(),
                status.shed.to_string(),
                status.processed.to_string(),
                status.rejected_intents.to_string(),
                status.parked.to_string(),
                status.degraded.to_string(),
                q(0.50).to_string(),
                q(0.90).to_string(),
                q(0.99).to_string(),
                lag.to_string(),
                verdict.ok().to_string(),
                same.to_string(),
            ]);
        }
    }

    // On a single-CPU host the daemon thread and the sim's bookkeeping
    // share a core, so the latency columns measure contention rather
    // than the data path. Record the skip reason machine-readably so
    // downstream tooling (ci.sh's perf-gate, dashboards) can tell a
    // passed gate from a structurally meaningless one.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus <= 1 && std::env::var("TULKUN_PERF_GATE_FORCE").as_deref() != Ok("1") {
        t.note("perf-gate: SKIP(reason=1cpu)");
    }

    t.finish();
}
