//! The daemon replay workload behind the `perf-gate` CI stage: drives
//! the always-on [`Service`] through a multi-source session of FIB
//! batches, live churn and snapshot queries — once per admission
//! policy — and emits `bench_daemon.json`.
//!
//! Column contract (the perf-gate relies on it):
//!
//! * Label and counter columns (`dataset`..`same report`) are
//!   *deterministic* for a given workload — admission decisions depend
//!   only on queue lengths, never on timing — and are diffed exactly
//!   against the committed `BENCH_daemon.json`.
//! * Timing columns (`p50 ns` etc.) are raw nanosecond integers,
//!   bucket-quantized to the telemetry histogram's 1-2-5 grid (stable
//!   across runs unless latency actually moves a bucket); `p99 ns` is
//!   the gated column, with a tolerance band.
//!
//! `same report` is the workload's correctness bit: the service's final
//! drained Report must be byte-equal to applying the same admitted
//! requests directly to a fresh simulator.

use tulkun_bench::{Cli, FigureTable};
use tulkun_core::churn::{ChurnSchedule, TopologyEvent};
use tulkun_core::planner::Planner;
use tulkun_datasets::{by_name, rule_updates};
use tulkun_netmodel::network::RuleUpdate;
use tulkun_sim::{AdmissionPolicy, DvmSim, Service, ServiceConfig, ServiceRequest, SimConfig};
use tulkun_telemetry::{CONVERGENCE_LAG_NS, HANDLE_NS};

/// One admitted request, in apply order, for the reference replay.
enum Applied {
    Batch(Vec<RuleUpdate>),
    Churn(TopologyEvent),
}

fn main() {
    let cli = Cli::parse();
    let names = cli
        .datasets
        .clone()
        .unwrap_or_else(|| vec!["INet2".to_string()]);

    let mut t = FigureTable::new(
        "bench_daemon",
        "always-on daemon: admission, SLO windows, report equivalence",
        &[
            "dataset",
            "policy",
            "batches",
            "churn",
            "queries",
            "admitted",
            "shed",
            "processed",
            "p50 ns",
            "p90 ns",
            "p99 ns",
            "lag p99 ns",
            "slo ok",
            "same report",
        ],
    );

    for name in &names {
        let Some(ds) = by_name(name, cli.scale) else {
            eprintln!("bench_daemon: unknown dataset {name:?}, skipping");
            continue;
        };
        let net = &ds.network;
        let topo = &net.topology;
        let (dst, _) = topo.external_map().next().expect("external prefixes");
        let prefixes = topo.external_prefixes(dst).to_vec();
        let inv = tulkun_bench::workload::wan_invariant(net, dst, &prefixes);
        let plan = Planner::new(topo).plan(&inv).expect("plannable");
        let cp = plan.counting().expect("counting plan").clone();

        let trace = rule_updates(net, cli.updates, 7);
        let churn = ChurnSchedule::seeded(topo, &inv, 11, 6).0;

        for policy in [AdmissionPolicy::Block, AdmissionPolicy::Shed] {
            let cfg = ServiceConfig {
                policy,
                // Three sub-batches per source turn against a cap of 2:
                // Block drains mid-turn and stays lossless, Shed drops
                // the third — the two rows differ only in policy.
                per_source_cap: 2,
                ..ServiceConfig::default()
            };
            let mut svc = Service::new(net, &cp, &inv, cfg);

            // The session: each source turn offers 3 batches of 4
            // updates (sources alternate) and drains; every 2nd turn a
            // third source then offers one churn event and drains
            // again (its own round — drain is round-robin across
            // sources, so sharing a round would interleave the churn
            // between batches and break the linear replay below);
            // every 4th turn queries status + report.
            let mut applied: Vec<Applied> = Vec::new();
            let mut batches = 0u64;
            let mut churn_admitted = 0u64;
            let mut queries = 0u64;
            let mut churn_iter = churn.iter().cycle();
            for (g, group) in trace.chunks(12).enumerate() {
                let source = if g % 2 == 0 { "cp" } else { "ops" };
                for chunk in group.chunks(4) {
                    batches += 1;
                    if svc
                        .offer(source, ServiceRequest::Batch(chunk.to_vec()))
                        .is_ok()
                    {
                        applied.push(Applied::Batch(chunk.to_vec()));
                    }
                }
                svc.drain();
                if g % 2 == 1 {
                    if let Some(ev) = churn_iter.next() {
                        if svc.offer("net", ServiceRequest::Churn(*ev)).is_ok() {
                            // Planner-rejected events are still counted
                            // by the service and mirrored in the replay
                            // below.
                            applied.push(Applied::Churn(*ev));
                            churn_admitted += 1;
                        }
                    }
                    svc.drain();
                }
                if g % 4 == 3 {
                    let _ = svc.status();
                    let _ = svc.report();
                    queries += 2;
                }
            }
            svc.drain();
            let final_report = svc.report().canonical_bytes();
            let status = svc.status();
            let verdict = svc.slo();

            // Reference: the same admitted requests, applied directly.
            let mut reference = DvmSim::new(net, &cp, &inv.packet_space, SimConfig::default());
            reference.burst();
            for a in &applied {
                match a {
                    Applied::Batch(chunk) => {
                        reference.apply_batch(chunk);
                    }
                    Applied::Churn(ev) => {
                        // The service counted planner-rejected events
                        // without applying them; mirror that.
                        let _ = reference.apply_topology_event(ev, topo, &inv);
                    }
                }
            }
            let same = reference.report().canonical_bytes() == final_report;

            let m = svc.metrics();
            let q = |p: f64| m.percentile(HANDLE_NS.name, p).unwrap_or(0);
            let lag = m.percentile(CONVERGENCE_LAG_NS.name, 0.99).unwrap_or(0);
            t.row(vec![
                name.clone(),
                match policy {
                    AdmissionPolicy::Block => "block".into(),
                    AdmissionPolicy::Shed => "shed".into(),
                },
                batches.to_string(),
                churn_admitted.to_string(),
                queries.to_string(),
                status.admitted.to_string(),
                status.shed.to_string(),
                status.processed.to_string(),
                q(0.50).to_string(),
                q(0.90).to_string(),
                q(0.99).to_string(),
                lag.to_string(),
                verdict.ok().to_string(),
                same.to_string(),
            ]);
        }
    }

    t.finish();
}
