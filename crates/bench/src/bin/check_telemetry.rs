//! CI validator for the telemetry exporters.
//!
//! The `obs-smoke` CI stage runs `tulkun trace` / `tulkun metrics` on a
//! tiny dataset and then runs this tool to assert the artifacts are
//! structurally sound — no timing is checked anywhere (the CI box has
//! 1 CPU), only shape:
//!
//! * `--trace <file>`: the file is Chrome `trace_event` JSON — a
//!   `traceEvents` array whose entries carry `ph`/`pid`/`tid`/`name`,
//!   spans (`ph: "X"`) carry `ts`/`dur`, and at least one causal trace
//!   id (`args.trace >= 1`) links spans on two or more distinct `tid`s
//!   (devices) — the cross-device UPDATE-wave reconstruction the
//!   telemetry subsystem exists for.
//! * `--metrics <file>`: the file is Prometheus text exposition —
//!   `# TYPE` lines, `name{labels} value` samples, and every histogram
//!   has monotonically non-decreasing cumulative buckets ending in
//!   `le="+Inf"` plus `_sum` and `_count` lines, with `_count` equal
//!   to the `+Inf` bucket.
//! * `--journal <file>`: the file is a `tulkun-journal-v1` flight-
//!   recorder dump — `schema`/`dropped`/`events`, every event carries
//!   `seq`/`kind`/`device`/`epoch`/`trace`/`detail`, `kind` is one of
//!   the known snake_case names, and `seq` is strictly increasing
//!   (the journal's total deterministic order).
//! * `--explain <file>`: the file is a `tulkun-explain-v1` causal
//!   explanation — `subject`/`verdict`/`considered` plus a ranked
//!   `causes` array whose entries each embed a full journal event.
//! * `--expect-empty`: inverts the non-emptiness requirements — the
//!   trace must have zero events, the metrics text must be empty, and
//!   a journal file must be zero bytes, which is what a run with
//!   telemetry disabled must produce.
//!
//! Usage: `check_telemetry [--expect-empty] [--trace f.json]
//! [--metrics f.prom] [--journal f.json] [--explain f.json]`

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::process::ExitCode;
use tulkun_json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let expect_empty = args.iter().any(|a| a == "--expect-empty");
    let trace = get("--trace");
    let metrics = get("--metrics");
    let journal = get("--journal");
    let explain = get("--explain");
    if trace.is_none() && metrics.is_none() && journal.is_none() && explain.is_none() {
        eprintln!(
            "usage: check_telemetry [--expect-empty] [--trace f.json] [--metrics f.prom] \
             [--journal f.json] [--explain f.json]"
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    type Checker = fn(&str, bool) -> Result<(), String>;
    let checks: [(Option<String>, Checker); 4] = [
        (trace, check_trace),
        (metrics, check_metrics),
        (journal, check_journal),
        (explain, check_explain),
    ];
    for (path, check) in checks {
        let Some(path) = path else { continue };
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if let Err(e) = check(&text, expect_empty) {
                    eprintln!("check_telemetry: {path}: {e}");
                    failed = true;
                } else {
                    println!("check_telemetry: ok {path}");
                }
            }
            Err(e) => {
                eprintln!("check_telemetry: cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn int_of(v: &Json) -> Option<i64> {
    match v {
        Json::Int(i) => Some(*i),
        Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
        _ => None,
    }
}

/// Validates Chrome `trace_event` JSON (structure only).
fn check_trace(text: &str, expect_empty: bool) -> Result<(), String> {
    let doc = tulkun_json::parse(text).map_err(|e| format!("not JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("no traceEvents array")?;
    if expect_empty {
        return if events.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "expected an empty trace (telemetry disabled), found {} event(s)",
                events.len()
            ))
        };
    }
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    // args.trace id -> set of tids (devices) that carry a span with it.
    let mut waves: BTreeMap<i64, BTreeSet<i64>> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(int_of)
                .ok_or(format!("event {i}: missing {key}"))?;
        }
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        match ph {
            "M" => {} // metadata (thread_name) has no timestamp
            "X" | "i" => {
                ev.get("ts")
                    .and_then(|t| match t {
                        Json::Int(_) | Json::Float(_) => Some(()),
                        _ => None,
                    })
                    .ok_or(format!("event {i}: {ph} event missing numeric ts"))?;
                if ph == "X" {
                    spans += 1;
                    ev.get("dur")
                        .and_then(|t| match t {
                            Json::Int(_) | Json::Float(_) => Some(()),
                            _ => None,
                        })
                        .ok_or(format!("event {i}: X event missing numeric dur"))?;
                }
                let trace = ev
                    .get("args")
                    .and_then(|a| a.get("trace"))
                    .and_then(int_of)
                    .ok_or(format!("event {i}: missing args.trace"))?;
                let tid = ev.get("tid").and_then(int_of).unwrap();
                if trace >= 1 {
                    waves.entry(trace).or_default().insert(tid);
                }
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    if spans == 0 {
        return Err("no complete (ph: X) spans".into());
    }
    let Some((trace, tids)) = waves.iter().max_by_key(|(_, tids)| tids.len()) else {
        return Err("no span carries a causal trace id >= 1".into());
    };
    if tids.len() < 2 {
        return Err(format!(
            "no causal trace id links spans on >= 2 devices (best: trace {trace} on {} device(s))",
            tids.len()
        ));
    }
    println!(
        "check_telemetry: {} events, {spans} spans, trace {trace} spans {} devices",
        events.len(),
        tids.len()
    );
    Ok(())
}

/// Per-histogram accumulator while scanning the exposition text.
#[derive(Default)]
struct HistAcc {
    /// Bucket counts in file order.
    buckets: Vec<u64>,
    /// Whether the `le="+Inf"` bucket has been seen (must be last).
    saw_inf: bool,
    sum: Option<f64>,
    count: Option<u64>,
}

/// Validates Prometheus text exposition (structure only).
fn check_metrics(text: &str, expect_empty: bool) -> Result<(), String> {
    if expect_empty {
        return if text.trim().is_empty() {
            Ok(())
        } else {
            Err("expected empty metrics output (telemetry disabled)".into())
        };
    }
    if text.trim().is_empty() {
        return Err("metrics output is empty".into());
    }
    let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            match (name, kind) {
                (Some(_), Some("counter" | "gauge" | "histogram")) => continue,
                _ => return Err(format!("line {}: malformed TYPE line", lineno + 1)),
            }
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {}: no sample value", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value {value:?}", lineno + 1))?;
        samples += 1;
        if let Some((name, labels)) = name_part.split_once('{') {
            let labels = labels.strip_suffix('}').ok_or(format!(
                "line {}: unterminated label set {labels:?}",
                lineno + 1
            ))?;
            if let Some(le) = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
            {
                let base = name.strip_suffix("_bucket").ok_or(format!(
                    "line {}: le-labeled sample is not a _bucket",
                    lineno + 1
                ))?;
                let h = hists.entry(base.to_string()).or_default();
                if h.saw_inf {
                    return Err(format!("line {}: bucket after le=\"+Inf\"", lineno + 1));
                }
                h.buckets.push(value as u64);
                if le == "+Inf" {
                    h.saw_inf = true;
                }
            } else {
                // A labeled gauge/counter series (e.g. per-intent
                // freshness `tulkun_intent_fresh{intent="0"}`): the
                // label must at least be a `key="value"` pair.
                let well_formed = labels
                    .split_once("=\"")
                    .is_some_and(|(k, v)| !k.is_empty() && v.ends_with('"'));
                if !well_formed {
                    return Err(format!("line {}: malformed labels {labels:?}", lineno + 1));
                }
            }
        } else if let Some(base) = name_part.strip_suffix("_sum") {
            hists.entry(base.to_string()).or_default().sum = Some(value);
        } else if let Some(base) = name_part.strip_suffix("_count") {
            hists.entry(base.to_string()).or_default().count = Some(value as u64);
        }
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    for (name, h) in &hists {
        if h.buckets.is_empty() {
            return Err(format!("histogram {name}: no buckets"));
        }
        if !h.saw_inf {
            return Err(format!("histogram {name}: missing le=\"+Inf\" bucket"));
        }
        if h.buckets.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("histogram {name}: buckets not cumulative"));
        }
        if h.sum.is_none() {
            return Err(format!("histogram {name}: missing _sum"));
        }
        let count = h.count.ok_or(format!("histogram {name}: missing _count"))?;
        if count != *h.buckets.last().unwrap() {
            return Err(format!(
                "histogram {name}: _count {count} != +Inf bucket {}",
                h.buckets.last().unwrap()
            ));
        }
    }
    println!(
        "check_telemetry: {samples} samples, {} histogram(s) validated",
        hists.len()
    );
    Ok(())
}

/// The stable snake_case journal event names of `JournalKind::as_str`.
const JOURNAL_KINDS: &[&str] = &[
    "batch_applied",
    "link_event",
    "scene_applied",
    "epoch_fence",
    "topology_churn",
    "churn_rejected",
    "intent_installed",
    "intent_removed",
    "intent_rejected",
    "fault_injected",
    "retransmit",
    "crash_restart",
    "watchdog_stall",
    "admission_shed",
    "admission_blocked",
    "slo_breach",
    "backend_swap",
];

/// Validates one journal event object (shared by the journal and
/// explain checkers); `what` names it in error messages.
fn check_journal_event(ev: &Json, what: &str) -> Result<(), String> {
    let kind = ev
        .get("kind")
        .and_then(Json::as_str)
        .ok_or(format!("{what}: missing kind"))?;
    if !JOURNAL_KINDS.contains(&kind) {
        return Err(format!("{what}: unknown kind {kind:?}"));
    }
    for key in ["seq", "device", "epoch", "trace"] {
        let v = ev
            .get(key)
            .and_then(int_of)
            .ok_or(format!("{what}: missing integer {key}"))?;
        if v < 0 {
            return Err(format!("{what}: negative {key}"));
        }
    }
    ev.get("detail")
        .and_then(Json::as_str)
        .ok_or(format!("{what}: missing detail"))?;
    Ok(())
}

/// Validates a `tulkun-journal-v1` flight-recorder dump. With
/// `--expect-empty` the file must be zero bytes — the telemetry-off
/// path writes no journal at all.
fn check_journal(text: &str, expect_empty: bool) -> Result<(), String> {
    if expect_empty {
        return if text.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "expected a zero-byte journal (telemetry disabled), found {} byte(s)",
                text.len()
            ))
        };
    }
    let doc = tulkun_json::parse(text).map_err(|e| format!("not JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("tulkun-journal-v1") => {}
        other => return Err(format!("bad schema {other:?}")),
    }
    let dropped = doc
        .get("dropped")
        .and_then(int_of)
        .ok_or("missing integer dropped")?;
    if dropped < 0 {
        return Err("negative dropped count".into());
    }
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("no events array")?;
    if events.is_empty() {
        return Err("journal dump has no events".into());
    }
    let mut last_seq = 0i64;
    for (i, ev) in events.iter().enumerate() {
        check_journal_event(ev, &format!("event {i}"))?;
        let seq = ev.get("seq").and_then(int_of).unwrap();
        if seq <= last_seq {
            return Err(format!(
                "event {i}: seq {seq} not strictly increasing (prev {last_seq})"
            ));
        }
        last_seq = seq;
    }
    println!(
        "check_telemetry: journal ok — {} event(s), {dropped} dropped",
        events.len()
    );
    Ok(())
}

/// Validates a `tulkun-explain-v1` causal explanation.
fn check_explain(text: &str, expect_empty: bool) -> Result<(), String> {
    if expect_empty {
        return if text.is_empty() {
            Ok(())
        } else {
            Err("expected no explanation (telemetry disabled)".into())
        };
    }
    let doc = tulkun_json::parse(text).map_err(|e| format!("not JSON: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("tulkun-explain-v1") => {}
        other => return Err(format!("bad schema {other:?}")),
    }
    for key in ["subject", "verdict"] {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or(format!("missing string {key}"))?;
    }
    let considered = doc
        .get("considered")
        .and_then(int_of)
        .ok_or("missing integer considered")?;
    let causes = doc
        .get("causes")
        .and_then(Json::as_array)
        .ok_or("no causes array")?;
    if causes.is_empty() {
        return Err("explanation names no causes".into());
    }
    if (causes.len() as i64) > considered {
        return Err(format!(
            "{} causes but only {considered} considered",
            causes.len()
        ));
    }
    let mut last_rank = i64::MIN;
    for (i, c) in causes.iter().enumerate() {
        let rank = c
            .get("rank")
            .and_then(int_of)
            .ok_or(format!("cause {i}: missing integer rank"))?;
        if rank < last_rank {
            return Err(format!(
                "cause {i}: rank {rank} out of order (causes must be most-severe first)"
            ));
        }
        last_rank = rank;
        c.get("reason")
            .and_then(Json::as_str)
            .ok_or(format!("cause {i}: missing reason"))?;
        let ev = c.get("event").ok_or(format!("cause {i}: missing event"))?;
        check_journal_event(ev, &format!("cause {i} event"))?;
    }
    println!(
        "check_telemetry: explanation ok — {} cause(s) of {considered} considered",
        causes.len()
    );
    Ok(())
}
