//! Table 1: the invariant families expressible in Tulkun's language,
//! each built with its constructor, planned against the Figure 2a
//! network and verified (both textual form and verdict are printed).

use tulkun_bench::FigureTable;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{table1, Invariant, PacketSpace};
use tulkun_core::verify::verify_snapshot;
use tulkun_datasets::fig2a_network;

fn main() {
    let net = fig2a_network();
    let ps = || PacketSpace::dst_prefix("10.0.0.0/23");
    let rows: Vec<(&str, Invariant)> = vec![
        (
            "Reachability",
            table1::reachability(ps(), "S", "D").unwrap(),
        ),
        ("Isolation", table1::isolation(ps(), "S", "D").unwrap()),
        ("Loop-freeness", table1::loop_freeness(ps(), "S").unwrap()),
        (
            "Blackhole-freeness",
            table1::blackhole_freeness(ps(), "S", "D").unwrap(),
        ),
        (
            "Waypoint reachability",
            table1::waypoint(ps(), "S", "W", "D").unwrap(),
        ),
        (
            "Limited path length",
            table1::limited_length_reachability(ps(), "S", "D", 3).unwrap(),
        ),
        (
            "Different-ingress same reachability",
            table1::different_ingress_reachability(ps(), &["S", "B"], "D").unwrap(),
        ),
        (
            "All-shortest-path availability",
            table1::all_shortest_path(ps(), "S", "D").unwrap(),
        ),
        (
            "Non-redundant reachability",
            table1::non_redundant_reachability(ps(), "S", "D").unwrap(),
        ),
        (
            "Multicast",
            table1::multicast(ps(), "S", &["D", "W"]).unwrap(),
        ),
        ("Anycast", table1::anycast(ps(), "S", "D", "W").unwrap()),
        ("1+1 routing", table1::one_plus_one(ps(), "S", "D").unwrap()),
    ];

    let planner = Planner::with_options(
        &net.topology,
        tulkun_core::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    );
    let mut table = FigureTable::new(
        "table1",
        "Tulkun specifications for selected invariants (verified on Fig. 2a)",
        &["invariant", "path exprs", "dpvnet nodes", "verdict"],
    );
    for (name, inv) in rows {
        let plan = planner.plan(&inv).expect(name);
        let nodes = match &plan.kind {
            tulkun_core::planner::PlanKind::Counting(c) => c.dpvnet.num_nodes(),
            tulkun_core::planner::PlanKind::Local(l) => l.dpvnet.num_nodes(),
        };
        let report = verify_snapshot(&net, &plan);
        table.row(vec![
            name.into(),
            inv.behavior.path_exprs().len().to_string(),
            nodes.to_string(),
            if report.holds() {
                "holds".into()
            } else {
                format!("{} violation(s)", report.violations.len())
            },
        ]);
    }
    table.finish();
}
