//! CI validator for the JSON figure sidecars.
//!
//! Two modes:
//!
//! **Scan** (default): the `bench-smoke` CI stage runs a bench binary
//! on a tiny topology and then runs this tool to assert the run
//! actually produced well-formed output: every `*.json` under
//! `target/figures/` must parse back into a [`FigureTable`] with
//! consistent row widths, and every id named on the command line must
//! exist with at least one row. `--ablation-set` expands to every id
//! in [`tulkun_bench::ABLATION_FIGURES`].
//!
//! **Diff** (`--diff OLD NEW`): compares two FigureTable snapshots —
//! the committed `BENCH_*.json` baseline against a fresh run. The
//! schema (id, headers, row count) must match exactly. `--exact COLS`
//! names comma-separated columns whose cells must be stringwise equal
//! row-by-row (labels, counters, correctness bits). `--gate COL` names
//! one numeric column gated by `--tolerance PCT` (default 25): each
//! new cell must be ≤ old × (1 + PCT/100). `--inflate FACTOR`
//! multiplies the new gated value first — the perf-gate's self-test
//! knob, proving the gate trips on a synthetic regression.
//!
//! Usage:
//!   `check_figures [--ablation-set] [required-id ...]`
//!   `check_figures --diff OLD NEW [--exact COLS] [--gate COL]
//!                  [--tolerance PCT] [--inflate FACTOR]`
//!
//! Scan mode checks no timing anywhere — the CI box has 1 CPU, so the
//! smoke stage guards structure, not speed. Diff mode's gate column is
//! opt-in for the same reason.

use std::path::PathBuf;
use std::process::ExitCode;
use tulkun_bench::{FigureTable, ABLATION_FIGURES};

fn figures_dir() -> PathBuf {
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("figures")
}

fn load_table(path: &str) -> Result<FigureTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let table: FigureTable = tulkun_json::from_str(&text)
        .map_err(|e| format!("{path} is not a well-formed FigureTable: {e:?}"))?;
    Ok(table)
}

/// `--diff` mode. Returns the list of failures (empty = pass).
fn diff_tables(
    old: &FigureTable,
    new: &FigureTable,
    exact: &[String],
    gate: Option<&str>,
    tolerance_pct: f64,
    inflate: f64,
) -> Vec<String> {
    let mut fails = Vec::new();
    if old.id != new.id {
        fails.push(format!("id mismatch: {:?} vs {:?}", old.id, new.id));
    }
    if old.headers != new.headers {
        fails.push(format!(
            "header mismatch: {:?} vs {:?}",
            old.headers, new.headers
        ));
        return fails; // Column lookups below would be meaningless.
    }
    if old.rows.len() != new.rows.len() {
        fails.push(format!(
            "row count mismatch: {} vs {}",
            old.rows.len(),
            new.rows.len()
        ));
        return fails;
    }
    let col = |name: &str| old.headers.iter().position(|h| h == name);
    for name in exact {
        let Some(c) = col(name) else {
            fails.push(format!("--exact column {name:?} not in headers"));
            continue;
        };
        for (i, (o, n)) in old.rows.iter().zip(&new.rows).enumerate() {
            if o.get(c) != n.get(c) {
                fails.push(format!(
                    "row {i} column {name:?}: {:?} vs {:?}",
                    o.get(c),
                    n.get(c)
                ));
            }
        }
    }
    if let Some(name) = gate {
        let Some(c) = col(name) else {
            fails.push(format!("--gate column {name:?} not in headers"));
            return fails;
        };
        for (i, (o, n)) in old.rows.iter().zip(&new.rows).enumerate() {
            let parse = |row: &[String], which: &str| -> Result<f64, String> {
                row.get(c)
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| format!("row {i} column {name:?}: {which} cell is not numeric"))
            };
            let (ov, nv) = match (parse(o, "old"), parse(n, "new")) {
                (Ok(ov), Ok(nv)) => (ov, nv * inflate),
                (o, n) => {
                    fails.extend(o.err());
                    fails.extend(n.err());
                    continue;
                }
            };
            let budget = ov * (1.0 + tolerance_pct / 100.0);
            if nv > budget {
                fails.push(format!(
                    "row {i} column {name:?}: {nv:.0} exceeds {ov:.0} by more than \
                     {tolerance_pct}% (budget {budget:.0})"
                ));
            } else {
                println!(
                    "check_figures: gate ok row {i} {name:?}: {nv:.0} <= {budget:.0} \
                     ({ov:.0} +{tolerance_pct}%)"
                );
            }
        }
    }
    fails
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut old_path = None;
    let mut new_path = None;
    let mut exact: Vec<String> = Vec::new();
    let mut gate: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut inflate = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exact" => {
                i += 1;
                exact = args
                    .get(i)
                    .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
                    .unwrap_or_default();
            }
            "--gate" => {
                i += 1;
                gate = args.get(i).cloned();
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(tolerance);
            }
            "--inflate" => {
                i += 1;
                inflate = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(inflate);
            }
            p if old_path.is_none() => old_path = Some(p.to_string()),
            p if new_path.is_none() => new_path = Some(p.to_string()),
            other => {
                eprintln!("check_figures: unexpected --diff argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let (Some(old_path), Some(new_path)) = (old_path, new_path) else {
        eprintln!("check_figures: --diff needs OLD and NEW paths");
        return ExitCode::FAILURE;
    };
    let (old, new) = match (load_table(&old_path), load_table(&new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for e in [o.err(), n.err()].into_iter().flatten() {
                eprintln!("check_figures: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let fails = diff_tables(&old, &new, &exact, gate.as_deref(), tolerance, inflate);
    if fails.is_empty() {
        println!(
            "check_figures: diff ok {} ({} rows, {} exact col(s), gate {:?})",
            old.id,
            old.rows.len(),
            exact.len(),
            gate
        );
        ExitCode::SUCCESS
    } else {
        for f in &fails {
            eprintln!("check_figures: diff {}: {f}", old.id);
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--diff") {
        return run_diff(&args[1..]);
    }

    let mut required: Vec<String> = Vec::new();
    for a in &args {
        if a == "--ablation-set" {
            required.extend(ABLATION_FIGURES.iter().map(|s| s.to_string()));
        } else {
            required.push(a.clone());
        }
    }
    let dir = figures_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_figures: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut failed = false;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let table = match load_table(&path.display().to_string()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_figures: {e}");
                failed = true;
                continue;
            }
        };
        if table.headers.is_empty() {
            eprintln!("check_figures: {} has no headers", path.display());
            failed = true;
        }
        for (i, row) in table.rows.iter().enumerate() {
            if row.len() != table.headers.len() {
                eprintln!(
                    "check_figures: {} row {i} has {} cells, expected {}",
                    path.display(),
                    row.len(),
                    table.headers.len()
                );
                failed = true;
            }
        }
        println!(
            "check_figures: ok {} ({} rows, {} cols)",
            table.id,
            table.rows.len(),
            table.headers.len()
        );
        seen.push((table.id, table.rows.len()));
    }

    for id in &required {
        match seen.iter().find(|(s, _)| s == id) {
            Some((_, rows)) if *rows > 0 => {}
            Some(_) => {
                eprintln!("check_figures: required figure {id:?} has no rows");
                failed = true;
            }
            None => {
                eprintln!(
                    "check_figures: required figure {id:?} missing from {}",
                    dir.display()
                );
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "check_figures: {} figure(s) validated, {} required id(s) present",
            seen.len(),
            required.len()
        );
        ExitCode::SUCCESS
    }
}
