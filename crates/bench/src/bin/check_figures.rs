//! CI validator for the JSON figure sidecars.
//!
//! The `bench-smoke` CI stage runs a bench binary on a tiny topology
//! and then runs this tool to assert the run actually produced
//! well-formed output: every `*.json` under `target/figures/` must
//! parse back into a [`FigureTable`] with consistent row widths, and
//! every id named on the command line must exist with at least one row.
//!
//! Usage: `check_figures [required-id ...]`
//!
//! No timing is checked anywhere — the CI box has 1 CPU, so the smoke
//! stage guards structure, not speed.

use std::path::PathBuf;
use std::process::ExitCode;
use tulkun_bench::FigureTable;

fn figures_dir() -> PathBuf {
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("figures")
}

fn main() -> ExitCode {
    let required: Vec<String> = std::env::args().skip(1).collect();
    let dir = figures_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_figures: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut failed = false;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_figures: cannot read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        let table: FigureTable = match tulkun_json::from_str(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "check_figures: {} is not a well-formed FigureTable: {e:?}",
                    path.display()
                );
                failed = true;
                continue;
            }
        };
        if table.headers.is_empty() {
            eprintln!("check_figures: {} has no headers", path.display());
            failed = true;
        }
        for (i, row) in table.rows.iter().enumerate() {
            if row.len() != table.headers.len() {
                eprintln!(
                    "check_figures: {} row {i} has {} cells, expected {}",
                    path.display(),
                    row.len(),
                    table.headers.len()
                );
                failed = true;
            }
        }
        println!(
            "check_figures: ok {} ({} rows, {} cols)",
            table.id,
            table.rows.len(),
            table.headers.len()
        );
        seen.push((table.id, table.rows.len()));
    }

    for id in &required {
        match seen.iter().find(|(s, _)| s == id) {
            Some((_, rows)) if *rows > 0 => {}
            Some(_) => {
                eprintln!("check_figures: required figure {id:?} has no rows");
                failed = true;
            }
            None => {
                eprintln!(
                    "check_figures: required figure {id:?} missing from {}",
                    dir.display()
                );
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "check_figures: {} figure(s) validated, {} required id(s) present",
            seen.len(),
            required.len()
        );
        ExitCode::SUCCESS
    }
}
