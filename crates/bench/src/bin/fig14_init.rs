//! Figure 14: on-device initialization overhead (burst phase) across
//! the four commodity switch models — CDF quantiles of total time,
//! maximal memory and CPU load per device.

use tulkun_bench::{fmt_ns, quantile, Cli, FigureTable};
use tulkun_core::planner::Planner;
use tulkun_datasets::all_datasets;
use tulkun_sim::{DvmSim, SimConfig, SwitchModel};

fn main() {
    let cli = Cli::parse();
    // Collect per-device init overheads across the WAN/LAN datasets (the
    // paper pools 414 WAN/LAN devices plus representative DC devices).
    let mut init_ns: Vec<u64> = Vec::new();
    let mut mem_bytes: Vec<u64> = Vec::new();
    let mut cpu_load: Vec<f64> = Vec::new();
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) {
            continue;
        }
        if matches!(ds.spec.name.as_str(), "FT-48" | "NGDC") && cli.datasets.is_none() {
            // DC fabrics use local contracts; their init is measured by
            // the localsim path. Sample a handful of devices through one
            // counting invariant instead (edge/agg/core), like the paper
            // takes 6 DC devices.
            sample_dc_devices(&ds, &mut init_ns, &mut mem_bytes, &mut cpu_load);
            continue;
        }
        eprintln!("[fig14] {}", ds.spec.name);
        // One representative destination session measures each device's
        // init (LEC build + initial counting) — the LEC build dominates
        // and is shared across destinations (§8), so one session per
        // device is the right sample.
        let stats = tulkun_stats(&ds);
        for (init, mem, load) in stats {
            init_ns.push(init);
            mem_bytes.push(mem);
            cpu_load.push(load);
        }
    }

    let mut table = FigureTable::new(
        "fig14",
        "Initialization overhead per device (CDF quantiles over all devices)",
        &[
            "switch model",
            "time p50",
            "time p90",
            "time max",
            "mem p90",
            "mem max",
            "cpu load p90",
        ],
    );
    for model in SwitchModel::ALL {
        let scaled: Vec<u64> = init_ns
            .iter()
            .map(|&t| ((t as f64) * model.cpu_factor / SwitchModel::MELLANOX.cpu_factor) as u64)
            .collect();
        let mut loads: Vec<u64> = cpu_load.iter().map(|&l| (l * 1000.0) as u64).collect();
        loads.sort_unstable();
        table.row(vec![
            model.name.into(),
            fmt_ns(quantile(&scaled, 0.5)),
            fmt_ns(quantile(&scaled, 0.9)),
            fmt_ns(quantile(&scaled, 1.0)),
            format!("{:.2}MB", quantile(&mem_bytes, 0.9) as f64 / 1e6),
            format!("{:.2}MB", quantile(&mem_bytes, 1.0) as f64 / 1e6),
            format!("{:.2}", quantile(&loads, 0.9) as f64 / 1000.0),
        ]);
    }
    table.finish();
    println!("devices sampled: {}", init_ns.len());
}

/// Per-device (init time, memory proxy, CPU load) from one burst of the
/// dataset's first destination invariant.
fn tulkun_stats(ds: &tulkun_datasets::Dataset) -> Vec<(u64, u64, f64)> {
    let net = &ds.network;
    let (dst, prefixes) = {
        let mut map: std::collections::BTreeMap<_, Vec<_>> = Default::default();
        for (d, p) in net.topology.external_map() {
            map.entry(d).or_default().push(p);
        }
        map.into_iter().next().expect("announced prefix")
    };
    let inv = tulkun_bench::workload::wan_invariant(net, dst, &prefixes);
    let plan = Planner::new(&net.topology).plan(&inv).expect("plan");
    let cp = plan.counting().expect("counting plan");
    let mut sim = DvmSim::new(net, cp, &inv.packet_space, SimConfig::default());
    let r = sim.burst();
    sim.device_stats()
        .values()
        .map(|s| {
            let total = r.completion_ns.max(1);
            (
                (s.init_ns),
                (s.bdd_nodes as u64 * 16),
                (s.init_ns + s.busy_ns) as f64 / total as f64,
            )
        })
        .collect()
}

fn sample_dc_devices(
    ds: &tulkun_datasets::Dataset,
    init_ns: &mut Vec<u64>,
    mem: &mut Vec<u64>,
    load: &mut Vec<f64>,
) {
    eprintln!("[fig14] {} (sampled devices)", ds.spec.name);
    for (i, m, l) in tulkun_stats(ds) {
        init_ns.push(i);
        mem.push(m);
        load.push(l);
    }
}
