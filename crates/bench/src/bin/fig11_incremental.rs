//! Figures 11b and 11c: incremental verification — the percentage of
//! updates verified in under 10 ms, and the 80%-quantile incremental
//! verification time, per tool per dataset.

use tulkun_baselines::all_baselines;
use tulkun_bench::workload::destinations;
use tulkun_bench::{all_pair_workload, fmt_ns, quantile, Cli, FigureTable, TulkunAllPairs};
use tulkun_datasets::{all_datasets, rule_updates, NetKind};
use tulkun_sim::{central_burst, central_update, SwitchModel};

fn main() {
    let cli = Cli::parse();
    let mut b = FigureTable::new(
        "fig11b",
        "Incremental verification: % of updates verified < 10 ms",
        &[
            "dataset",
            "Tulkun",
            "AP",
            "APKeep",
            "Delta-net",
            "VeriFlow",
            "Flash",
        ],
    );
    let mut c = FigureTable::new(
        "fig11c",
        "Incremental verification: 80% quantile",
        &[
            "dataset",
            "Tulkun",
            "AP",
            "APKeep",
            "Delta-net",
            "VeriFlow",
            "Flash",
            "speedup vs best",
        ],
    );
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) {
            continue;
        }
        eprintln!("[fig11bc] {}", ds.spec.name);
        // Bound memory on large datasets: verify a subset of
        // destinations and restrict the update stream to packet spaces
        // those destinations own (every tool sees the same stream).
        let dsts = destinations(&ds.network);
        let max_dsts = 16usize;
        let subset: Vec<_> = dsts.iter().take(max_dsts).cloned().collect();
        let keep_dev: Vec<_> = subset.iter().map(|(d, _)| *d).collect();
        let keep_prefixes: Vec<_> = subset
            .iter()
            .flat_map(|(_, ps)| ps.iter().copied())
            .collect();
        // Cap the stream on rule-heavy datasets: centralized baselines
        // pay full EC recomputation per update (the measurement point),
        // so a handful of samples already fixes the quantiles.
        let n_updates = if ds.spec.rules > 50_000 {
            cli.updates.min(25)
        } else {
            cli.updates
        };
        let updates: Vec<_> = rule_updates(&ds.network, n_updates * 4, 0x11C)
            .into_iter()
            .filter(|u| {
                let p = match u {
                    tulkun_netmodel::network::RuleUpdate::Insert { rule, .. } => rule.matches.dst,
                    tulkun_netmodel::network::RuleUpdate::Remove { matches, .. } => matches.dst,
                };
                keep_prefixes.iter().any(|kp| kp.overlaps(&p))
            })
            .take(n_updates)
            .collect();

        // Tulkun.
        let mut tulkun =
            TulkunAllPairs::build_for(&ds, SwitchModel::MELLANOX, |d| keep_dev.contains(&d));
        tulkun.burst();
        let t_times: Vec<u64> = updates
            .iter()
            .map(|u| tulkun.incremental(u).completion_ns)
            .collect();

        // Baselines.
        let wl = all_pair_workload(&ds.network);
        let loc = ds.network.topology.devices().next().unwrap();
        let mut base_times: Vec<(String, Vec<u64>)> = Vec::new();
        for mut tool in all_baselines() {
            let heavy = matches!(tool.name(), "AP" | "APKeep" | "VeriFlow");
            if heavy && ds.spec.kind == NetKind::Dc && ds.spec.rules > 100_000 {
                base_times.push((tool.name().to_string(), Vec::new()));
                continue;
            }
            central_burst(tool.as_mut(), &ds.network, &wl, loc);
            let times = updates
                .iter()
                .map(|u| central_update(tool.as_mut(), &ds.network, u, loc).total_ns)
                .collect();
            base_times.push((tool.name().to_string(), times));
        }

        let pct10 = |xs: &[u64]| {
            if xs.is_empty() {
                return "n/a".to_string();
            }
            format!(
                "{:.1}%",
                xs.iter().filter(|&&t| t < 10_000_000).count() as f64 / xs.len() as f64 * 100.0
            )
        };
        let mut row_b = vec![ds.spec.name.clone(), pct10(&t_times)];
        row_b.extend(base_times.iter().map(|(_, xs)| pct10(xs)));
        b.row(row_b);

        let q80_t = quantile(&t_times, 0.8);
        let mut row_c = vec![ds.spec.name.clone(), fmt_ns(q80_t)];
        let mut best = u64::MAX;
        for (_, xs) in &base_times {
            if xs.is_empty() {
                row_c.push("n/a".into());
                continue;
            }
            let q = quantile(xs, 0.8);
            best = best.min(q);
            row_c.push(fmt_ns(q));
        }
        row_c.push(if best == u64::MAX {
            "n/a".into()
        } else {
            format!("{:.1}x", best as f64 / q80_t.max(1) as f64)
        });
        c.row(row_c);
    }
    b.finish();
    c.finish();
}
