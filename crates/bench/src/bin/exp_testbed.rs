//! §9.2 testbed experiments on the 9-device INet2 WAN:
//! Experiment 1 (burst update) and Experiment 2 (incremental updates),
//! Tulkun vs the best centralized baseline.

use tulkun_baselines::all_baselines;
use tulkun_bench::{all_pair_workload, fmt_ns, quantile, Cli, FigureTable, TulkunAllPairs};
use tulkun_datasets::{by_name, rule_updates};
use tulkun_sim::{central_burst, central_update, SwitchModel};

fn main() {
    let cli = Cli::parse();
    let ds = by_name("INet2", cli.scale).expect("INet2");
    let wl = all_pair_workload(&ds.network);
    let verifier_loc = ds.network.topology.devices().next().unwrap();
    let updates = rule_updates(&ds.network, cli.updates, 0x7357);

    // Tulkun.
    let mut tulkun = TulkunAllPairs::build(&ds, SwitchModel::MELLANOX);
    let burst = tulkun.burst();
    let mut tulkun_incr: Vec<u64> = Vec::new();
    for u in &updates {
        tulkun_incr.push(tulkun.incremental(u).completion_ns);
    }

    // Baselines.
    let mut rows: Vec<(String, u64, u64, f64)> = Vec::new();
    for mut tool in all_baselines() {
        let name = tool.name().to_string();
        let b = central_burst(tool.as_mut(), &ds.network, &wl, verifier_loc);
        let mut incr = Vec::new();
        for u in &updates {
            incr.push(central_update(tool.as_mut(), &ds.network, u, verifier_loc).total_ns);
        }
        let q80 = quantile(&incr, 0.8);
        let lt10ms = incr.iter().filter(|&&t| t < 10_000_000).count() as f64
            / incr.len().max(1) as f64
            * 100.0;
        rows.push((name, b.total_ns, q80, lt10ms));
    }

    let mut t1 = FigureTable::new(
        "exp_testbed_burst",
        "Experiment 1 — burst update on INet2 (all-pair subset reachability, <= shortest+2)",
        &["tool", "burst time", "speedup vs Tulkun"],
    );
    t1.row(vec![
        "Tulkun".into(),
        fmt_ns(burst.completion_ns),
        "1.00x".into(),
    ]);
    for (name, b, _, _) in &rows {
        t1.row(vec![
            name.clone(),
            fmt_ns(*b),
            format!("{:.2}x", *b as f64 / burst.completion_ns.max(1) as f64),
        ]);
    }
    t1.finish();

    let best = rows.iter().map(|(_, b, _, _)| *b).min().unwrap_or(0);
    println!(
        "Tulkun burst {} vs best centralized {} → {:.2}x acceleration\n",
        fmt_ns(burst.completion_ns),
        fmt_ns(best),
        best as f64 / burst.completion_ns.max(1) as f64
    );

    let q80_t = quantile(&tulkun_incr, 0.8);
    let lt10_t = tulkun_incr.iter().filter(|&&t| t < 10_000_000).count() as f64
        / tulkun_incr.len().max(1) as f64
        * 100.0;
    let mut t2 = FigureTable::new(
        "exp_testbed_incremental",
        "Experiment 2 — incremental updates on INet2",
        &[
            "tool",
            "80% quantile",
            "% < 10ms",
            "speedup vs Tulkun (q80)",
        ],
    );
    t2.row(vec![
        "Tulkun".into(),
        fmt_ns(q80_t),
        format!("{lt10_t:.1}%"),
        "1.00x".into(),
    ]);
    for (name, _, q80, lt10) in &rows {
        t2.row(vec![
            name.clone(),
            fmt_ns(*q80),
            format!("{lt10:.1}%"),
            format!("{:.2}x", *q80 as f64 / q80_t.max(1) as f64),
        ]);
    }
    t2.finish();

    assert_eq!(burst.violations, 0, "clean INet2 must verify");
}
