//! Figure 10: dataset statistics — devices, links, rules, kind — for the
//! thirteen (generated) evaluation datasets.

use tulkun_bench::{Cli, FigureTable};
use tulkun_datasets::{all_datasets, NetKind};

fn main() {
    let cli = Cli::parse();
    let mut table = FigureTable::new(
        "fig10",
        "Dataset statistics",
        &["dataset", "kind", "devices", "links", "rules", "diameter"],
    );
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) {
            continue;
        }
        let kind = match ds.spec.kind {
            NetKind::Wan => "WAN",
            NetKind::Lan => "LAN",
            NetKind::Dc => "DC",
        };
        table.row(vec![
            ds.spec.name.clone(),
            kind.into(),
            ds.spec.devices.to_string(),
            ds.spec.links.to_string(),
            ds.spec.rules.to_string(),
            ds.network.topology.diameter_hops().to_string(),
        ]);
    }
    table.finish();
}
