//! Figure 15: DVM UPDATE message processing overhead — per-device total
//! time, memory, CPU load, and per-message processing time, replayed
//! across the four switch models.

use tulkun_bench::{fmt_ns, quantile, Cli, FigureTable, TulkunAllPairs};
use tulkun_datasets::{all_datasets, rule_updates, NetKind};
use tulkun_sim::SwitchModel;

fn main() {
    let cli = Cli::parse();
    // Gather message-processing samples by running burst + an update
    // stream across WAN/LAN datasets.
    let mut per_msg_ns: Vec<u64> = Vec::new();
    let mut per_dev_total: Vec<u64> = Vec::new();
    let mut per_dev_mem: Vec<u64> = Vec::new();
    let mut per_dev_load: Vec<f64> = Vec::new();
    let mut total_messages = 0u64;
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) || ds.spec.kind == NetKind::Dc {
            continue;
        }
        eprintln!("[fig15] {}", ds.spec.name);
        // Bound memory on large datasets: a 16-destination subset yields
        // the same per-message-time distribution.
        let keep: Vec<_> = tulkun_bench::workload::destinations(&ds.network)
            .into_iter()
            .take(16)
            .map(|(d, _)| d)
            .collect();
        let mut tulkun =
            TulkunAllPairs::build_for(&ds, SwitchModel::MELLANOX, |d| keep.contains(&d));
        let burst = tulkun.burst();
        total_messages += burst.messages as u64;
        for u in rule_updates(&ds.network, cli.updates.min(100), 0xF15) {
            let r = tulkun.incremental(&u);
            total_messages += r.messages as u64;
        }
        let (msg_times, dev_stats) = tulkun.drain_message_stats();
        per_msg_ns.extend(msg_times);
        for (busy, mem, load) in dev_stats {
            per_dev_total.push(busy);
            per_dev_mem.push(mem);
            per_dev_load.push(load);
        }
    }

    let mut table = FigureTable::new(
        "fig15",
        "DVM UPDATE processing overhead (CDF quantiles)",
        &[
            "switch model",
            "total/dev p90",
            "total/dev max",
            "mem/dev p90",
            "per-msg p50",
            "per-msg p90",
            "per-msg max",
            "cpu p90",
        ],
    );
    for model in SwitchModel::ALL {
        let f = model.cpu_factor / SwitchModel::MELLANOX.cpu_factor;
        let scale = |xs: &[u64]| {
            xs.iter()
                .map(|&t| (t as f64 * f) as u64)
                .collect::<Vec<_>>()
        };
        let msg = scale(&per_msg_ns);
        let tot = scale(&per_dev_total);
        let mut loads: Vec<u64> = per_dev_load.iter().map(|&l| (l * 1000.0) as u64).collect();
        loads.sort_unstable();
        table.row(vec![
            model.name.into(),
            fmt_ns(quantile(&tot, 0.9)),
            fmt_ns(quantile(&tot, 1.0)),
            format!("{:.2}MB", quantile(&per_dev_mem, 0.9) as f64 / 1e6),
            fmt_ns(quantile(&msg, 0.5)),
            fmt_ns(quantile(&msg, 0.9)),
            fmt_ns(quantile(&msg, 1.0)),
            format!("{:.2}", quantile(&loads, 0.9) as f64 / 1000.0),
        ]);
    }
    table.finish();
    println!(
        "messages replayed: {total_messages}; per-message samples: {}",
        per_msg_ns.len()
    );
}
