//! The §1 early-detection experiment: a centralized verifier that has
//! not received the **latest rule updates** of three devices works on a
//! stale view of their FIBs. When the errors live exactly in those
//! missed updates (they usually do — errors arrive as updates), early
//! detection sees a clean network and reports zero errors, while
//! Tulkun's on-device verifiers, which read their own FIBs directly,
//! flag them immediately.
//!
//! The paper reports: "even if the verifier misses the updated rules of
//! only three randomly chosen devices, in 9 out of 11 LAN/WAN datasets,
//! Flash detects zero errors in 80% of the experiment cases."

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tulkun_baselines::flash::Flash;
use tulkun_baselines::CentralizedDpv;
use tulkun_bench::{all_pair_workload, Cli, FigureTable, TulkunAllPairs};
use tulkun_datasets::{all_datasets, NetKind};
use tulkun_netmodel::routing::{inject_errors, InjectedError};
use tulkun_netmodel::DeviceId;
use tulkun_sim::SwitchModel;

fn main() {
    let cli = Cli::parse();
    let mut table = FigureTable::new(
        "exp_flash_miss",
        "Errors detected when the verifier misses 3 devices' latest updates (10 trials)",
        &[
            "dataset",
            "injected",
            "Flash full info",
            "stale-view mean",
            "trials w/ 0 found",
            "Tulkun",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1A5);
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) || ds.spec.kind == NetKind::Dc {
            continue;
        }
        eprintln!("[flash-miss] {}", ds.spec.name);
        // The errors arrive as the *latest* updates: 3 blackholes at
        // random transit devices.
        let mut net = ds.network.clone();
        let pairs: Vec<(DeviceId, tulkun_netmodel::IpPrefix)> =
            net.topology.external_map().collect();
        let mut errors = Vec::new();
        let mut victims = Vec::new();
        while errors.len() < 3 {
            let (dst, prefix) = pairs[rng.gen_range(0..pairs.len())];
            let victim = DeviceId(rng.gen_range(0..net.topology.num_devices()) as u32);
            if victim == dst || victims.contains(&victim) {
                continue;
            }
            victims.push(victim);
            errors.push(InjectedError::Blackhole {
                device: victim,
                prefix,
            });
        }
        inject_errors(&mut net, &errors);
        let wl = all_pair_workload(&net);

        // Full information: every error is visible.
        let mut flash = Flash::new();
        let full = flash.verify_burst(&net, &wl);

        // 10 trials: each victim's latest update is missing with
        // probability 0.8 (freshly-changed devices are exactly the ones
        // whose reports lag); the missing set is topped up to 3 with
        // random devices. The verifier then works on the stale view —
        // missing devices keep their pre-update FIBs.
        let mut found = Vec::new();
        let mut zero_trials = 0;
        for _ in 0..10 {
            let mut missing: Vec<DeviceId> = victims
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(0.8))
                .collect();
            while missing.len() < 3 {
                let d = DeviceId(rng.gen_range(0..net.topology.num_devices()) as u32);
                if !missing.contains(&d) {
                    missing.push(d);
                }
            }
            let mut stale = net.clone();
            for &m in &missing {
                // Revert to the pre-update FIB for missing devices.
                *stale.fib_mut(m) = ds.network.fib(m).clone();
            }
            let mut flash = Flash::new();
            let r = flash.verify_burst(&stale, &wl);
            if r.violations == 0 {
                zero_trials += 1;
            }
            found.push(r.violations);
        }
        let mean = found.iter().sum::<usize>() as f64 / found.len() as f64;

        // Tulkun: on-device verifiers always see their own rules.
        let injected = tulkun_datasets::Dataset {
            spec: ds.spec.clone(),
            network: net.clone(),
        };
        let mut tulkun = TulkunAllPairs::build_for(&injected, SwitchModel::MELLANOX, |d| {
            errors.iter().any(|e| match e {
                InjectedError::Blackhole { prefix, .. } => net
                    .topology
                    .external_prefixes(d)
                    .iter()
                    .any(|p| p.overlaps(prefix)),
                _ => false,
            })
        });
        let t = tulkun.burst();

        table.row(vec![
            ds.spec.name.clone(),
            errors.len().to_string(),
            full.violations.to_string(),
            format!("{mean:.1}"),
            format!("{zero_trials}/10"),
            format!("{} violation classes", t.violations),
        ]);
    }
    table.finish();
}
