//! Figure 12: verification under fault scenes (WAN/LAN datasets).
//!
//! * 12a — time to re-verify the complete network after a fault scene
//!   happens (Tulkun: link-state flooding + recounting along the
//!   fault-tolerant DPVNet; baselines: re-verification on cached ECs,
//!   which the paper notes favors Delta-net).
//! * 12b/c — incremental rule updates inside fault scenes: % < 10 ms
//!   and the 80% quantile.

use tulkun_baselines::all_baselines;
use tulkun_bench::{all_pair_workload, fmt_ns, quantile, Cli, FigureTable};
use tulkun_core::fault::{plan_fault_tolerant, sample_scenes, FaultScene};
use tulkun_core::spec::FaultSpec;
use tulkun_datasets::{all_datasets, rule_updates, NetKind};
use tulkun_sim::{central_burst, central_update, DvmSim, SimConfig};

/// Flooding delay model: one diameter worth of propagation.
fn flood_ns(topo: &tulkun_netmodel::Topology) -> u64 {
    topo.links().iter().map(|l| l.latency_ns).max().unwrap_or(0) * topo.diameter_hops() as u64
}

fn main() {
    let cli = Cli::parse();
    let mut a = FigureTable::new(
        "fig12a",
        "Fault scenes: re-verification time (avg over scenes) and baseline/Tulkun ratio",
        &[
            "dataset",
            "Tulkun",
            "AP/T",
            "APKeep/T",
            "Delta-net/T",
            "VeriFlow/T",
            "Flash/T",
        ],
    );
    let mut b = FigureTable::new(
        "fig12b",
        "Incremental updates inside fault scenes: % < 10 ms",
        &[
            "dataset",
            "Tulkun",
            "AP",
            "APKeep",
            "Delta-net",
            "VeriFlow",
            "Flash",
        ],
    );
    let mut c = FigureTable::new(
        "fig12c",
        "Incremental updates inside fault scenes: 80% quantile",
        &[
            "dataset",
            "Tulkun",
            "AP",
            "APKeep",
            "Delta-net",
            "VeriFlow",
            "Flash",
        ],
    );

    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) || ds.spec.kind == NetKind::Dc {
            continue;
        }
        eprintln!("[fig12] {}", ds.spec.name);
        let topo = &ds.network.topology;
        let scenes = sample_scenes(topo, 3, cli.scenes, 0xF12);
        let fault_scenes: Vec<FaultScene> = scenes.iter().skip(1).cloned().collect();

        // Tulkun: one fault-tolerant plan per destination is expensive to
        // build for every dataset, so use one representative destination
        // (the paper verifies the full all-pair invariant; the per-scene
        // recount cost is per-DPVNet and scales linearly).
        let (dst, prefix) = topo.external_map().next().unwrap();
        let src = topo.devices().find(|d| *d != dst).unwrap();
        let inv = tulkun_core::spec::Invariant::builder()
            .name("fault-tolerant reachability")
            .packet_space(tulkun_core::spec::PacketSpace::DstPrefix(prefix))
            .ingress([topo.name(src)])
            .behavior(tulkun_core::spec::Behavior::exist(
                tulkun_core::count::CountExpr::ge(1),
                tulkun_core::spec::PathExpr::parse(&format!(
                    "{} .* {}",
                    topo.name(src),
                    topo.name(dst)
                ))
                .unwrap()
                .loop_free()
                .shortest_plus(2),
            ))
            .fault_scenes(FaultSpec::Scenes(
                fault_scenes
                    .iter()
                    .map(|s| {
                        s.0.iter()
                            .map(|(x, y)| (topo.name(*x).to_string(), topo.name(*y).to_string()))
                            .collect()
                    })
                    .collect(),
            ))
            .build()
            .unwrap();
        let (plan, ft) = match plan_fault_tolerant(topo, &inv, 10_000, 500_000) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("  skipping {}: {e}", ds.spec.name);
                continue;
            }
        };
        let mut sim = DvmSim::new(&ds.network, &plan, &inv.packet_space, SimConfig::default());
        sim.burst();
        let fl = flood_ns(topo);
        let mut scene_times: Vec<u64> = Vec::new();
        let mut incr_times: Vec<u64> = Vec::new();
        // Per-update baseline cost grows with rule count (AP rebuilds its
        // state); cap the stream on heavy datasets.
        let per_scene = if ds.spec.rules > 50_000 { 3 } else { 10 };
        let updates = rule_updates(&ds.network, cli.updates.min(100), 0xF12F);
        for scene in &fault_scenes {
            let Some(idx) = ft.scene_index(scene) else {
                continue;
            };
            if ft.intolerable.contains(&idx) {
                continue;
            }
            let tasks = ft.scene_tasks(idx);
            let r = sim.apply_scene(&tasks, fl);
            scene_times.push(r.completion_ns);
            // A few rule updates inside the scene.
            for u in updates.iter().take(per_scene) {
                if u.device() == dst {
                    continue;
                }
                incr_times.push(sim.incremental(u).completion_ns);
            }
            // Restore the base scene for the next iteration.
            let tasks0 = ft.scene_tasks(0);
            sim.apply_scene(&tasks0, fl);
        }
        let t_avg = if scene_times.is_empty() {
            0
        } else {
            scene_times.iter().sum::<u64>() / scene_times.len() as u64
        };

        // Baselines: scene re-verification = reverify() on cached state
        // (no rule update happened), plus the flooding-equivalent
        // notification latency.
        let wl = all_pair_workload(&ds.network);
        let loc = topo.devices().next().unwrap();
        let mut ratios = Vec::new();
        let mut pct_cells = vec![ds.spec.name.clone(), {
            let n10 = incr_times.iter().filter(|&&t| t < 10_000_000).count();
            if incr_times.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}%", n10 as f64 / incr_times.len() as f64 * 100.0)
            }
        }];
        let mut q_cells = vec![ds.spec.name.clone(), fmt_ns(quantile(&incr_times, 0.8))];
        for mut tool in all_baselines() {
            central_burst(tool.as_mut(), &ds.network, &wl, loc);
            // 12a: average re-verification across scenes.
            let mut times = Vec::new();
            for _ in &fault_scenes {
                let t0 = std::time::Instant::now();
                tool.reverify();
                times.push(t0.elapsed().as_nanos() as u64 + fl);
            }
            let avg = times.iter().sum::<u64>() / times.len().max(1) as u64;
            ratios.push(format!("{:.2}x", avg as f64 / t_avg.max(1) as f64));
            // 12b/c: incremental updates (same stream).
            let mut bt = Vec::new();
            for u in updates.iter().take(per_scene * fault_scenes.len()) {
                bt.push(central_update(tool.as_mut(), &ds.network, u, loc).total_ns);
            }
            let n10 = bt.iter().filter(|&&t| t < 10_000_000).count();
            pct_cells.push(if bt.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}%", n10 as f64 / bt.len() as f64 * 100.0)
            });
            q_cells.push(fmt_ns(quantile(&bt, 0.8)));
        }
        let mut row = vec![ds.spec.name.clone(), fmt_ns(t_avg)];
        row.extend(ratios);
        a.row(row);
        b.row(pct_cells);
        c.row(q_cells);
    }
    a.finish();
    b.finish();
    c.finish();
}
