//! Figure 11a: burst-update verification time of Tulkun across the 13
//! datasets, and the acceleration ratio of each centralized baseline
//! over Tulkun (ratio > 1 means Tulkun is faster).

use tulkun_baselines::all_baselines;
use tulkun_bench::workload::burst_streaming;
use tulkun_bench::{all_pair_workload, fmt_ns, Cli, FigureTable};
use tulkun_datasets::{all_datasets, NetKind};
use tulkun_sim::{central_burst, SwitchModel};

fn main() {
    let cli = Cli::parse();
    let mut table = FigureTable::new(
        "fig11a",
        "Burst update: Tulkun time and baseline/Tulkun acceleration ratios",
        &[
            "dataset",
            "Tulkun",
            "msgs",
            "AP/T",
            "APKeep/T",
            "Delta-net/T",
            "VeriFlow/T",
            "Flash/T",
            "errors",
        ],
    );
    for ds in all_datasets(cli.scale) {
        if !cli.wants(&ds.spec.name) {
            continue;
        }
        eprintln!(
            "[fig11a] {} ({} devices, {} rules)",
            ds.spec.name, ds.spec.devices, ds.spec.rules
        );
        let (t, _plan_ns) = burst_streaming(&ds, SwitchModel::MELLANOX);
        let wl = all_pair_workload(&ds.network);
        let loc = ds.network.topology.devices().next().unwrap();
        let mut ratios = Vec::new();
        for mut tool in all_baselines() {
            // Skip the heavyweight BDD baselines on the big DC fabrics at
            // paper scale (the paper reports them at tens of hours; we
            // report them as such rather than running them).
            let heavy = matches!(tool.name(), "AP" | "APKeep" | "VeriFlow");
            if heavy && ds.spec.kind == NetKind::Dc && ds.spec.rules > 100_000 {
                ratios.push(">1000x*".to_string());
                continue;
            }
            let run = central_burst(tool.as_mut(), &ds.network, &wl, loc);
            ratios.push(format!(
                "{:.2}x",
                run.total_ns as f64 / t.completion_ns.max(1) as f64
            ));
        }
        let mut row = vec![
            ds.spec.name.clone(),
            fmt_ns(t.completion_ns),
            t.messages.to_string(),
        ];
        row.extend(ratios);
        row.push(t.violations.to_string());
        table.row(row);
    }
    table.finish();
    println!("* extrapolated: not run to completion (the paper reports tens of hours)");
}
