//! Evaluation workloads (§9.3.1).
//!
//! * WAN/LAN: all-pair, loop-free, blackhole-free reachability along
//!   `<= shortest + 2`-hop paths — for Tulkun this is one invariant per
//!   destination device (a multi-ingress subset behavior); for the
//!   centralized baselines it is the all-pairs workload of
//!   [`tulkun_baselines::Workload`].
//! * DC: all-ToR-pair shortest-path availability — `equal` behaviors
//!   verified as communication-free local contracts (RCDC-style).

use tulkun_baselines::Workload as BaselineWorkload;
use tulkun_core::count::CountExpr;
use tulkun_core::planner::{Planner, PlannerOptions};
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_datasets::{Dataset, NetKind};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::{DeviceId, IpPrefix};
use tulkun_sim::event::LecCache;
use tulkun_sim::localsim::LocalSim;
use tulkun_sim::{DvmSim, SimConfig, SwitchModel};

/// The baseline workload for a dataset (all announced pairs).
pub fn all_pair_workload(net: &Network) -> BaselineWorkload {
    BaselineWorkload::all_pairs(net)
}

/// The per-destination Tulkun invariant for WAN/LAN datasets:
/// every other device must deliver (subset: at least one copy, no
/// escapes) along loop-free, `<= shortest+2` paths.
pub fn wan_invariant(net: &Network, dst: DeviceId, prefixes: &[IpPrefix]) -> Invariant {
    let topo = &net.topology;
    let dst_name = topo.name(dst);
    let ingress: Vec<String> = topo
        .devices()
        .filter(|d| *d != dst)
        .map(|d| topo.name(d).to_string())
        .collect();
    let mut ps = PacketSpace::DstPrefix(prefixes[0]);
    for p in &prefixes[1..] {
        ps = ps.or(PacketSpace::DstPrefix(*p));
    }
    let path = PathExpr::parse(&format!(". * {dst_name}"))
        .unwrap()
        .loop_free()
        .shortest_plus(2);
    Invariant::builder()
        .name(format!("all-pair subset reachability -> {dst_name}"))
        .packet_space(ps)
        .ingress(ingress)
        .behavior(Behavior::exist(CountExpr::ge(1), path.clone()).and(Behavior::covered(path)))
        .build()
        .expect("wan invariant")
}

/// The per-destination DC invariant: all-ToR-pair shortest-path
/// availability (`equal`, verified by local contracts).
pub fn dc_invariant(net: &Network, dst: DeviceId, prefixes: &[IpPrefix]) -> Invariant {
    let topo = &net.topology;
    let dst_name = topo.name(dst);
    let ingress: Vec<String> = topo
        .devices()
        .filter(|s| *s != dst && topo.name(*s).starts_with("tor"))
        .map(|s| topo.name(s).to_string())
        .collect();
    let mut ps = PacketSpace::DstPrefix(prefixes[0]);
    for p in &prefixes[1..] {
        ps = ps.or(PacketSpace::DstPrefix(*p));
    }
    Invariant::builder()
        .name(format!("all-shortest-path availability -> {dst_name}"))
        .packet_space(ps)
        .ingress(ingress)
        .behavior(Behavior::equal(
            PathExpr::parse(&format!(". * {dst_name}"))
                .unwrap()
                .shortest_only(),
        ))
        .build()
        .expect("dc invariant")
}

/// Per-destination state of a running Tulkun all-pair session.
#[allow(clippy::large_enum_variant)] // one variant per destination, boxed-by-Vec anyway
enum PerDst {
    Counting {
        prefixes: Vec<IpPrefix>,
        sim: DvmSim,
    },
    Local {
        prefixes: Vec<IpPrefix>,
        sim: LocalSim,
        net: Network,
    },
}

/// The result of one Tulkun phase over all destinations.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllPairRun {
    /// Estimated wall-clock completion: destinations verify in
    /// parallel, but one device's CPU is shared across its tasks —
    /// `max(max_dst completion, max_device Σ busy)`.
    pub completion_ns: u64,
    pub messages: usize,
    pub bytes: u64,
    pub violations: usize,
}

/// A Tulkun all-pair verification session over a dataset: one
/// per-destination DPVNet (WAN/LAN counting) or local-contract set (DC).
pub struct TulkunAllPairs {
    per_dst: Vec<PerDst>,
    /// Planner (DPVNet) computation time, not part of verification time
    /// (precomputed; reported separately like the paper's Fig. 13).
    pub plan_ns: u64,
}

/// Announced prefixes grouped per destination device.
pub fn destinations(net: &Network) -> Vec<(DeviceId, Vec<IpPrefix>)> {
    let mut dsts: Vec<(DeviceId, Vec<IpPrefix>)> = Vec::new();
    for (d, p) in net.topology.external_map() {
        match dsts.iter_mut().find(|(x, _)| *x == d) {
            Some((_, ps)) => ps.push(p),
            None => dsts.push((d, vec![p])),
        }
    }
    dsts.sort_by_key(|(d, _)| *d);
    dsts
}

fn build_per_dst(
    ds: &Dataset,
    model: SwitchModel,
    dst: DeviceId,
    prefixes: Vec<IpPrefix>,
    plan_ns: &mut u64,
    lec_cache: &LecCache,
) -> PerDst {
    let net = &ds.network;
    let planner = Planner::with_options(
        &net.topology,
        PlannerOptions {
            skip_consistency_check: false,
            ..Default::default()
        },
    );
    let inv = match ds.spec.kind {
        NetKind::Dc => dc_invariant(net, dst, &prefixes),
        _ => wan_invariant(net, dst, &prefixes),
    };
    let t0 = std::time::Instant::now();
    let plan = planner.plan(&inv).expect("plan");
    *plan_ns += t0.elapsed().as_nanos() as u64;
    match &plan.kind {
        tulkun_core::planner::PlanKind::Counting(cp) => {
            let sim = DvmSim::new_cached(
                net,
                cp,
                &plan.invariant.packet_space,
                SimConfig {
                    model,
                    ..Default::default()
                },
                lec_cache,
            );
            PerDst::Counting { prefixes, sim }
        }
        tulkun_core::planner::PlanKind::Local(lp) => {
            let sim = LocalSim::new_cached(net, lp, &plan.invariant.packet_space, model, lec_cache);
            PerDst::Local {
                prefixes,
                sim,
                net: net.clone(),
            }
        }
    }
}

impl TulkunAllPairs {
    /// Plans and instantiates the session for a dataset (all
    /// destinations held in memory — use [`TulkunAllPairs::build_for`]
    /// or [`burst_streaming`] on very large datasets).
    pub fn build(ds: &Dataset, model: SwitchModel) -> TulkunAllPairs {
        Self::build_for(ds, model, |_| true)
    }

    /// Like [`TulkunAllPairs::build`] but keeps only the destinations
    /// accepted by `keep` (e.g. those an update stream touches).
    pub fn build_for(
        ds: &Dataset,
        model: SwitchModel,
        keep: impl Fn(DeviceId) -> bool,
    ) -> TulkunAllPairs {
        let mut plan_ns = 0;
        let lec_cache = LecCache::new();
        let per_dst = destinations(&ds.network)
            .into_iter()
            .filter(|(d, _)| keep(*d))
            .map(|(dst, prefixes)| {
                build_per_dst(ds, model, dst, prefixes, &mut plan_ns, &lec_cache)
            })
            .collect();
        TulkunAllPairs { per_dst, plan_ns }
    }

    /// Runs the burst phase for every destination.
    pub fn burst(&mut self) -> AllPairRun {
        let mut run = AllPairRun::default();
        let mut per_device_busy: std::collections::BTreeMap<DeviceId, u64> = Default::default();
        // The LEC table is shared across all destination tasks on one
        // device (it depends only on the FIB), so its build cost is paid
        // once per device, not once per destination: charge the max init
        // rather than the sum.
        let mut per_device_init: std::collections::BTreeMap<DeviceId, u64> = Default::default();
        let mut max_dst = 0u64;
        for pd in &mut self.per_dst {
            match pd {
                PerDst::Counting { sim, .. } => {
                    let r = sim.burst();
                    max_dst = max_dst.max(r.completion_ns);
                    run.messages += r.messages;
                    run.bytes += r.bytes;
                    run.violations += sim.report().violations.len();
                    for (dev, st) in sim.device_stats() {
                        *per_device_busy.entry(*dev).or_default() += st.busy_ns;
                        let e = per_device_init.entry(*dev).or_default();
                        *e = (*e).max(st.init_ns);
                    }
                }
                PerDst::Local { sim, .. } => {
                    let r = sim.burst();
                    max_dst = max_dst.max(r.completion_ns);
                    run.violations += r.violations.len();
                    for (dev, ns) in &r.per_device {
                        *per_device_busy.entry(*dev).or_default() += ns;
                    }
                }
            }
        }
        let max_dev = per_device_busy
            .iter()
            .map(|(d, b)| b + per_device_init.get(d).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        run.completion_ns = max_dst.max(max_dev);
        run
    }

    /// Applies one rule update, re-verifying only the destinations whose
    /// packet space overlaps it. Returns the incremental verification
    /// time (max across the affected destinations, which run in
    /// parallel) and the number of current violations among them.
    pub fn incremental(&mut self, update: &RuleUpdate) -> AllPairRun {
        let prefix = match update {
            RuleUpdate::Insert { rule, .. } => rule.matches.dst,
            RuleUpdate::Remove { matches, .. } => matches.dst,
        };
        let mut run = AllPairRun::default();
        for pd in &mut self.per_dst {
            match pd {
                PerDst::Counting { prefixes, sim } => {
                    if !prefixes.iter().any(|p| p.overlaps(&prefix)) {
                        continue;
                    }
                    let r = sim.incremental(update);
                    run.completion_ns = run.completion_ns.max(r.completion_ns);
                    run.messages += r.messages;
                    run.bytes += r.bytes;
                    run.violations += sim.report().violations.len();
                }
                PerDst::Local { prefixes, sim, net } => {
                    if !prefixes.iter().any(|p| p.overlaps(&prefix)) {
                        continue;
                    }
                    let r = sim.incremental(net, update);
                    run.completion_ns = run.completion_ns.max(r.completion_ns);
                    run.violations += r.violations.len();
                }
            }
        }
        run
    }

    /// Total current violations across destinations.
    pub fn violations(&mut self) -> usize {
        self.per_dst
            .iter_mut()
            .map(|pd| match pd {
                PerDst::Counting { sim, .. } => sim.report().violations.len(),
                PerDst::Local { .. } => 0, // local checks report at check time
            })
            .sum()
    }

    /// Number of destination sessions.
    pub fn destinations(&self) -> usize {
        self.per_dst.len()
    }

    /// Drains per-message processing-time samples and per-device
    /// `(busy, memory, load)` triples from all counting sims (Fig. 15).
    pub fn drain_message_stats(&mut self) -> (Vec<u64>, Vec<(u64, u64, f64)>) {
        let mut msg = Vec::new();
        let mut dev: std::collections::BTreeMap<DeviceId, (u64, u64)> = Default::default();
        for pd in &mut self.per_dst {
            if let PerDst::Counting { sim, .. } = pd {
                msg.append(&mut sim.stats_mut().drain_msg_samples());
                for (d, st) in sim.device_stats() {
                    let e = dev.entry(*d).or_default();
                    e.0 += st.busy_ns;
                    e.1 = e.1.max(st.bdd_nodes as u64 * 16);
                }
            }
        }
        let total: u64 = dev.values().map(|(b, _)| *b).max().unwrap_or(1).max(1);
        let out = dev
            .into_values()
            .map(|(busy, mem)| (busy, mem, busy as f64 / total as f64))
            .collect();
        (msg, out)
    }
}

/// Streaming burst: builds, bursts and drops one destination at a time —
/// constant memory in the number of destinations.
pub fn burst_streaming(ds: &Dataset, model: SwitchModel) -> (AllPairRun, u64) {
    let mut run = AllPairRun::default();
    let mut per_device_busy: std::collections::BTreeMap<DeviceId, u64> = Default::default();
    let mut per_device_init: std::collections::BTreeMap<DeviceId, u64> = Default::default();
    let mut max_dst = 0u64;
    let mut plan_ns = 0u64;
    let lec_cache = LecCache::new();
    for (dst, prefixes) in destinations(&ds.network) {
        let pd = build_per_dst(ds, model, dst, prefixes, &mut plan_ns, &lec_cache);
        match pd {
            PerDst::Counting { mut sim, .. } => {
                let r = sim.burst();
                max_dst = max_dst.max(r.completion_ns);
                run.messages += r.messages;
                run.bytes += r.bytes;
                run.violations += sim.report().violations.len();
                for (dev, st) in sim.device_stats() {
                    *per_device_busy.entry(*dev).or_default() += st.busy_ns;
                    let e = per_device_init.entry(*dev).or_default();
                    *e = (*e).max(st.init_ns);
                }
            }
            PerDst::Local { mut sim, .. } => {
                let r = sim.burst();
                max_dst = max_dst.max(r.completion_ns);
                run.violations += r.violations.len();
                for (dev, ns) in &r.per_device {
                    *per_device_busy.entry(*dev).or_default() += ns;
                }
            }
        }
    }
    let max_dev = per_device_busy
        .iter()
        .map(|(d, b)| b + per_device_init.get(d).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    run.completion_ns = max_dst.max(max_dev);
    (run, plan_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_datasets::{by_name, rule_updates, Scale};
    use tulkun_netmodel::routing::{inject_errors, InjectedError};

    #[test]
    fn wan_all_pairs_clean_then_error() {
        let ds = by_name("INet2", Scale::Tiny).unwrap();
        let mut s = TulkunAllPairs::build(&ds, SwitchModel::MELLANOX);
        assert_eq!(s.destinations(), 9);
        let burst = s.burst();
        assert_eq!(burst.violations, 0, "clean INet2 must verify");
        assert!(burst.completion_ns > 0);
        assert!(burst.messages > 0);

        // Inject a blackhole via an incremental update: must be caught.
        let (dst, prefix) = ds.network.topology.external_map().next().unwrap();
        let victim = ds.network.topology.devices().find(|v| *v != dst).unwrap();
        let err = InjectedError::Blackhole {
            device: victim,
            prefix,
        };
        let r = s.incremental(&err.to_update());
        assert!(r.violations > 0, "blackhole must be detected");
        assert!(r.completion_ns > 0);
    }

    #[test]
    fn dc_all_pairs_local_contracts() {
        let ds = by_name("FT-48", Scale::Tiny).unwrap();
        let mut s = TulkunAllPairs::build(&ds, SwitchModel::MELLANOX);
        let burst = s.burst();
        assert_eq!(burst.violations, 0, "clean fat tree must verify");
        assert_eq!(burst.messages, 0, "local contracts need no messages");
        assert!(burst.completion_ns > 0);
    }

    #[test]
    fn update_stream_runs() {
        let ds = by_name("B4-13", Scale::Tiny).unwrap();
        let mut s = TulkunAllPairs::build(&ds, SwitchModel::MELLANOX);
        s.burst();
        let mut times = Vec::new();
        for u in rule_updates(&ds.network, 20, 5) {
            times.push(s.incremental(&u).completion_ns);
        }
        assert_eq!(times.len(), 20);
    }

    #[test]
    fn burst_detects_preinjected_errors() {
        let ds = by_name("B4-13", Scale::Tiny).unwrap();
        let mut ds = ds;
        let (dst, prefix) = ds.network.topology.external_map().next().unwrap();
        let victim = ds.network.topology.devices().find(|v| *v != dst).unwrap();
        inject_errors(
            &mut ds.network,
            &[InjectedError::Blackhole {
                device: victim,
                prefix,
            }],
        );
        let mut s = TulkunAllPairs::build(&ds, SwitchModel::MELLANOX);
        let burst = s.burst();
        assert!(burst.violations > 0);
    }
}
