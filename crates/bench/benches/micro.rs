//! Criterion micro-benchmarks for the core operations the evaluation
//! depends on: BDD predicate algebra, LEC construction, DPVNet
//! construction, DVM message handling, and per-update incremental
//! verification.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tulkun_bdd::{BddManager, HeaderLayout};
use tulkun_core::count::CountExpr;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::Session;
use tulkun_datasets::{by_name, fig2a_network, rule_updates, Scale};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::RuleUpdate;

fn bench_bdd(c: &mut Criterion) {
    let layout = HeaderLayout::ipv4_tcp();
    c.bench_function("bdd/prefix_and_intersect", |b| {
        b.iter_batched(
            || BddManager::new(layout.num_vars()),
            |mut m| {
                let p1 = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
                let p2 = layout.dst_prefix(&mut m, [10, 0, 1, 0], 24);
                let port = layout.dst_port_range(&mut m, 80, 443);
                let x = m.and(p1, port);
                let y = m.and(p2, x);
                m.sat_count(y)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bdd/export_import", |b| {
        let mut m = BddManager::new(layout.num_vars());
        let p = layout.dst_prefix(&mut m, [10, 2, 0, 0], 16);
        let q = layout.dst_port_range(&mut m, 1000, 2000);
        let r = m.and(p, q);
        b.iter_batched(
            || BddManager::new(layout.num_vars()),
            |mut dst| {
                let enc = tulkun_bdd::serial::export(&m, r);
                tulkun_bdd::serial::import(&mut dst, &enc).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lec(c: &mut Criterion) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let layout = ds.network.layout;
    let dev = ds.network.topology.devices().next().unwrap();
    let fib = ds.network.fib(dev).clone();
    c.bench_function("lec/build_inet2_device", |b| {
        b.iter_batched(
            || BddManager::new(layout.num_vars()),
            |mut m| fib.local_equivalence_classes(&mut m, &layout).len(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_dpvnet(c: &mut Criterion) {
    let net = fig2a_network();
    c.bench_function("dpvnet/build_waypoint_fig2", |b| {
        let s = net.topology.device("S").unwrap();
        let pe = PathExpr::parse("S .* W .* D").unwrap().loop_free();
        b.iter(|| {
            tulkun_core::dpvnet::DpvNet::build(&net.topology, &[s], std::slice::from_ref(&pe))
                .unwrap()
                .num_nodes()
        })
    });
    let ds = by_name("B4-13", Scale::Tiny).unwrap();
    c.bench_function("dpvnet/build_allpair_b4_one_dst", |b| {
        let topo = &ds.network.topology;
        let (dst, _) = topo.external_map().next().unwrap();
        let ingress: Vec<_> = topo.devices().filter(|d| *d != dst).collect();
        let pe = PathExpr::parse(&format!(". * {}", topo.name(dst)))
            .unwrap()
            .loop_free()
            .shortest_plus(2);
        b.iter(|| {
            tulkun_core::dpvnet::DpvNet::build(topo, &ingress, std::slice::from_ref(&pe))
                .unwrap()
                .num_nodes()
        })
    });
}

fn waypoint_session() -> (tulkun_netmodel::Network, Session) {
    let net = fig2a_network();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let mut s = Session::new(&net, &plan);
    s.run_to_quiescence();
    (net, s)
}

fn bench_dvm(c: &mut Criterion) {
    c.bench_function("dvm/burst_fig2_waypoint", |b| {
        b.iter(|| {
            let (_, mut s) = waypoint_session();
            s.report().violations.len()
        })
    });
    c.bench_function("dvm/incremental_fig2_update", |b| {
        let (net, _) = waypoint_session();
        let bdev = net.topology.device("B").unwrap();
        let w = net.topology.device("W").unwrap();
        let update = RuleUpdate::Insert {
            device: bdev,
            rule: Rule {
                priority: 50,
                matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
                action: Action::fwd(w),
            },
        };
        b.iter_batched(
            || waypoint_session().1,
            |mut s| s.apply_rule_update(&update),
            BatchSize::SmallInput,
        )
    });
}

fn bench_incremental_inet2(c: &mut Criterion) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let updates = rule_updates(&ds.network, 64, 0xbe5c);
    let topo = &ds.network.topology;
    let (dst, _) = topo.external_map().next().unwrap();
    let prefixes: Vec<_> = topo.external_prefixes(dst).to_vec();
    let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
    let plan = Planner::new(topo).plan(&inv).unwrap();
    c.bench_function("dvm/incremental_inet2_stream", |b| {
        b.iter_batched(
            || {
                let mut s = Session::new(&ds.network, &plan);
                s.run_to_quiescence();
                s
            },
            |mut s| {
                for u in &updates {
                    s.apply_rule_update(u);
                }
                s.report().violations.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_baselines(c: &mut Criterion) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let wl = tulkun_baselines::Workload::all_pairs(&ds.network);
    let update = rule_updates(&ds.network, 1, 0xAB).remove(0);

    let mut group = c.benchmark_group("baselines/burst_inet2");
    for mut tool in tulkun_baselines::all_baselines() {
        group.bench_function(tool.name(), |b| {
            b.iter(|| tool.verify_burst(&ds.network, &wl).violations)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("baselines/update_inet2");
    for mut tool in tulkun_baselines::all_baselines() {
        tool.verify_burst(&ds.network, &wl);
        group.bench_function(tool.name(), |b| {
            b.iter(|| tool.apply_update(&update).violations)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bdd, bench_lec, bench_dpvnet, bench_dvm, bench_incremental_inet2, bench_baselines
}
criterion_main!(benches);
