//! Micro-benchmarks for the core operations the evaluation depends on:
//! BDD predicate algebra, LEC construction, DPVNet construction, DVM
//! message handling, and per-update incremental verification.
//!
//! Self-contained harness (`harness = false`): each benchmark runs a
//! fixed number of timed iterations after a warmup and reports
//! min/median/mean wall-clock time. Run with
//! `cargo bench -p tulkun-bench`; filter by substring argument.

use std::time::Instant;
use tulkun_bdd::{BddManager, HeaderLayout};
use tulkun_core::count::CountExpr;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::Session;
use tulkun_datasets::{by_name, fig2a_network, rule_updates, Scale};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::RuleUpdate;

const WARMUP: usize = 2;
const SAMPLES: usize = 10;

struct Bencher {
    filter: Option<String>,
}

impl Bencher {
    fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(fi) = &self.filter {
            if !name.contains(fi.as_str()) {
                return;
            }
        }
        for _ in 0..WARMUP {
            std::hint::black_box(f());
        }
        let mut ns: Vec<u64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos() as u64
            })
            .collect();
        ns.sort_unstable();
        let mean = ns.iter().sum::<u64>() / ns.len() as u64;
        println!(
            "{name:<40} min {:>12} ns   median {:>12} ns   mean {:>12} ns",
            ns[0],
            ns[ns.len() / 2],
            mean
        );
    }
}

fn bench_bdd(c: &Bencher) {
    let layout = HeaderLayout::ipv4_tcp();
    c.bench("bdd/prefix_and_intersect", || {
        let mut m = BddManager::new(layout.num_vars());
        let p1 = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
        let p2 = layout.dst_prefix(&mut m, [10, 0, 1, 0], 24);
        let port = layout.dst_port_range(&mut m, 80, 443);
        let x = m.and(p1, port);
        let y = m.and(p2, x);
        m.sat_count(y)
    });
    let mut m = BddManager::new(layout.num_vars());
    let p = layout.dst_prefix(&mut m, [10, 2, 0, 0], 16);
    let q = layout.dst_port_range(&mut m, 1000, 2000);
    let r = m.and(p, q);
    c.bench("bdd/export_import", || {
        let mut dst = BddManager::new(layout.num_vars());
        let enc = tulkun_bdd::serial::export(&m, r);
        tulkun_bdd::serial::import(&mut dst, &enc).unwrap()
    });
}

fn bench_lec(c: &Bencher) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let layout = ds.network.layout;
    let dev = ds.network.topology.devices().next().unwrap();
    let fib = ds.network.fib(dev).clone();
    c.bench("lec/build_inet2_device", || {
        let mut m = BddManager::new(layout.num_vars());
        fib.local_equivalence_classes(&mut m, &layout).len()
    });
}

fn bench_dpvnet(c: &Bencher) {
    let net = fig2a_network();
    let s = net.topology.device("S").unwrap();
    let pe = PathExpr::parse("S .* W .* D").unwrap().loop_free();
    c.bench("dpvnet/build_waypoint_fig2", || {
        tulkun_core::dpvnet::DpvNet::build(&net.topology, &[s], std::slice::from_ref(&pe))
            .unwrap()
            .num_nodes()
    });
    let ds = by_name("B4-13", Scale::Tiny).unwrap();
    let topo = ds.network.topology.clone();
    let (dst, _) = topo.external_map().next().unwrap();
    let ingress: Vec<_> = topo.devices().filter(|d| *d != dst).collect();
    let pe = PathExpr::parse(&format!(". * {}", topo.name(dst)))
        .unwrap()
        .loop_free()
        .shortest_plus(2);
    c.bench("dpvnet/build_allpair_b4_one_dst", || {
        tulkun_core::dpvnet::DpvNet::build(&topo, &ingress, std::slice::from_ref(&pe))
            .unwrap()
            .num_nodes()
    });
}

fn waypoint_session() -> (tulkun_netmodel::Network, Session) {
    let net = fig2a_network();
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let mut s = Session::new(&net, &plan);
    s.run_to_quiescence();
    (net, s)
}

fn bench_dvm(c: &Bencher) {
    c.bench("dvm/burst_fig2_waypoint", || {
        let (_, mut s) = waypoint_session();
        s.report().violations.len()
    });
    let (net, _) = waypoint_session();
    let bdev = net.topology.device("B").unwrap();
    let w = net.topology.device("W").unwrap();
    let update = RuleUpdate::Insert {
        device: bdev,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    c.bench("dvm/incremental_fig2_update", || {
        let mut s = waypoint_session().1;
        s.apply_rule_update(&update)
    });
}

fn bench_incremental_inet2(c: &Bencher) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let updates = rule_updates(&ds.network, 64, 0xbe5c);
    let topo = &ds.network.topology;
    let (dst, _) = topo.external_map().next().unwrap();
    let prefixes: Vec<_> = topo.external_prefixes(dst).to_vec();
    let inv = tulkun_bench::workload::wan_invariant(&ds.network, dst, &prefixes);
    let plan = Planner::new(topo).plan(&inv).unwrap();
    c.bench("dvm/incremental_inet2_stream", || {
        let mut s = Session::new(&ds.network, &plan);
        s.run_to_quiescence();
        for u in &updates {
            s.apply_rule_update(u);
        }
        s.report().violations.len()
    });
}

fn bench_baselines(c: &Bencher) {
    let ds = by_name("INet2", Scale::Tiny).unwrap();
    let wl = tulkun_baselines::Workload::all_pairs(&ds.network);
    let update = rule_updates(&ds.network, 1, 0xAB).remove(0);

    for mut tool in tulkun_baselines::all_baselines() {
        let name = format!("baselines/burst_inet2/{}", tool.name());
        c.bench(&name, || tool.verify_burst(&ds.network, &wl).violations);
    }

    for mut tool in tulkun_baselines::all_baselines() {
        tool.verify_burst(&ds.network, &wl);
        let name = format!("baselines/update_inet2/{}", tool.name());
        c.bench(&name, || tool.apply_update(&update).violations);
    }
}

fn main() {
    // `cargo bench -- <filter>` passes extra args through; also tolerate
    // the libtest-style `--bench` flag.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let c = Bencher { filter };
    bench_bdd(&c);
    bench_lec(&c);
    bench_dpvnet(&c);
    bench_dvm(&c);
    bench_incremental_inet2(&c);
    bench_baselines(&c);
}
