#![warn(missing_docs)]
//! Pluggable predicate backends for the on-device verifier.
//!
//! The paper's core loop — local LEC delta → CIB recompute →
//! counting-message exchange — does not require BDDs; it requires *any*
//! canonical predicate algebra. This crate extracts the operations the
//! hot path actually uses into the [`PredicateBackend`] trait and
//! provides three interchangeable implementations:
//!
//! * [`BddBackend`] — the original ROBDD representation
//!   ([`tulkun_bdd::BddManager`]); supports the full header layout
//!   (ports, protocol, rewrites).
//! * [`IntervalSetBackend`] — canonical sorted disjoint interval sets
//!   over the 32-bit destination space; set operations are linear
//!   merges. Destination-prefix-only workloads.
//! * [`DeltaNetBackend`] — Delta-net-style *atoms*: a global splittable
//!   boundary array over the destination space; a predicate is an
//!   interned sorted atom-id list and every set operation is a sorted
//!   list merge. On a stable prefix set, steady-state churn inserts no
//!   new boundaries, which is exactly where Delta-net beats BDDs.
//!
//! # The wire-format invariant
//!
//! DVM messages carry predicates as [`PortablePred`] — the canonical
//! children-first ROBDD node list. `export` of *any* backend produces
//! the ROBDD encoding of the same packet set under the same fixed
//! variable order, so the bytes on the wire are **byte-identical
//! regardless of backend**: devices running different backends
//! interoperate, cached LEC tables are backend-neutral, and Reports
//! (whose violation predicates are exported) compare byte-equal across
//! backends. Interval backends pay an encode/decode at the wire; they
//! win it back on the set operations in between.
//!
//! # Selection
//!
//! [`BackendKind`] names a backend (`bdd`, `deltanet`, `intervals`, or
//! `auto`); [`BackendKind::resolve`] implements the `auto` heuristic:
//! interval representations require a destination-prefix-only workload
//! (no port/proto matches, no header rewrites — see
//! [`network_ip_only`]) and pay off once the update stream dominates,
//! so `auto` picks Delta-net for IP-only workloads at or above
//! [`AUTO_RATE_THRESHOLD`] expected updates and falls back to BDDs
//! otherwise.

use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

use tulkun_bdd::serial::PortablePred;
use tulkun_netmodel::fib::{Action, Fib, MatchSpec, Rewrite};
use tulkun_netmodel::network::Network;

mod bdd_backend;
mod deltanet;
mod dynamic;
mod intervals;
pub mod ipset;

pub use bdd_backend::BddBackend;
pub use deltanet::DeltaNetBackend;
pub use dynamic::{DynBackend, DynPred};
pub use intervals::IntervalSetBackend;

/// What a backend can represent. Upstream code checks capabilities
/// before selecting a backend; the builder methods of an unsupported
/// feature panic with a clear message if the check is bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Destination-port and protocol match conditions.
    pub ports: bool,
    /// Header rewrites (image/preimage of a packet set).
    pub rewrites: bool,
}

impl BackendCaps {
    /// Everything the header layout can express.
    pub const FULL: BackendCaps = BackendCaps {
        ports: true,
        rewrites: true,
    };
    /// Destination-prefix-only workloads.
    pub const DST_ONLY: BackendCaps = BackendCaps {
        ports: false,
        rewrites: false,
    };
}

/// The operations the DVM hot path performs on predicates, extracted
/// from what `DeviceVerifier` and the LEC builder actually use.
///
/// A backend owns its whole predicate universe (the analogue of one
/// private `BddManager` per device); `Pred` handles are only meaningful
/// with the backend that produced them. Handle equality must be
/// *complete* set equality — every implementation interns canonical
/// representations, so `a == b` ⇔ same packet set. That is what CIB
/// deduplication and the subscription ledger rely on.
pub trait PredicateBackend {
    /// Handle to one predicate inside this backend.
    type Pred: Copy + Eq + Ord + Hash + fmt::Debug;

    /// The empty set.
    fn falsum(&self) -> Self::Pred;
    /// The full set.
    fn verum(&self) -> Self::Pred;
    /// Set intersection.
    fn and(&mut self, a: Self::Pred, b: Self::Pred) -> Self::Pred;
    /// Set union.
    fn or(&mut self, a: Self::Pred, b: Self::Pred) -> Self::Pred;
    /// Set difference `a \ b`.
    fn diff(&mut self, a: Self::Pred, b: Self::Pred) -> Self::Pred;
    /// Is the predicate the empty set?
    fn is_false(&self, p: Self::Pred) -> bool;
    /// Do the two sets share a packet?
    fn intersects(&mut self, a: Self::Pred, b: Self::Pred) -> bool;

    /// Compiles a FIB match condition (build-from-rule).
    fn match_pred(&mut self, m: &MatchSpec) -> Self::Pred;

    /// Image of a packet set under a destination rewrite: the top
    /// `rw.to.len` bits of the destination are replaced by the prefix
    /// bits. Panics on backends without rewrite capability.
    fn rewrite_image(&mut self, p: Self::Pred, rw: &Rewrite) -> Self::Pred;
    /// Preimage of a downstream packet set under a destination rewrite.
    /// Panics on backends without rewrite capability.
    fn rewrite_preimage(&mut self, q: Self::Pred, rw: &Rewrite) -> Self::Pred;

    /// Decodes a wire predicate into this backend. Panics on malformed
    /// input (wire predicates are produced by `export` and only travel
    /// between trusted verifiers) and on predicates outside the
    /// backend's capabilities.
    fn import(&mut self, p: &PortablePred) -> Self::Pred;
    /// Encodes a predicate into the canonical wire form. The bytes are
    /// a pure function of the packet set — identical across backends
    /// (the wire-format invariant).
    fn export(&self, p: Self::Pred) -> PortablePred;

    /// Memory proxy: BDD nodes, stored intervals, or atoms + list
    /// entries, depending on the representation.
    fn mem_units(&self) -> usize;
    /// What this backend can represent.
    fn caps(&self) -> BackendCaps;
    /// Short stable name (`"bdd"`, `"deltanet"`, `"intervals"`).
    fn name(&self) -> &'static str;
}

/// The **LEC builder** generic over the predicate backend (§5.1):
/// compresses a prioritized table into `(predicate, action)` classes
/// that partition the full packet space; packets matching no rule fall
/// into a `Drop` class, classes with identical actions are merged.
/// Same algorithm and class order as the original
/// `Fib::local_equivalence_classes`.
pub fn lecs<B: PredicateBackend>(fib: &Fib, b: &mut B) -> Vec<(B::Pred, Action)> {
    let full = b.verum();
    lecs_in(fib, full, b)
}

/// Like [`lecs`], restricted to the packets in `region`: returns
/// classes partitioning `region` only. Used for incremental LEC
/// maintenance after a rule update (only the updated rules' match
/// regions can change class).
pub fn lecs_in<B: PredicateBackend>(
    fib: &Fib,
    region: B::Pred,
    b: &mut B,
) -> Vec<(B::Pred, Action)> {
    let mut remaining = region;
    let mut by_action: Vec<(Action, B::Pred)> = Vec::new();
    for rule in fib.rules() {
        if b.is_false(remaining) {
            break;
        }
        let mp = b.match_pred(&rule.matches);
        let eff = b.and(mp, remaining);
        if b.is_false(eff) {
            continue;
        }
        remaining = b.diff(remaining, mp);
        match by_action.iter_mut().find(|(a, _)| *a == rule.action) {
            Some((_, p)) => *p = b.or(*p, eff),
            None => by_action.push((rule.action.clone(), eff)),
        }
    }
    if !b.is_false(remaining) {
        match by_action.iter_mut().find(|(a, _)| *a == Action::Drop) {
            Some((_, p)) => *p = b.or(*p, remaining),
            None => by_action.push((Action::Drop, remaining)),
        }
    }
    by_action.into_iter().map(|(a, p)| (p, a)).collect()
}

/// Expected update rate (updates per replay window) at or above which
/// `auto` prefers the Delta-net representation on IP-only workloads.
/// Below it the one-off encode/decode and atom-boundary setup costs
/// dominate and BDDs stay the safer default.
pub const AUTO_RATE_THRESHOLD: f64 = 8.0;

/// Names a predicate backend (or the `auto` selection policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// ROBDDs (the original representation; full capability).
    #[default]
    Bdd,
    /// Delta-net atoms over the destination space (IP-only workloads).
    DeltaNet,
    /// Canonical disjoint interval sets (IP-only workloads).
    Intervals,
    /// Pick from the workload: Delta-net for IP-only workloads with an
    /// update rate at or above [`AUTO_RATE_THRESHOLD`], BDDs otherwise.
    Auto,
}

impl BackendKind {
    /// All concrete (non-`Auto`) kinds, for matrix tests and benches.
    pub const CONCRETE: [BackendKind; 3] = [
        BackendKind::Bdd,
        BackendKind::DeltaNet,
        BackendKind::Intervals,
    ];

    /// Resolves `Auto` against the observed workload: `ip_only` is
    /// whether the workload needs nothing beyond destination prefixes
    /// (see [`network_ip_only`]); `update_rate_hint` is the expected
    /// number of rule updates in the upcoming window. Concrete kinds
    /// resolve to themselves after validating `ip_only` (an explicitly
    /// chosen interval backend on a port/rewrite workload is a
    /// configuration error and panics here, at build time, rather than
    /// deep inside a rule compile).
    pub fn resolve(self, ip_only: bool, update_rate_hint: f64) -> BackendKind {
        match self {
            BackendKind::Bdd => BackendKind::Bdd,
            BackendKind::DeltaNet | BackendKind::Intervals => {
                assert!(
                    ip_only,
                    "backend {self} supports destination-prefix-only workloads, but this \
                     network uses port/proto matches or header rewrites; use --backend bdd"
                );
                self
            }
            BackendKind::Auto => {
                if ip_only && update_rate_hint >= AUTO_RATE_THRESHOLD {
                    BackendKind::DeltaNet
                } else {
                    BackendKind::Bdd
                }
            }
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Bdd => "bdd",
            BackendKind::DeltaNet => "deltanet",
            BackendKind::Intervals => "intervals",
            BackendKind::Auto => "auto",
        })
    }
}

/// Error from parsing a [`BackendKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?}; expected bdd, deltanet, intervals or auto",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bdd" => Ok(BackendKind::Bdd),
            "deltanet" | "delta-net" => Ok(BackendKind::DeltaNet),
            "intervals" | "intervalset" => Ok(BackendKind::Intervals),
            "auto" => Ok(BackendKind::Auto),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

/// Does a FIB need nothing beyond destination prefixes? (No
/// destination-port or protocol match conditions, no header rewrites.)
pub fn fib_ip_only(fib: &Fib) -> bool {
    fib.rules().iter().all(|r| {
        r.matches.dst_port.is_none()
            && r.matches.proto.is_none()
            && !matches!(
                &r.action,
                Action::Forward {
                    rewrite: Some(_),
                    ..
                }
            )
    })
}

/// Does every device FIB of the network stay within the
/// destination-prefix-only fragment the interval backends cover?
pub fn network_ip_only(net: &Network) -> bool {
    net.topology.devices().all(|d| fib_ip_only(net.fib(d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_displays() {
        for (s, k) in [
            ("bdd", BackendKind::Bdd),
            ("deltanet", BackendKind::DeltaNet),
            ("intervals", BackendKind::Intervals),
            ("auto", BackendKind::Auto),
        ] {
            assert_eq!(s.parse::<BackendKind>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("jdd".parse::<BackendKind>().is_err());
    }

    #[test]
    fn auto_resolution_follows_the_heuristic() {
        assert_eq!(
            BackendKind::Auto.resolve(true, AUTO_RATE_THRESHOLD),
            BackendKind::DeltaNet
        );
        assert_eq!(BackendKind::Auto.resolve(true, 0.0), BackendKind::Bdd);
        assert_eq!(
            BackendKind::Auto.resolve(false, 1e9),
            BackendKind::Bdd,
            "port/rewrite workloads must never auto-select an interval backend"
        );
        assert_eq!(BackendKind::Bdd.resolve(false, 1e9), BackendKind::Bdd);
    }

    #[test]
    #[should_panic(expected = "destination-prefix-only")]
    fn explicit_interval_backend_rejects_rich_workloads() {
        BackendKind::DeltaNet.resolve(false, 100.0);
    }
}
