//! Canonical interval sets over the 32-bit destination space and their
//! conversion to/from the [`PortablePred`] wire encoding.
//!
//! A set of destination addresses is represented as a sorted list of
//! disjoint, non-adjacent half-open intervals `[lo, hi)` with
//! `0 <= lo < hi <= 2^32`. Coalescing adjacent intervals makes the
//! representation canonical: equal sets have equal lists, which the
//! interval backends rely on for complete handle equality.
//!
//! The wire codec is the heart of the backend-neutrality story: the
//! encoder rebuilds the set as an ROBDD in a scratch manager — ROBDD
//! canonicity under the fixed variable order guarantees the exported
//! bytes match what [`crate::BddBackend`] would emit for the same set —
//! and the decoder walks a portable node list back into intervals.

use tulkun_bdd::builder::HeaderLayout;
use tulkun_bdd::serial::{self, PortablePred};
use tulkun_bdd::BddManager;

/// One half-open interval `[lo, hi)` of destination addresses.
pub type Iv = (u64, u64);

/// The full destination space as a single interval.
pub const FULL: Iv = (0, 1 << 32);

/// Set union of two canonical interval lists.
pub fn union(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out: Vec<Iv> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        match out.last_mut() {
            // Overlapping or adjacent: coalesce.
            Some(last) if next.0 <= last.1 => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    out
}

/// Set intersection of two canonical interval lists.
pub fn intersect(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Set difference `a \ b` of two canonical interval lists.
pub fn diff(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let mut out = Vec::new();
    let mut j = 0;
    for &(mut lo, hi) in a {
        while lo < hi {
            // Skip b-intervals entirely before the remaining piece.
            while j < b.len() && b[j].1 <= lo {
                j += 1;
            }
            match b.get(j) {
                Some(&(blo, bhi)) if blo < hi => {
                    if lo < blo {
                        out.push((lo, blo));
                    }
                    lo = bhi.max(lo);
                }
                _ => {
                    out.push((lo, hi));
                    lo = hi;
                }
            }
        }
        // The next a-interval may start before b[j] ends; j never needs
        // to move backwards because a is sorted and we only advanced j
        // past b-intervals ending at or before the current position.
    }
    out
}

/// Do the two canonical interval lists share an address?
pub fn overlaps(a: &[Iv], b: &[Iv]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0.max(b[j].0) < a[i].1.min(b[j].1) {
            return true;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// The addresses of a destination prefix as one interval (`None` for a
/// zero-length prefix covering everything — callers treat it as
/// [`FULL`]).
pub fn prefix_iv(addr: u32, len: u8) -> Iv {
    assert!(len <= 32);
    let span = 1u64 << (32 - len as u64);
    let lo = (addr as u64) & !(span - 1);
    (lo, lo + span)
}

/// Encodes a canonical interval list as the ROBDD wire predicate.
///
/// Builds the set in a private scratch manager and exports it; ROBDD
/// canonicity (one reduced DAG per boolean function under a fixed
/// variable order) plus the deterministic post-order serialization make
/// the resulting bytes identical to a [`crate::BddBackend`] export of
/// the same set, whatever sequence of operations produced it there.
pub fn to_portable(ivs: &[Iv], layout: &HeaderLayout) -> PortablePred {
    let mut m = BddManager::new(layout.num_vars());
    let mut acc = m.falsum();
    for &(lo, hi) in ivs {
        let p = layout.dst_ip.range(&mut m, lo, hi - 1);
        acc = m.or(acc, p);
    }
    serial::export(&m, acc)
}

/// Decodes a wire predicate into a canonical interval list.
///
/// Walks the children-first node list bottom-up; a node at variable `v`
/// denotes a subset of the `2^(32-v)` suffixes below it, and skipped
/// variables are don't-cares handled by doubling (`S ∪ (S + width)`),
/// which coalesces back into one interval whenever `S` spans its whole
/// suffix space. Panics if the predicate constrains any variable
/// outside the destination field — interval backends only cover the
/// destination-prefix-only fragment.
pub fn from_portable(p: &PortablePred) -> Vec<Iv> {
    // (var, set-over-[0, 2^(32-var))) per local node; terminals pinned.
    let mut solved: Vec<(u32, Vec<Iv>)> = Vec::with_capacity(p.len() + 2);
    solved.push((32, Vec::new())); // local 0 = FALSE
    solved.push((32, vec![(0, 1)])); // local 1 = TRUE
    for &(var, lo, hi) in p.nodes() {
        assert!(
            var < 32,
            "predicate constrains variable {var} outside the destination field; \
             interval backends support destination-prefix-only workloads"
        );
        let lo_set = lift(&solved[lo as usize].1, solved[lo as usize].0, var + 1);
        let mut hi_set = lift(&solved[hi as usize].1, solved[hi as usize].0, var + 1);
        // Variable `var` is the MSB of the remaining suffix space: the
        // hi child covers the upper half.
        let half = 1u64 << (31 - var as u64);
        for iv in &mut hi_set {
            iv.0 += half;
            iv.1 += half;
        }
        solved.push((var, union(&lo_set, &hi_set)));
    }
    let root = p.root() as usize;
    let (var, set) = &solved[root];
    lift(set, *var, 0)
}

/// Expands a set over the suffix space below `from_var` into the suffix
/// space below `to_var <= from_var` by replicating across the skipped
/// don't-care variables.
fn lift(set: &[Iv], from_var: u32, to_var: u32) -> Vec<Iv> {
    let mut out = set.to_vec();
    let mut width = 1u64 << (32 - from_var as u64);
    for _ in to_var..from_var {
        let shifted: Vec<Iv> = out
            .iter()
            .map(|&(lo, hi)| (lo + width, hi + width))
            .collect();
        out = union(&out, &shifted);
        width <<= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_ops_are_canonical() {
        let a = vec![(0u64, 10u64), (20, 30)];
        let b = vec![(10u64, 20u64)];
        // Union coalesces adjacency into one canonical interval.
        assert_eq!(union(&a, &b), vec![(0, 30)]);
        assert_eq!(intersect(&a, &b), Vec::<Iv>::new());
        assert_eq!(diff(&a, &b), a);
        assert_eq!(diff(&[(0, 30)], &b), vec![(0, 10), (20, 30)]);
        assert!(!overlaps(&a, &b));
        assert!(overlaps(&a, &[(25, 26)]));
        assert_eq!(diff(&[(0, 100)], &[(0, 100)]), Vec::<Iv>::new());
    }

    #[test]
    fn diff_with_many_holes() {
        let a = vec![(0u64, 100u64)];
        let b = vec![(10u64, 20u64), (30, 40), (99, 100)];
        assert_eq!(diff(&a, &b), vec![(0, 10), (20, 30), (40, 99)]);
        // Later a-intervals re-overlapping earlier b-intervals.
        let d = diff(&[(5, 15), (35, 50)], &b);
        assert_eq!(d, vec![(5, 10), (40, 50)]);
    }

    #[test]
    fn prefix_interval() {
        assert_eq!(prefix_iv(0x0a000000, 8), (0x0a000000, 0x0b000000));
        assert_eq!(prefix_iv(0xffffffff, 32), (0xffffffff, 0x100000000));
        assert_eq!(prefix_iv(0, 0), FULL);
    }

    #[test]
    fn portable_round_trip() {
        let layout = HeaderLayout::ipv4_tcp();
        let cases: Vec<Vec<Iv>> = vec![
            vec![],
            vec![FULL],
            vec![prefix_iv(0x0a000000, 23)],
            vec![(3, 17), (1u64 << 31, (1u64 << 31) + 1000)],
            vec![(0, 1), (0xfffffffe, 0x100000000)],
        ];
        for ivs in cases {
            let enc = to_portable(&ivs, &layout);
            assert_eq!(from_portable(&enc), ivs, "round trip of {ivs:?}");
        }
    }

    #[test]
    fn portable_matches_bdd_build() {
        // The encoder must produce byte-identical output to a native
        // BDD build of the same set, whatever the operation order.
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let a = layout.dst_prefix(&mut m, [10, 0, 1, 0], 24);
        let b = layout.dst_prefix(&mut m, [10, 0, 0, 0], 23);
        let c = layout.dst_prefix(&mut m, [192, 168, 0, 0], 16);
        let ab = m.or(b, c);
        let p = m.diff(ab, a);
        let native = serial::export(&m, p);
        let ivs = from_portable(&native);
        assert_eq!(to_portable(&ivs, &layout), native);
    }

    #[test]
    #[should_panic(expected = "destination-prefix-only")]
    fn decoder_rejects_port_predicates() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        let p = layout.dst_port_eq(&mut m, 80);
        from_portable(&serial::export(&m, p));
    }
}
