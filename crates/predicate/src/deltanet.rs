//! Delta-net-style predicate backend.
//!
//! Maintains one global, splittable partition of the destination space
//! into *atoms* — maximal address ranges not split by any boundary seen
//! so far — and represents every predicate as an interned sorted list
//! of atom ids. Set algebra is then plain sorted-list merging with no
//! interval arithmetic at all, which is Delta-net's core claim: once
//! the boundary set stabilises (steady-state churn over a stable prefix
//! population), updates never split atoms and the hot path touches only
//! small id lists.
//!
//! Inserting a new boundary splits one atom and renumbers the ones
//! after it; all interned predicates are remapped in place, so handles
//! held by the verifier stay valid (handle 0 stays the empty set,
//! handle 1 the full space). Like [`crate::IntervalSetBackend`] this
//! backend is destination-prefix-only.

use std::cell::RefCell;
use std::collections::HashMap;

use tulkun_bdd::builder::HeaderLayout;
use tulkun_bdd::serial::PortablePred;
use tulkun_netmodel::fib::{MatchSpec, Rewrite};

use crate::ipset::{self, Iv};
use crate::{BackendCaps, PredicateBackend};

/// Interned handle to a sorted atom-id list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnPred(pub(crate) u32);

/// Predicate backend over a splittable global atom partition.
pub struct DeltaNetBackend {
    layout: HeaderLayout,
    /// Sorted boundary array from 0 to 2^32; atom `k` spans
    /// `[bounds[k], bounds[k + 1])`.
    bounds: Vec<u64>,
    /// Interned sorted atom-id lists; id 0 = empty, id 1 = all atoms.
    sets: Vec<Vec<u32>>,
    intern: HashMap<Vec<u32>, u32>,
    /// Atom splits performed since construction (boundary insertions).
    splits: u64,
    // Wire encoding rebuilds the canonical ROBDD in a scratch manager,
    // which dominates the per-message cost. A handle's concrete set
    // survives atom splits (remapping preserves meaning), so exports
    // memoize per handle and imports per wire predicate. Wire bytes
    // are a pure function of the concrete set, so an import seeds the
    // export cache.
    exports: RefCell<HashMap<u32, PortablePred>>,
    imports: HashMap<PortablePred, u32>,
}

impl DeltaNetBackend {
    /// Fresh backend with the single whole-space atom.
    pub fn new(layout: HeaderLayout) -> Self {
        let mut be = DeltaNetBackend {
            layout,
            bounds: vec![0, 1 << 32],
            sets: Vec::new(),
            intern: HashMap::new(),
            splits: 0,
            exports: RefCell::new(HashMap::new()),
            imports: HashMap::new(),
        };
        be.intern(Vec::new());
        be.intern(vec![0]);
        be
    }

    /// The header layout used for wire encoding.
    pub fn layout(&self) -> &HeaderLayout {
        &self.layout
    }

    /// Number of atoms in the current partition.
    pub fn atom_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Atom splits performed so far (zero in steady state).
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    fn intern(&mut self, set: Vec<u32>) -> DnPred {
        if let Some(&id) = self.intern.get(&set) {
            return DnPred(id);
        }
        let id = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.intern.insert(set, id);
        DnPred(id)
    }

    fn set(&self, p: DnPred) -> &[u32] {
        &self.sets[p.0 as usize]
    }

    /// Ensures `b` is a boundary, splitting the atom containing it and
    /// remapping every interned predicate if it is new.
    fn ensure_bound(&mut self, b: u64) {
        debug_assert!(b <= 1 << 32);
        let pos = match self.bounds.binary_search(&b) {
            Ok(_) => return,
            Err(pos) => pos,
        };
        // Atom `pos - 1` splits into `pos - 1` and `pos`; atoms at or
        // after `pos` shift up by one.
        self.bounds.insert(pos, b);
        self.splits += 1;
        let split = (pos - 1) as u32;
        for set in &mut self.sets {
            let mut remapped = Vec::with_capacity(set.len() + 1);
            for &id in set.iter() {
                if id < split {
                    remapped.push(id);
                } else if id == split {
                    remapped.push(split);
                    remapped.push(split + 1);
                } else {
                    remapped.push(id + 1);
                }
            }
            *set = remapped;
        }
        self.intern = self
            .sets
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }

    /// Atom ids covering `[lo, hi)` exactly (both must be boundaries).
    fn atoms_in(&self, lo: u64, hi: u64) -> Vec<u32> {
        let a = self.bounds.binary_search(&lo).expect("lo is a boundary");
        let b = self.bounds.binary_search(&hi).expect("hi is a boundary");
        (a as u32..b as u32).collect()
    }

    fn intervals_to_atoms(&mut self, ivs: &[Iv]) -> Vec<u32> {
        for &(lo, hi) in ivs {
            self.ensure_bound(lo);
            self.ensure_bound(hi);
        }
        let mut out = Vec::new();
        for &(lo, hi) in ivs {
            out.extend(self.atoms_in(lo, hi));
        }
        // Canonical interval lists are sorted and disjoint, so the atom
        // runs are already in ascending order.
        out
    }

    fn atoms_to_intervals(&self, set: &[u32]) -> Vec<Iv> {
        let mut out: Vec<Iv> = Vec::new();
        for &id in set {
            let lo = self.bounds[id as usize];
            let hi = self.bounds[id as usize + 1];
            match out.last_mut() {
                Some(last) if last.1 == lo => last.1 = hi,
                _ => out.push((lo, hi)),
            }
        }
        out
    }
}

/// Sorted-list set operations over atom ids.
fn merge_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if i < a.len() && j < b.len() && a[i] == b[j] {
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        out.push(next);
    }
    out
}

fn merge_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

fn merge_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        while j < b.len() && b[j] < a[i] {
            j += 1;
        }
        if j < b.len() && b[j] == a[i] {
            i += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out
}

fn sorted_overlap(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    false
}

impl PredicateBackend for DeltaNetBackend {
    type Pred = DnPred;

    fn falsum(&self) -> DnPred {
        DnPred(0)
    }

    fn verum(&self) -> DnPred {
        DnPred(1)
    }

    fn and(&mut self, a: DnPred, b: DnPred) -> DnPred {
        if a == b {
            return a;
        }
        if a == self.verum() {
            return b;
        }
        if b == self.verum() {
            return a;
        }
        let r = merge_intersect(self.set(a), self.set(b));
        self.intern(r)
    }

    fn or(&mut self, a: DnPred, b: DnPred) -> DnPred {
        if a == b {
            return a;
        }
        let r = merge_union(self.set(a), self.set(b));
        self.intern(r)
    }

    fn diff(&mut self, a: DnPred, b: DnPred) -> DnPred {
        if a == b {
            return DnPred(0);
        }
        let r = merge_diff(self.set(a), self.set(b));
        self.intern(r)
    }

    fn is_false(&self, p: DnPred) -> bool {
        p.0 == 0
    }

    fn intersects(&mut self, a: DnPred, b: DnPred) -> bool {
        sorted_overlap(self.set(a), self.set(b))
    }

    fn match_pred(&mut self, m: &MatchSpec) -> DnPred {
        assert!(
            m.dst_port.is_none() && m.proto.is_none(),
            "delta-net backend supports destination-prefix-only workloads \
             (got a port/proto match); use --backend bdd"
        );
        let iv = ipset::prefix_iv(m.dst.addr, m.dst.len);
        let atoms = self.intervals_to_atoms(&[iv]);
        self.intern(atoms)
    }

    fn rewrite_image(&mut self, _p: DnPred, _rw: &Rewrite) -> DnPred {
        panic!(
            "delta-net backend supports destination-prefix-only workloads \
             (got a rewrite action); use --backend bdd"
        );
    }

    fn rewrite_preimage(&mut self, _q: DnPred, _rw: &Rewrite) -> DnPred {
        panic!(
            "delta-net backend supports destination-prefix-only workloads \
             (got a rewrite action); use --backend bdd"
        );
    }

    fn import(&mut self, p: &PortablePred) -> DnPred {
        if let Some(&id) = self.imports.get(p) {
            return DnPred(id);
        }
        let ivs = ipset::from_portable(p);
        let atoms = self.intervals_to_atoms(&ivs);
        let h = self.intern(atoms);
        self.imports.insert(p.clone(), h.0);
        self.exports
            .borrow_mut()
            .entry(h.0)
            .or_insert_with(|| p.clone());
        h
    }

    fn export(&self, p: DnPred) -> PortablePred {
        self.exports
            .borrow_mut()
            .entry(p.0)
            .or_insert_with(|| {
                ipset::to_portable(&self.atoms_to_intervals(self.set(p)), &self.layout)
            })
            .clone()
    }

    fn mem_units(&self) -> usize {
        self.bounds.len() + self.sets.iter().map(Vec::len).sum::<usize>()
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps::DST_ONLY
    }

    fn name(&self) -> &'static str {
        "deltanet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::prefix::IpPrefix;

    fn dst(addr: u32, len: u8) -> MatchSpec {
        MatchSpec::dst(IpPrefix::new(addr, len))
    }

    #[test]
    fn splits_remap_existing_handles() {
        let mut be = DeltaNetBackend::new(HeaderLayout::ipv4_tcp());
        let a = be.match_pred(&dst(0x0a000000, 8)); // 10/8
        let full = be.verum();
        // Overlapping narrower prefix splits 10/8's atom; `a` and the
        // full-space handle must still denote the same address sets.
        let b = be.match_pred(&dst(0x0a000000, 9)); // 10.0/9
        assert!(be.split_count() > 0);
        assert_eq!(be.and(a, b), b, "10.0/9 is inside 10/8");
        assert_eq!(
            be.atoms_to_intervals(be.set(a)),
            vec![(0x0a000000, 0x0b000000)]
        );
        assert_eq!(be.atoms_to_intervals(be.set(full)), vec![ipset::FULL]);
        let rest = be.diff(full, a);
        assert_eq!(be.or(rest, a), full);
    }

    #[test]
    fn steady_state_has_no_splits() {
        let mut be = DeltaNetBackend::new(HeaderLayout::ipv4_tcp());
        for i in 0..16u32 {
            be.match_pred(&dst(i << 24, 8));
        }
        let after_warmup = be.split_count();
        // Re-announcing the same prefix population: pure list algebra.
        for i in 0..16u32 {
            let p = be.match_pred(&dst(i << 24, 8));
            let q = be.match_pred(&dst(((i + 1) % 16) << 24, 8));
            let u = be.or(p, q);
            let d = be.diff(u, q);
            assert!(!be.is_false(d));
        }
        assert_eq!(be.split_count(), after_warmup);
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let mut be = DeltaNetBackend::new(HeaderLayout::ipv4_tcp());
        let a = be.match_pred(&dst(0xc0a80000, 16));
        let b = be.match_pred(&dst(0x0a000000, 23));
        let u = be.or(a, b);
        let enc = be.export(u);
        assert_eq!(be.import(&enc), u);
    }
}
