//! Runtime backend selection.
//!
//! [`DynBackend`] wraps the three concrete backends behind one type so
//! the verifier substrates can pick an encoding per run (CLI flag,
//! config, or the auto heuristic) without monomorphising the whole
//! engine three times. Handles are erased to a plain `u32`
//! ([`DynPred`]); every concrete backend's handle is a `u32` underneath
//! and keeps its canonicity, so erased handle equality still means set
//! equality within one backend instance.

use tulkun_bdd::builder::HeaderLayout;
use tulkun_bdd::serial::PortablePred;
use tulkun_bdd::Pred;
use tulkun_netmodel::fib::{MatchSpec, Rewrite};

use crate::{
    BackendCaps, BackendKind, BddBackend, DeltaNetBackend, IntervalSetBackend, PredicateBackend,
};

/// Erased predicate handle for [`DynBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DynPred(u32);

/// A concrete backend chosen at runtime.
pub enum DynBackend {
    /// Full-header ROBDD backend (the default).
    Bdd(BddBackend),
    /// Delta-net atom partition (destination-prefix-only).
    DeltaNet(DeltaNetBackend),
    /// Canonical interval sets (destination-prefix-only).
    Intervals(IntervalSetBackend),
}

impl DynBackend {
    /// Instantiates the backend for a resolved, concrete kind.
    ///
    /// Panics on [`BackendKind::Auto`]: callers resolve it first via
    /// [`BackendKind::resolve`] with workload facts in hand.
    pub fn new(kind: BackendKind, layout: HeaderLayout) -> Self {
        match kind {
            BackendKind::Bdd => DynBackend::Bdd(BddBackend::new(layout)),
            BackendKind::DeltaNet => DynBackend::DeltaNet(DeltaNetBackend::new(layout)),
            BackendKind::Intervals => DynBackend::Intervals(IntervalSetBackend::new(layout)),
            BackendKind::Auto => panic!("resolve BackendKind::Auto before constructing a backend"),
        }
    }

    /// The kind of the wrapped backend.
    pub fn kind(&self) -> BackendKind {
        match self {
            DynBackend::Bdd(_) => BackendKind::Bdd,
            DynBackend::DeltaNet(_) => BackendKind::DeltaNet,
            DynBackend::Intervals(_) => BackendKind::Intervals,
        }
    }

    /// The header layout the wrapped backend encodes.
    pub fn layout(&self) -> &HeaderLayout {
        match self {
            DynBackend::Bdd(b) => b.layout(),
            DynBackend::DeltaNet(b) => b.layout(),
            DynBackend::Intervals(b) => b.layout(),
        }
    }
}

impl From<Pred> for DynPred {
    fn from(p: Pred) -> DynPred {
        DynPred(p.index())
    }
}

impl PredicateBackend for DynBackend {
    type Pred = DynPred;

    fn falsum(&self) -> DynPred {
        match self {
            DynBackend::Bdd(b) => b.falsum().into(),
            DynBackend::DeltaNet(b) => DynPred(b.falsum().0),
            DynBackend::Intervals(b) => DynPred(b.falsum().0),
        }
    }

    fn verum(&self) -> DynPred {
        match self {
            DynBackend::Bdd(b) => b.verum().into(),
            DynBackend::DeltaNet(b) => DynPred(b.verum().0),
            DynBackend::Intervals(b) => DynPred(b.verum().0),
        }
    }

    fn and(&mut self, a: DynPred, b: DynPred) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.and(Pred::from_index(a.0), Pred::from_index(b.0)).into(),
            DynBackend::DeltaNet(be) => DynPred(
                be.and(super::deltanet::DnPred(a.0), super::deltanet::DnPred(b.0))
                    .0,
            ),
            DynBackend::Intervals(be) => DynPred(
                be.and(super::intervals::IvPred(a.0), super::intervals::IvPred(b.0))
                    .0,
            ),
        }
    }

    fn or(&mut self, a: DynPred, b: DynPred) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.or(Pred::from_index(a.0), Pred::from_index(b.0)).into(),
            DynBackend::DeltaNet(be) => DynPred(
                be.or(super::deltanet::DnPred(a.0), super::deltanet::DnPred(b.0))
                    .0,
            ),
            DynBackend::Intervals(be) => DynPred(
                be.or(super::intervals::IvPred(a.0), super::intervals::IvPred(b.0))
                    .0,
            ),
        }
    }

    fn diff(&mut self, a: DynPred, b: DynPred) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.diff(Pred::from_index(a.0), Pred::from_index(b.0)).into(),
            DynBackend::DeltaNet(be) => DynPred(
                be.diff(super::deltanet::DnPred(a.0), super::deltanet::DnPred(b.0))
                    .0,
            ),
            DynBackend::Intervals(be) => DynPred(
                be.diff(super::intervals::IvPred(a.0), super::intervals::IvPred(b.0))
                    .0,
            ),
        }
    }

    fn is_false(&self, p: DynPred) -> bool {
        match self {
            DynBackend::Bdd(be) => be.is_false(Pred::from_index(p.0)),
            DynBackend::DeltaNet(be) => be.is_false(super::deltanet::DnPred(p.0)),
            DynBackend::Intervals(be) => be.is_false(super::intervals::IvPred(p.0)),
        }
    }

    fn intersects(&mut self, a: DynPred, b: DynPred) -> bool {
        match self {
            DynBackend::Bdd(be) => be.intersects(Pred::from_index(a.0), Pred::from_index(b.0)),
            DynBackend::DeltaNet(be) => {
                be.intersects(super::deltanet::DnPred(a.0), super::deltanet::DnPred(b.0))
            }
            DynBackend::Intervals(be) => {
                be.intersects(super::intervals::IvPred(a.0), super::intervals::IvPred(b.0))
            }
        }
    }

    fn match_pred(&mut self, m: &MatchSpec) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.match_pred(m).into(),
            DynBackend::DeltaNet(be) => DynPred(be.match_pred(m).0),
            DynBackend::Intervals(be) => DynPred(be.match_pred(m).0),
        }
    }

    fn rewrite_image(&mut self, p: DynPred, rw: &Rewrite) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.rewrite_image(Pred::from_index(p.0), rw).into(),
            DynBackend::DeltaNet(be) => {
                DynPred(be.rewrite_image(super::deltanet::DnPred(p.0), rw).0)
            }
            DynBackend::Intervals(be) => {
                DynPred(be.rewrite_image(super::intervals::IvPred(p.0), rw).0)
            }
        }
    }

    fn rewrite_preimage(&mut self, q: DynPred, rw: &Rewrite) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.rewrite_preimage(Pred::from_index(q.0), rw).into(),
            DynBackend::DeltaNet(be) => {
                DynPred(be.rewrite_preimage(super::deltanet::DnPred(q.0), rw).0)
            }
            DynBackend::Intervals(be) => {
                DynPred(be.rewrite_preimage(super::intervals::IvPred(q.0), rw).0)
            }
        }
    }

    fn import(&mut self, p: &PortablePred) -> DynPred {
        match self {
            DynBackend::Bdd(be) => be.import(p).into(),
            DynBackend::DeltaNet(be) => DynPred(be.import(p).0),
            DynBackend::Intervals(be) => DynPred(be.import(p).0),
        }
    }

    fn export(&self, p: DynPred) -> PortablePred {
        match self {
            DynBackend::Bdd(be) => be.export(Pred::from_index(p.0)),
            DynBackend::DeltaNet(be) => be.export(super::deltanet::DnPred(p.0)),
            DynBackend::Intervals(be) => be.export(super::intervals::IvPred(p.0)),
        }
    }

    fn mem_units(&self) -> usize {
        match self {
            DynBackend::Bdd(be) => be.mem_units(),
            DynBackend::DeltaNet(be) => be.mem_units(),
            DynBackend::Intervals(be) => be.mem_units(),
        }
    }

    fn caps(&self) -> BackendCaps {
        match self {
            DynBackend::Bdd(be) => be.caps(),
            DynBackend::DeltaNet(be) => be.caps(),
            DynBackend::Intervals(be) => be.caps(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DynBackend::Bdd(be) => be.name(),
            DynBackend::DeltaNet(be) => be.name(),
            DynBackend::Intervals(be) => be.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::prefix::IpPrefix;

    #[test]
    fn all_kinds_agree_on_wire_bytes() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut encs = Vec::new();
        for kind in BackendKind::CONCRETE {
            let mut be = DynBackend::new(kind, layout);
            let a = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a000000, 8)));
            let b = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a004200, 24)));
            let d = be.diff(a, b);
            encs.push((kind, be.export(d)));
        }
        let (_, reference) = &encs[0];
        for (kind, enc) in &encs {
            assert_eq!(enc, reference, "{kind} disagrees with bdd wire bytes");
        }
    }
}
