//! Interval-set predicate backend.
//!
//! Represents each predicate as a canonical sorted list of disjoint,
//! non-adjacent half-open address intervals (the encoding of the
//! IntervalSet/veriflow-style baselines, promoted to a first-class
//! on-device backend). Handles are interned list ids, so handle
//! equality is set equality — exactly what the CIB dedup paths need.
//!
//! Destination-prefix-only: matches on ports or protocol, and rewrite
//! image/preimage, panic. [`crate::BackendKind::resolve`] refuses to
//! select this backend for workloads outside that fragment.

use std::cell::RefCell;
use std::collections::HashMap;

use tulkun_bdd::builder::HeaderLayout;
use tulkun_bdd::serial::PortablePred;
use tulkun_netmodel::fib::{MatchSpec, Rewrite};

use crate::ipset::{self, Iv};
use crate::{BackendCaps, PredicateBackend};

/// Interned handle to a canonical interval list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IvPred(pub(crate) u32);

/// Predicate backend over canonical destination-interval sets.
pub struct IntervalSetBackend {
    layout: HeaderLayout,
    sets: Vec<Vec<Iv>>,
    intern: HashMap<Vec<Iv>, u32>,
    // Wire encoding rebuilds the canonical ROBDD in a scratch manager,
    // which dominates the per-message cost; handles are interned (one
    // id per concrete set, forever), so exports memoize per handle and
    // imports per wire predicate. Wire bytes are a pure function of
    // the concrete set, so an import seeds the export cache.
    exports: RefCell<HashMap<u32, PortablePred>>,
    imports: HashMap<PortablePred, u32>,
}

impl IntervalSetBackend {
    /// Fresh backend; handle 0 is the empty set, handle 1 the full
    /// destination space.
    pub fn new(layout: HeaderLayout) -> Self {
        let mut be = IntervalSetBackend {
            layout,
            sets: Vec::new(),
            intern: HashMap::new(),
            exports: RefCell::new(HashMap::new()),
            imports: HashMap::new(),
        };
        be.intern(Vec::new());
        be.intern(vec![ipset::FULL]);
        be
    }

    /// The header layout used for wire encoding.
    pub fn layout(&self) -> &HeaderLayout {
        &self.layout
    }

    fn intern(&mut self, set: Vec<Iv>) -> IvPred {
        if let Some(&id) = self.intern.get(&set) {
            return IvPred(id);
        }
        let id = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.intern.insert(set, id);
        IvPred(id)
    }

    fn set(&self, p: IvPred) -> &[Iv] {
        &self.sets[p.0 as usize]
    }
}

impl PredicateBackend for IntervalSetBackend {
    type Pred = IvPred;

    fn falsum(&self) -> IvPred {
        IvPred(0)
    }

    fn verum(&self) -> IvPred {
        IvPred(1)
    }

    fn and(&mut self, a: IvPred, b: IvPred) -> IvPred {
        if a == b {
            return a;
        }
        let r = ipset::intersect(self.set(a), self.set(b));
        self.intern(r)
    }

    fn or(&mut self, a: IvPred, b: IvPred) -> IvPred {
        if a == b {
            return a;
        }
        let r = ipset::union(self.set(a), self.set(b));
        self.intern(r)
    }

    fn diff(&mut self, a: IvPred, b: IvPred) -> IvPred {
        if a == b {
            return IvPred(0);
        }
        let r = ipset::diff(self.set(a), self.set(b));
        self.intern(r)
    }

    fn is_false(&self, p: IvPred) -> bool {
        p.0 == 0
    }

    fn intersects(&mut self, a: IvPred, b: IvPred) -> bool {
        ipset::overlaps(self.set(a), self.set(b))
    }

    fn match_pred(&mut self, m: &MatchSpec) -> IvPred {
        assert!(
            m.dst_port.is_none() && m.proto.is_none(),
            "interval backend supports destination-prefix-only workloads \
             (got a port/proto match); use --backend bdd"
        );
        let iv = ipset::prefix_iv(m.dst.addr, m.dst.len);
        self.intern(vec![iv])
    }

    fn rewrite_image(&mut self, _p: IvPred, _rw: &Rewrite) -> IvPred {
        panic!(
            "interval backend supports destination-prefix-only workloads \
             (got a rewrite action); use --backend bdd"
        );
    }

    fn rewrite_preimage(&mut self, _q: IvPred, _rw: &Rewrite) -> IvPred {
        panic!(
            "interval backend supports destination-prefix-only workloads \
             (got a rewrite action); use --backend bdd"
        );
    }

    fn import(&mut self, p: &PortablePred) -> IvPred {
        if let Some(&id) = self.imports.get(p) {
            return IvPred(id);
        }
        let set = ipset::from_portable(p);
        let h = self.intern(set);
        self.imports.insert(p.clone(), h.0);
        self.exports
            .borrow_mut()
            .entry(h.0)
            .or_insert_with(|| p.clone());
        h
    }

    fn export(&self, p: IvPred) -> PortablePred {
        self.exports
            .borrow_mut()
            .entry(p.0)
            .or_insert_with(|| ipset::to_portable(self.set(p), &self.layout))
            .clone()
    }

    fn mem_units(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps::DST_ONLY
    }

    fn name(&self) -> &'static str {
        "intervals"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::prefix::IpPrefix;

    #[test]
    fn handles_are_canonical() {
        let mut be = IntervalSetBackend::new(HeaderLayout::ipv4_tcp());
        let a = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a000000, 8)));
        let b = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a000000, 9)));
        let c = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a800000, 9)));
        // Two halves re-union to the parent prefix: same interned id.
        assert_eq!(be.or(b, c), a);
        // Everything minus everything is the canonical empty handle.
        assert_eq!(be.diff(a, a), be.falsum());
        let rest = be.diff(be.verum(), a);
        assert!(!be.intersects(rest, a));
        assert_eq!(be.or(rest, a), be.verum());
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let mut be = IntervalSetBackend::new(HeaderLayout::ipv4_tcp());
        let a = be.match_pred(&MatchSpec::dst(IpPrefix::new(0xc0a80000, 16)));
        let b = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a000000, 23)));
        let u = be.or(a, b);
        let enc = be.export(u);
        assert_eq!(be.import(&enc), u);
    }

    #[test]
    #[should_panic(expected = "destination-prefix-only")]
    fn rejects_port_matches() {
        let mut be = IntervalSetBackend::new(HeaderLayout::ipv4_tcp());
        let mut m = MatchSpec::dst(IpPrefix::new(0, 0));
        m.dst_port = Some((80, 80));
        be.match_pred(&m);
    }
}
