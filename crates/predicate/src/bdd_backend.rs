//! The reference backend: a private ROBDD manager per verifier, exactly
//! the representation the on-device hot path used before it became
//! generic. Supports the full header space (ports, protocol, rewrites).

use tulkun_bdd::builder::HeaderLayout;
use tulkun_bdd::serial::{self, PortablePred};
use tulkun_bdd::{BddManager, Pred};
use tulkun_netmodel::fib::{MatchSpec, Rewrite};

use crate::{BackendCaps, PredicateBackend};

/// ROBDD predicate backend over a private [`BddManager`].
pub struct BddBackend {
    layout: HeaderLayout,
    mgr: BddManager,
}

impl BddBackend {
    /// Creates a fresh manager sized for `layout`.
    pub fn new(layout: HeaderLayout) -> Self {
        let mgr = BddManager::new(layout.num_vars());
        BddBackend { layout, mgr }
    }

    /// The header layout this backend encodes.
    pub fn layout(&self) -> &HeaderLayout {
        &self.layout
    }

    /// Direct access to the underlying manager, for callers that need
    /// BDD-only operations (model enumeration, sat counting).
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// Mutable access to the underlying manager.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.mgr
    }
}

impl PredicateBackend for BddBackend {
    type Pred = Pred;

    fn falsum(&self) -> Pred {
        Pred::FALSE
    }

    fn verum(&self) -> Pred {
        Pred::TRUE
    }

    fn and(&mut self, a: Pred, b: Pred) -> Pred {
        self.mgr.and(a, b)
    }

    fn or(&mut self, a: Pred, b: Pred) -> Pred {
        self.mgr.or(a, b)
    }

    fn diff(&mut self, a: Pred, b: Pred) -> Pred {
        self.mgr.diff(a, b)
    }

    fn is_false(&self, p: Pred) -> bool {
        self.mgr.is_false(p)
    }

    fn intersects(&mut self, a: Pred, b: Pred) -> bool {
        self.mgr.intersects(a, b)
    }

    fn match_pred(&mut self, m: &MatchSpec) -> Pred {
        m.to_pred(&mut self.mgr, &self.layout)
    }

    fn rewrite_image(&mut self, p: Pred, rw: &Rewrite) -> Pred {
        let off = self.layout.dst_ip.offset;
        let len = rw.to.len as u32;
        let e = self.mgr.exists_range(p, off, off + len);
        let pref = self
            .layout
            .dst_ip
            .prefix(&mut self.mgr, rw.to.addr as u64, len);
        self.mgr.and(e, pref)
    }

    fn rewrite_preimage(&mut self, q: Pred, rw: &Rewrite) -> Pred {
        let off = self.layout.dst_ip.offset;
        let len = rw.to.len as u32;
        let pref = self
            .layout
            .dst_ip
            .prefix(&mut self.mgr, rw.to.addr as u64, len);
        let qq = self.mgr.and(q, pref);
        self.mgr.exists_range(qq, off, off + len)
    }

    fn import(&mut self, p: &PortablePred) -> Pred {
        serial::import(&mut self.mgr, p).expect("malformed portable predicate")
    }

    fn export(&self, p: Pred) -> PortablePred {
        serial::export(&self.mgr, p)
    }

    fn mem_units(&self) -> usize {
        self.mgr.node_count()
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps::FULL
    }

    fn name(&self) -> &'static str {
        "bdd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::prefix::IpPrefix;

    #[test]
    fn wire_round_trip_is_identity() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut be = BddBackend::new(layout);
        let m = MatchSpec::dst(IpPrefix::new(0x0a000000, 9));
        let p = be.match_pred(&m);
        let enc = be.export(p);
        assert_eq!(be.import(&enc), p);
    }

    #[test]
    fn rewrite_image_lands_in_target_prefix() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut be = BddBackend::new(layout);
        let src = be.match_pred(&MatchSpec::dst(IpPrefix::new(0xac100000, 12)));
        let rw = Rewrite {
            to: IpPrefix::new(0x0a090000, 16),
        };
        let img = be.rewrite_image(src, &rw);
        let target = be.match_pred(&MatchSpec::dst(IpPrefix::new(0x0a090000, 16)));
        assert_eq!(be.and(img, target), img);
        let back = be.rewrite_preimage(img, &rw);
        let overlap = be.and(back, src);
        assert_eq!(overlap, src);
    }
}
