//! Algebraic properties of the counting operators (§4.2): ⊗ and ⊕ form
//! the structure the distributed decomposition relies on, and the
//! Proposition-1 reductions must preserve every verdict.

use proptest::prelude::*;
use tulkun_core::count::{CountExpr, Counts, ReduceMode};

fn counts_strategy() -> impl Strategy<Value = Counts> {
    proptest::collection::btree_set(0u32..6, 1..4).prop_map(Counts::scalars)
}

fn expr_strategy() -> impl Strategy<Value = CountExpr> {
    (0u32..4, 0u32..5).prop_map(|(k, n)| match k {
        0 => CountExpr::Ge(n),
        1 => CountExpr::Gt(n),
        2 => CountExpr::Le(n),
        _ => CountExpr::Eq(n),
    })
}

proptest! {
    #[test]
    fn cross_sum_is_commutative_monoid(a in counts_strategy(), b in counts_strategy(), c in counts_strategy()) {
        prop_assert_eq!(a.cross_sum(&b), b.cross_sum(&a));
        prop_assert_eq!(a.cross_sum(&b).cross_sum(&c), a.cross_sum(&b.cross_sum(&c)));
        prop_assert_eq!(a.cross_sum(&Counts::zero(1)), a.clone());
    }

    #[test]
    fn union_is_commutative_idempotent(a in counts_strategy(), b in counts_strategy(), c in counts_strategy()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn cross_sum_distributes_over_union(a in counts_strategy(), b in counts_strategy(), c in counts_strategy()) {
        // (a ⊕ b) ⊗ c == (a ⊗ c) ⊕ (b ⊗ c): why per-node ANY/ALL
        // combination order doesn't matter in the DAG decomposition.
        prop_assert_eq!(
            a.union(&b).cross_sum(&c),
            a.cross_sum(&c).union(&b.cross_sum(&c))
        );
    }

    #[test]
    fn reduction_preserves_all_verdicts(a in counts_strategy(), expr in expr_strategy()) {
        // Proposition 1 end to end: reducing by the expression's mode
        // never changes `all_satisfy`.
        let reduced = a.reduce(expr.reduce_mode());
        prop_assert_eq!(
            a.all_satisfy(0, &expr),
            reduced.all_satisfy(0, &expr),
            "expr {} on {}", expr, a
        );
    }

    #[test]
    fn reduction_commutes_with_upstream_combination(
        a in counts_strategy(),
        b in counts_strategy(),
        expr in expr_strategy(),
    ) {
        // The reduction is only sound for >=/>: min(a ⊗ b) ==
        // min(min(a) ⊗ min(b)), and dually for <=/< with max. For ==, the
        // two smallest elements survive one ⊗ stage for verdict purposes.
        match expr.reduce_mode() {
            ReduceMode::Min => {
                let full = a.cross_sum(&b).reduce(ReduceMode::Min);
                let wire = a.reduce(ReduceMode::Min).cross_sum(&b.reduce(ReduceMode::Min)).reduce(ReduceMode::Min);
                prop_assert_eq!(full, wire);
            }
            ReduceMode::Max => {
                let full = a.cross_sum(&b).reduce(ReduceMode::Max);
                let wire = a.reduce(ReduceMode::Max).cross_sum(&b.reduce(ReduceMode::Max)).reduce(ReduceMode::Max);
                prop_assert_eq!(full, wire);
            }
            ReduceMode::TwoSmallest => {
                // Verdict-level check for ==N across one ⊗ stage.
                let full = a.cross_sum(&b);
                let wire = a
                    .reduce(ReduceMode::TwoSmallest)
                    .cross_sum(&b.reduce(ReduceMode::TwoSmallest));
                prop_assert_eq!(
                    full.all_satisfy(0, &expr),
                    wire.all_satisfy(0, &expr),
                    "expr {} on {} vs {}", expr, full, wire
                );
            }
            ReduceMode::None => {}
        }
    }

    #[test]
    fn union_reduction_verdicts(a in counts_strategy(), b in counts_strategy(), expr in expr_strategy()) {
        // Same for one ⊕ stage.
        let mode = expr.reduce_mode();
        let full = a.union(&b);
        let wire = a.reduce(mode).union(&b.reduce(mode));
        prop_assert_eq!(
            full.all_satisfy(0, &expr),
            wire.all_satisfy(0, &expr),
            "expr {} on {} vs {}", expr, full, wire
        );
    }
}
