//! DVM protocol-level tests (§5.2): message principle, incremental
//! minimality, Proposition-1 reductions on the wire, and verifier
//! bookkeeping.

use tulkun_bdd::{serial, BddManager};
use tulkun_core::count::{CountExpr, Counts};
use tulkun_core::dvm::{DestMode, DeviceVerifier, Envelope, Payload, VerifierConfig};
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{compile_packet_space, Session};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::Topology;

/// Line S → A → D, invariant: reachability with >= 1.
fn line_setup() -> (Network, tulkun_core::planner::Plan) {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, d, 1000);
    t.add_external_prefix(d, "10.0.0.0/24".parse().unwrap());
    let mut net = Network::new(t);
    let p = "10.0.0.0/24".parse().unwrap();
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::deliver(),
    });
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S A D").unwrap(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    (net, plan)
}

/// Collects all envelopes a verifier emits during init.
fn init_envelopes(net: &Network, plan: &tulkun_core::planner::Plan) -> Vec<Envelope> {
    let cp = plan.counting().unwrap();
    let psp = compile_packet_space(&net.layout, &plan.invariant.packet_space);
    let cfg = VerifierConfig {
        n_exprs: 1,
        track_escapes: false,
        reduce: cp.reduce,
        dest_mode: DestMode::Axiomatic,
    };
    let mut out = Vec::new();
    for task in &cp.tasks {
        let mut v = DeviceVerifier::builder(
            task.dev,
            net.layout,
            net.fib(task.dev).clone(),
            &psp,
            cfg.clone(),
        )
        .tasks(vec![task.clone()])
        .build();
        v.init(&mut out);
    }
    out
}

#[test]
fn update_message_principle_holds() {
    // For every UPDATE: union(withdrawn) == union(result predicates).
    let (net, plan) = line_setup();
    for env in init_envelopes(&net, &plan) {
        let Payload::Update {
            withdrawn, results, ..
        } = &env.payload
        else {
            continue;
        };
        let mut m = BddManager::new(net.layout.num_vars());
        let mut wu = m.falsum();
        for w in withdrawn {
            let p = serial::import(&mut m, w).unwrap();
            wu = m.or(wu, p);
        }
        let mut ru = m.falsum();
        for (p, _) in results {
            let p = serial::import(&mut m, p).unwrap();
            ru = m.or(ru, p);
        }
        assert_eq!(wu, ru, "UPDATE principle violated");
    }
}

#[test]
fn only_destinations_speak_first() {
    // At init, the only non-trivial results come from the destination
    // device (everyone else is at the implicit zero).
    let (net, plan) = line_setup();
    let d = net.topology.device("D").unwrap();
    for env in init_envelopes(&net, &plan) {
        if let Payload::Update { .. } = &env.payload {
            assert_eq!(env.from, d, "only D changes its result at init");
        }
    }
}

#[test]
fn quiescent_session_is_silent_on_noop_updates() {
    let (net, plan) = line_setup();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(session.report().holds());
    // Re-inserting an identical rule changes nothing: no DVM messages.
    let a = net.topology.device("A").unwrap();
    let d = net.topology.device("D").unwrap();
    let p = "10.0.0.0/24".parse().unwrap();
    let noop = RuleUpdate::Insert {
        device: a,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst(p),
            action: Action::fwd(d),
        },
    };
    let msgs = session.apply_rule_update(&noop);
    assert_eq!(msgs, 0, "a no-op update must not generate messages");
    assert!(session.report().holds());
}

#[test]
fn stage_batch_defers_propagation_and_report_never_blocks() {
    let (net, plan) = line_setup();
    let a = net.topology.device("A").unwrap();
    let p = "10.0.0.0/24".parse().unwrap();
    let cut = vec![RuleUpdate::Remove {
        device: a,
        priority: 24,
        matches: MatchSpec::dst(p),
    }];

    let mut staged = Session::new(&net, &plan);
    staged.run_to_quiescence();
    staged.stage_batch(&cut);
    assert!(
        staged.pending() > 0,
        "the UPDATE wave must be staged, not run"
    );
    // A snapshot taken mid-flight still answers — it reflects what the
    // sources have converged to so far (the pre-cut state here).
    assert!(
        staged.report().holds(),
        "pre-drain snapshot sees the old state"
    );
    staged.run_to_quiescence();
    assert_eq!(staged.pending(), 0);

    let mut reference = Session::new(&net, &plan);
    reference.run_to_quiescence();
    reference.apply_batch(&cut);
    assert_eq!(
        staged.report().canonical_bytes(),
        reference.report().canonical_bytes(),
        "stage+run must equal apply_batch"
    );
    assert!(!staged.report().holds(), "the cut breaks reachability");
}

#[test]
fn reduction_min_is_on_the_wire() {
    // With `exist >= 1` the wire carries only min(c): build the Fig. 2a
    // diamond where A has an ANY group so A's own LocCIB holds [0, 1],
    // but S must receive just [0].
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1);
    t.add_link(a, b, 1);
    t.add_link(a, w, 1);
    t.add_link(w, d, 1);
    t.add_link(b, d, 1);
    t.add_external_prefix(d, "10.0.0.0/24".parse().unwrap());
    let mut net = Network::new(t);
    let p: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd_any([b, w]),
    });
    // b drops; w forwards.
    net.fib_mut(w).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::deliver(),
    });

    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    // S's LocCIB for the source node holds the reduced [0] (not [0,1]).
    let cp = session.plan();
    let (sdev, snode) = cp.dpvnet.sources()[0];
    let results = session.verifier_mut(sdev).unwrap().node_result(snode, None);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, Counts::scalars([0]));
    assert!(!session.report().holds());
}

#[test]
fn loccib_partitions_scope() {
    // After arbitrary update churn, each verifier's LocCIB entries stay
    // disjoint and cover the packet space.
    let (net, plan) = line_setup();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    let a = net.topology.device("A").unwrap();
    let d = net.topology.device("D").unwrap();
    let s = net.topology.device("S").unwrap();
    let p: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
    let (sub, _) = p.split();
    for (i, up) in [
        RuleUpdate::Insert {
            device: a,
            rule: Rule {
                priority: 60,
                matches: MatchSpec::dst(sub),
                action: Action::Drop,
            },
        },
        RuleUpdate::Insert {
            device: a,
            rule: Rule {
                priority: 61,
                matches: MatchSpec::dst(sub),
                action: Action::fwd(d),
            },
        },
        RuleUpdate::Remove {
            device: a,
            priority: 60,
            matches: MatchSpec::dst(sub),
        },
    ]
    .into_iter()
    .enumerate()
    {
        session.apply_rule_update(&up);
        for dev in [s, a, d] {
            let v = session.verifier_mut(dev).unwrap();
            for node in v.node_ids() {
                let entries = v.node_result(node, None);
                let mut m = BddManager::new(net.layout.num_vars());
                let mut union = m.falsum();
                let preds: Vec<_> = entries
                    .iter()
                    .map(|(p, _)| serial::import(&mut m, p).unwrap())
                    .collect();
                for (x, &px) in preds.iter().enumerate() {
                    for &py in &preds[x + 1..] {
                        assert!(!m.intersects(px, py), "step {i}: overlapping LocCIB");
                    }
                    union = m.or(union, px);
                }
                let ps = compile_packet_space(&net.layout, &plan.invariant.packet_space);
                let ps = serial::import(&mut m, &ps).unwrap();
                assert!(
                    m.implies(ps, union),
                    "step {i}: LocCIB does not cover the scope"
                );
            }
        }
    }
    assert!(session.report().holds());
}

#[test]
fn set_tasks_keeps_upstream_consistent() {
    // Scene switching must preserve CIBOut semantics: removing the only
    // downstream edge drives the source's count to 0 via a real UPDATE.
    let (net, plan) = line_setup();
    let cp = plan.counting().unwrap().clone();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(session.report().holds());

    // Build a task view where A's node loses its downstream edge.
    let mut tasks = cp.tasks.clone();
    let a = net.topology.device("A").unwrap();
    for t in &mut tasks {
        if t.dev == a {
            t.downstream.clear();
        }
    }
    // Apply to A's verifier via the public API (simulating a scene) —
    // use a fresh Session-less driver.
    let psp = compile_packet_space(&net.layout, &plan.invariant.packet_space);
    let cfg = VerifierConfig {
        n_exprs: 1,
        track_escapes: false,
        reduce: cp.reduce,
        dest_mode: DestMode::Axiomatic,
    };
    let mut verifiers: std::collections::BTreeMap<_, _> = Default::default();
    let mut queue: std::collections::VecDeque<Envelope> = Default::default();
    for task in &cp.tasks {
        let mut v = DeviceVerifier::builder(
            task.dev,
            net.layout,
            net.fib(task.dev).clone(),
            &psp,
            cfg.clone(),
        )
        .tasks(vec![task.clone()])
        .build();
        v.init(&mut queue);
        verifiers.insert(task.dev, v);
    }
    while let Some(env) = queue.pop_front() {
        if let Some(v) = verifiers.get_mut(&env.to) {
            v.handle(&env, &mut queue);
        }
    }
    // Switch A's tasks.
    let new_a_tasks: Vec<_> = tasks.iter().filter(|t| t.dev == a).cloned().collect();
    verifiers
        .get_mut(&a)
        .unwrap()
        .set_tasks(new_a_tasks, &mut queue);
    while let Some(env) = queue.pop_front() {
        if let Some(v) = verifiers.get_mut(&env.to) {
            v.handle(&env, &mut queue);
        }
    }
    // The source now sees count 0.
    let (sdev, snode) = cp.dpvnet.sources()[0];
    let results = verifiers.get_mut(&sdev).unwrap().node_result(snode, None);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, Counts::scalars([0]));
}
