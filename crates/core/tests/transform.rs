//! Packet transformation handling (§5.2): a device that rewrites
//! headers makes its downstream neighbors count the *transformed* space
//! via SUBSCRIBE messages.

use tulkun_core::count::CountExpr;
use tulkun_core::planner::{Planner, PlannerOptions};
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{verify_snapshot, Session};
use tulkun_netmodel::fib::{Action, ActionType, MatchSpec, NextHop, Rewrite, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::IpPrefix;

fn pfx(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

/// S → A → B → D, where A NATs 10.0.0.0/24 into 10.1.0.0/24 and the
/// rest of the network only routes the translated prefix.
fn nat_network(b_forwards: bool) -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(b, d, 1000);
    t.add_external_prefix(d, pfx("10.1.0.0/24"));

    let mut net = Network::new(t);
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::Forward {
            mode: ActionType::All,
            next_hops: vec![NextHop::Device(b)],
            rewrite: Some(Rewrite {
                to: pfx("10.1.0.0/24"),
            }),
        },
    });
    if b_forwards {
        net.fib_mut(b).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(pfx("10.1.0.0/24")),
            action: Action::fwd(d),
        });
    }
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(pfx("10.1.0.0/24")),
        action: Action::deliver(),
    });
    net
}

fn nat_invariant() -> Invariant {
    Invariant::builder()
        .name("reachability through NAT")
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S A B D").unwrap(),
        ))
        .build()
        .unwrap()
}

fn plan(net: &Network) -> tulkun_core::planner::Plan {
    Planner::with_options(
        &net.topology,
        PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    )
    .plan(&nat_invariant())
    .unwrap()
}

#[test]
fn reachability_through_rewrite_holds() {
    // B only has rules for the *translated* prefix; the counting still
    // works because A subscribes B to 10.1.0.0/24.
    let net = nat_network(true);
    let report = verify_snapshot(&net, &plan(&net));
    assert!(report.holds(), "{:?}", report.violations);
}

#[test]
fn rewrite_violation_detected_when_downstream_drops() {
    let net = nat_network(false); // B drops the translated prefix
    let report = verify_snapshot(&net, &plan(&net));
    assert!(!report.holds());
}

#[test]
fn subscribe_messages_flow() {
    let net = nat_network(true);
    let plan = plan(&net);
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    // A must have sent at least one SUBSCRIBE (B's scope grew beyond the
    // invariant's packet space).
    let a = net.topology.device("A").unwrap();
    let va = session.verifier(a).unwrap();
    assert!(va.stats.messages_sent > 0);
    let b = net.topology.device("B").unwrap();
    let vb = session.verifier(b).unwrap();
    assert!(
        vb.stats.subscribes_processed >= 1,
        "B must receive a SUBSCRIBE"
    );
}

#[test]
fn downstream_update_in_translated_space_propagates_back() {
    // Start broken (B drops), then install B's rule for the translated
    // prefix: the incremental update must flip the verdict at S.
    let net = nat_network(false);
    let plan = plan(&net);
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(!session.report().holds());

    let b = net.topology.device("B").unwrap();
    let d = net.topology.device("D").unwrap();
    session.apply_rule_update(&RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 24,
            matches: MatchSpec::dst(pfx("10.1.0.0/24")),
            action: Action::fwd(d),
        },
    });
    assert!(
        session.report().holds(),
        "{:?}",
        session.report().violations
    );
}

#[test]
fn rewrite_installed_by_update_triggers_subscribe() {
    // A initially forwards without rewriting (so nothing reaches D's
    // translated-prefix FIB); installing the NAT rule via an update must
    // send the SUBSCRIBE and fix the verdict.
    let mut net = nat_network(true);
    let a = net.topology.device("A").unwrap();
    let b = net.topology.device("B").unwrap();
    // Replace A's NAT with a plain forward first.
    net.fib_mut(a)
        .remove(24, &MatchSpec::dst(pfx("10.0.0.0/24")));
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::fwd(b),
    });
    let plan = plan(&net);
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(
        !session.report().holds(),
        "without the NAT, B drops the packets"
    );

    session.apply_rule_update(&RuleUpdate::Insert {
        device: a,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst(pfx("10.0.0.0/24")),
            action: Action::Forward {
                mode: ActionType::All,
                next_hops: vec![NextHop::Device(b)],
                rewrite: Some(Rewrite {
                    to: pfx("10.1.0.0/24"),
                }),
            },
        },
    });
    assert!(
        session.report().holds(),
        "{:?}",
        session.report().violations
    );
}
