//! Runtime intent churn on the synchronous reference session: merged
//! multi-intent reports must be byte-equal to standalone per-intent
//! sessions, removal must restore the pre-install verdict, and slices
//! must stay local to the devices they touch.

use tulkun_core::count::CountExpr;
use tulkun_core::event::{RuntimeEvent, Substrate};
use tulkun_core::intent::IntentId;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{Report, Session};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::IpPrefix;

fn pfx(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

/// The Figure 2a network of the paper (S → A → {B, W} → D) with the §2
/// data plane (A replicates P2, splits P3, detours P4).
fn fig2a_network() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(b, w, 1000);
    t.add_link(b, d, 1000);
    t.add_link(w, d, 1000);
    t.add_external_prefix(d, pfx("10.0.0.0/23"));
    let mut net = Network::new(t);
    net.fib_mut(s).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 30,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")).with_port(80),
        action: Action::fwd_any([b, w]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 20,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(w),
    });
    net.fib_mut(a).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::fwd_all([b, w]),
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::Drop,
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(d),
    });
    net.fib_mut(w).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::deliver(),
    });
    net
}

fn invariant(name: &str, expr: &str) -> Invariant {
    Invariant::builder()
        .name(name)
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress([expr.split_whitespace().next().unwrap()])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse(expr).unwrap().loop_free(),
        ))
        .build()
        .unwrap()
}

/// A quiesced standalone session's report for one invariant.
fn fresh_report(net: &Network, inv: &Invariant) -> Report {
    let plan = Planner::new(&net.topology).plan(inv).unwrap();
    let mut s = Session::new(net, &plan);
    s.run_to_quiescence();
    s.report()
}

/// The expected merged verdict: each surviving intent's standalone
/// report, violations re-tagged with the live intent id, concatenated
/// in id order.
fn merged_reference(net: &Network, intents: &[(u64, &Invariant)]) -> Vec<u8> {
    let mut all = Vec::new();
    for (id, inv) in intents {
        let mut r = fresh_report(net, inv);
        for v in &mut r.violations {
            v.intent = *id;
        }
        all.extend(r.violations);
    }
    Report {
        violations: all,
        ..Report::default()
    }
    .canonical_bytes()
}

fn session_for(net: &Network, inv: &Invariant) -> Session {
    let plan = Planner::new(&net.topology).plan(inv).unwrap();
    let mut s = Session::new(net, &plan);
    s.run_to_quiescence();
    s
}

#[test]
fn overlapping_intents_report_like_standalone_sessions() {
    let net = fig2a_network();
    let base = invariant("reach", "S .* D");
    let way = invariant("waypoint", "S .* W .* D");
    let mut s = session_for(&net, &base);
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&net, &[(0, &base)])
    );

    let (way_id, delta) = s.install_intent("waypoint", &way).unwrap();
    assert!(delta.reused_nodes > 0, "slices overlap: {delta:?}");
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&net, &[(0, &base), (way_id.0, &way)]),
        "merged report must equal the two standalone sessions"
    );

    // Removal restores the pre-install verdict exactly.
    let rm = s.remove_intent(way_id).unwrap();
    assert!(
        rm.removed.values().map(Vec::len).sum::<usize>() < delta.total_nodes,
        "shared nodes must survive removal: {rm:?}"
    );
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&net, &[(0, &base)])
    );
}

#[test]
fn intent_install_is_slice_local_and_lazy() {
    let net = fig2a_network();
    // The base intent never touches S: its slice starts at A.
    let base = invariant("a-reach", "A .* D");
    let way = invariant("s-way", "S .* W .* D");
    let mut s = session_for(&net, &base);
    assert!(s.verifier(net.topology.expect_device("S")).is_none());

    let (way_id, delta) = s.install_intent("s-way", &way).unwrap();
    // S's verifier is built lazily when an intent pulls it in.
    assert!(s.verifier(net.topology.expect_device("S")).is_some());
    let touched = delta.touched_devices();
    assert!(
        !touched.contains(&net.topology.expect_device("B"))
            || delta.changed.len() < net.topology.num_devices(),
        "install must not re-task the whole network: {delta:?}"
    );
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&net, &[(0, &base), (way_id.0, &way)])
    );
}

#[test]
fn intent_churn_interleaved_with_fib_churn() {
    let net = fig2a_network();
    let base = invariant("reach", "S .* D");
    let way = invariant("waypoint", "S .* W .* D");
    let mut s = session_for(&net, &base);
    let (way_id, _) = s.install_intent("waypoint", &way).unwrap();

    // Break B→D for 10.0.1.0/24, then heal it, with the intent set
    // changing in between; the final verdict must match fresh plans of
    // the surviving set against the final FIBs.
    let b = net.topology.expect_device("B");
    let d = net.topology.expect_device("D");
    let withdraw = RuleUpdate::Remove {
        device: b,
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
    };
    let restore = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")),
            action: Action::fwd(d),
        },
    };
    s.apply_batch(std::slice::from_ref(&withdraw));
    let mut churned = net.clone();
    churned.apply(&withdraw);
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&churned, &[(0, &base), (way_id.0, &way)])
    );

    s.remove_intent(way_id).unwrap();
    s.apply_batch(std::slice::from_ref(&restore));
    churned.apply(&restore);
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&churned, &[(0, &base)])
    );

    // Re-install after FIB churn: planning sees the current FIB state.
    let (way_id2, _) = s.install_intent("waypoint", &way).unwrap();
    assert_eq!(
        s.report().canonical_bytes(),
        merged_reference(&churned, &[(0, &base), (way_id2.0, &way)])
    );
    assert_eq!(way_id2, IntentId(way_id.0 + 1), "ids are never reused");
}

#[test]
fn apply_event_covers_every_mutation() {
    let net = fig2a_network();
    let base = invariant("reach", "S .* D");
    let way = invariant("waypoint", "S .* W .* D");
    let mut s = session_for(&net, &base);

    let out = s
        .apply_event(&RuntimeEvent::InstallIntent {
            name: "waypoint".to_string(),
            invariant: way.clone(),
        })
        .unwrap();
    let id = out.intent.unwrap();
    let (total, reused) = out.slice.unwrap();
    assert!(total > 0 && reused > 0);

    let b = net.topology.expect_device("B");
    s.apply_event(&RuntimeEvent::Batch(vec![RuleUpdate::Remove {
        device: b,
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
    }]))
    .unwrap();
    s.apply_event(&RuntimeEvent::RemoveIntent(id)).unwrap();

    // Events outside the synchronous model are rejected, not ignored.
    assert!(s.apply_event(&RuntimeEvent::CrashRestart(b)).is_err());
    assert!(s
        .apply_event(&RuntimeEvent::SetBackend(
            tulkun_predicate::BackendKind::Intervals
        ))
        .is_err());
}
