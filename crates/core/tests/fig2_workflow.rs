#![allow(clippy::needless_range_loop)] // bit-packing loops read clearer indexed
//! End-to-end reproduction of the paper's worked example (Figure 2):
//! the 5-device network, its data plane, the waypoint invariant, the
//! backward counting result, and the incremental update of §2.2.3.

use tulkun_core::count::CountExpr;
use tulkun_core::count::Counts;
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{verify_snapshot, Session};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::IpPrefix;

fn pfx(s: &str) -> IpPrefix {
    s.parse().unwrap()
}

/// The network of Figure 2a with the data plane described in §2:
///
/// * `P2 = 10.0.0.0/24`: A replicates to both B and W (`ALL`); B drops.
/// * `P3 = 10.0.1.0/24 ∧ port 80`: A picks B or W (`ANY`); B and W
///   forward to D.
/// * `P4 = 10.0.1.0/24 ∧ port ≠ 80`: A forwards to W only.
fn fig2a_network() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(b, w, 1000);
    t.add_link(b, d, 1000);
    t.add_link(w, d, 1000);
    t.add_external_prefix(d, pfx("10.0.0.0/23"));

    let mut net = Network::new(t);
    // S: everything in P1 toward A.
    net.fib_mut(s).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(a),
    });
    // A: P3 → ANY{B, W}; P4 (rest of 10.0.1.0/24) → W; P2 → ALL{B, W}.
    net.fib_mut(a).insert(Rule {
        priority: 30,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")).with_port(80),
        action: Action::fwd_any([b, w]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 20,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(w),
    });
    net.fib_mut(a).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::fwd_all([b, w]),
    });
    // B: drops P2, forwards 10.0.1.0/24 to D.
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.0.0/24")),
        action: Action::Drop,
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(pfx("10.0.1.0/24")),
        action: Action::fwd(d),
    });
    // W: all of P1 to D.
    net.fib_mut(w).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::fwd(d),
    });
    // D: delivers externally.
    net.fib_mut(d).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(pfx("10.0.0.0/23")),
        action: Action::deliver(),
    });
    net
}

/// Figure 2b: all packets to 10.0.0.0/23 entering at S must reach D via
/// a simple path through W, in every universe.
fn fig2b_invariant() -> Invariant {
    Invariant::builder()
        .name("fig2b waypoint")
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap()
}

#[test]
fn fig2_snapshot_detects_the_p3_violation() {
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let report = verify_snapshot(&net, &plan);
    // The invariant does NOT hold: in the universe where A sends P3 to B,
    // zero copies reach D through W.
    assert!(!report.holds());
    // Exactly one violating packet class (P3 = 10.0.1.0/24:80).
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
}

#[test]
fn fig2_violating_class_is_p3() {
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    let report = session.report();
    assert_eq!(report.violations.len(), 1);

    // Check the violating predicate is P3 by evaluating it on specimen
    // packets: 10.0.1.1:80 ∈ P3, 10.0.1.1:81 ∈ P4, 10.0.0.1 ∈ P2.
    let v = &report.violations[0];
    let layout = tulkun_bdd::HeaderLayout::ipv4_tcp();
    let mut m = tulkun_bdd::BddManager::new(layout.num_vars());
    let pred = tulkun_bdd::serial::import(&mut m, &v.pred).unwrap();
    let eval = |m: &tulkun_bdd::BddManager, ip: [u8; 4], port: u16| {
        let mut bits = vec![false; layout.num_vars() as usize];
        let addr = u32::from_be_bytes(ip);
        for i in 0..32 {
            bits[i] = (addr >> (31 - i)) & 1 == 1;
        }
        for i in 0..16 {
            bits[32 + i] = (port >> (15 - i)) & 1 == 1;
        }
        m.eval(pred, &bits)
    };
    assert!(eval(&m, [10, 0, 1, 1], 80), "P3 must violate");
    assert!(!eval(&m, [10, 0, 1, 1], 81), "P4 must not violate");
    assert!(!eval(&m, [10, 0, 0, 1], 80), "P2 must not violate");

    // And the counts are the paper's [0, 1] (or the reduced [0]).
    let tulkun_core::verify::ViolationKind::Counting { counts } = &v.kind else {
        panic!("expected a counting violation")
    };
    assert!(
        counts.iter().any(|u| u[0] == 0),
        "a universe must deliver 0 copies"
    );
}

#[test]
fn fig2_incremental_update_fixes_the_violation() {
    // §2.2.3: B updates its action to forward P3 ∪ P4 to W instead of D.
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();
    assert!(!session.report().holds());

    let b = net.topology.device("B").unwrap();
    let w = net.topology.device("W").unwrap();
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")),
            action: Action::fwd(w),
        },
    };
    let msgs = session.apply_rule_update(&update);
    assert!(msgs > 0, "the update must trigger DVM messages");
    let report = session.report();
    assert!(
        report.holds(),
        "after the update the invariant holds: {:?}",
        report.violations
    );
}

#[test]
fn fig2_update_message_flow_is_incremental() {
    // Only devices whose results change send messages: the B rule update
    // must not make S recompute everything (S receives one update from
    // A at most).
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let mut session = Session::new(&net, &plan);
    let burst_msgs = session.run_to_quiescence();

    let b = net.topology.device("B").unwrap();
    let w = net.topology.device("W").unwrap();
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst(pfx("10.0.1.0/24")),
            action: Action::fwd(w),
        },
    };
    let incr_msgs = session.apply_rule_update(&update);
    assert!(
        incr_msgs < burst_msgs,
        "incremental ({incr_msgs}) must be cheaper than burst ({burst_msgs})"
    );
}

#[test]
fn fig2_s1_final_counts_match_the_paper() {
    // The paper's final counting result at S1:
    // [(P2 ∪ P4, 1), (P3, [0, 1])]. With Proposition 1's reduction for
    // `exist >= 1`, S receives min(c) from A, so S1 sees (P3, [0]).
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();

    let s = net.topology.device("S").unwrap();
    let cp = session.plan().clone();
    let (_, src_node) = cp.dpvnet.sources()[0];
    let verifier = session.verifier_mut(s).unwrap();
    let results = verifier.node_result(src_node, None);

    // Two outcome classes: count {1} for P2 ∪ P4 and count {0} for P3
    // (min-reduced from [0,1] on the wire).
    let mut counts: Vec<Counts> = results.iter().map(|(_, c)| c.clone()).collect();
    counts.sort();
    assert_eq!(
        counts.len(),
        2,
        "expected two packet classes at S1: {counts:?}"
    );
    assert_eq!(counts[0], Counts::scalars([0]));
    assert_eq!(counts[1], Counts::scalars([1]));
}

#[test]
fn multicast_and_isolation_on_fig2a() {
    let net = fig2a_network();
    // "Multicast" to B and D fails for P3/P4 (B only gets P3 sometimes),
    // but plain reachability S→D holds for all of P1? No: P2's B-copy is
    // dropped, but the W-copy reaches D, so reachability holds.
    let inv =
        tulkun_core::spec::table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D")
            .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(report.holds(), "{:?}", report.violations);

    // Isolation S -x-> D must fail (packets do reach D).
    let inv =
        tulkun_core::spec::table1::isolation(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D")
            .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    assert!(!report.holds());
}

#[test]
fn blackhole_freeness_fails_because_b_drops_p2() {
    let net = fig2a_network();
    let inv = tulkun_core::spec::table1::blackhole_freeness(
        PacketSpace::dst_prefix("10.0.0.0/24"),
        "S",
        "D",
    )
    .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let report = verify_snapshot(&net, &plan);
    // P2 is replicated at A; the B copy is dropped at B — an escaped
    // trace, so coverage fails.
    assert!(!report.holds());
}

#[test]
fn link_event_recounting() {
    // Kill link W–D: the only waypoint paths die, so even P2/P4 violate.
    let net = fig2a_network();
    let plan = Planner::new(&net.topology)
        .plan(&fig2b_invariant())
        .unwrap();
    let mut session = Session::new(&net, &plan);
    session.run_to_quiescence();

    let w = net.topology.device("W").unwrap();
    let d = net.topology.device("D").unwrap();
    session.apply_link_event(w, d, false);
    let report = session.report();
    assert!(!report.holds());
    // Bring it back: the original single violation returns.
    session.apply_link_event(w, d, true);
    let report = session.report();
    assert_eq!(report.violations.len(), 1);
}
