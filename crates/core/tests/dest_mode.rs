//! Destination-delivery semantics: the paper's axiomatic destination
//! initialization (§2.2.2, "one copy will be sent to the correct
//! external ports") vs the stricter mode that checks the destination's
//! own FIB.

use tulkun_core::count::CountExpr;
use tulkun_core::dvm::{DestMode, DeviceVerifier, Envelope, VerifierConfig};
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{compile_packet_space, evaluate_sources};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::Network;
use tulkun_netmodel::topology::Topology;

/// S → A → D where D's own FIB drops the prefix (a last-hop blackhole).
fn net_with_dst_drop() -> Network {
    let mut t = Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, d, 1000);
    t.add_external_prefix(d, "10.0.0.0/24".parse().unwrap());
    let mut net = Network::new(t);
    let p = "10.0.0.0/24".parse().unwrap();
    net.fib_mut(s).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst(p),
        action: Action::fwd(d),
    });
    // D has no rule: the packet dies at the destination switch.
    net
}

fn run_with_mode(net: &Network, mode: DestMode) -> bool {
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S A D").unwrap(),
        ))
        .build()
        .unwrap();
    let plan = Planner::new(&net.topology).plan(&inv).unwrap();
    let cp = plan.counting().unwrap();
    let psp = compile_packet_space(&net.layout, &inv.packet_space);
    let cfg = VerifierConfig {
        n_exprs: 1,
        track_escapes: false,
        reduce: cp.reduce,
        dest_mode: mode,
    };
    let mut verifiers: std::collections::BTreeMap<_, _> = Default::default();
    let mut queue: std::collections::VecDeque<Envelope> = Default::default();
    for task in &cp.tasks {
        let mut v = DeviceVerifier::builder(
            task.dev,
            net.layout,
            net.fib(task.dev).clone(),
            &psp,
            cfg.clone(),
        )
        .tasks(vec![task.clone()])
        .build();
        v.init(&mut queue);
        verifiers.insert(task.dev, v);
    }
    while let Some(env) = queue.pop_front() {
        if let Some(v) = verifiers.get_mut(&env.to) {
            v.handle(&env, &mut queue);
        }
    }
    evaluate_sources(cp, |dev, node| {
        verifiers
            .get_mut(&dev)
            .map(|v| v.node_result(node, None))
            .unwrap_or_default()
    })
    .holds()
}

#[test]
fn axiomatic_mode_trusts_the_destination() {
    // The paper's semantics: D1 counts 1 by definition, so the invariant
    // holds even though D's FIB drops.
    let net = net_with_dst_drop();
    assert!(run_with_mode(&net, DestMode::Axiomatic));
}

#[test]
fn check_delivery_mode_catches_last_hop_blackholes() {
    let net = net_with_dst_drop();
    assert!(!run_with_mode(&net, DestMode::CheckDelivery));
}

#[test]
fn check_delivery_passes_when_destination_delivers() {
    let mut net = net_with_dst_drop();
    let d = net.topology.device("D").unwrap();
    net.fib_mut(d).insert(Rule {
        priority: 24,
        matches: MatchSpec::dst("10.0.0.0/24".parse().unwrap()),
        action: Action::deliver(),
    });
    assert!(run_with_mode(&net, DestMode::CheckDelivery));
    assert!(run_with_mode(&net, DestMode::Axiomatic));
}
