//! Message-reordering robustness: DVM only assumes in-order delivery
//! *per link* (TCP sessions between neighbors). Interleaving across
//! links is arbitrary in a real deployment, so the final verdict must
//! not depend on it.
//!
//! This driver keeps one FIFO per (from, to) device pair and picks the
//! next channel to deliver from at random (seeded), including while
//! updates are being injected mid-flight.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use tulkun_core::count::CountExpr;
use tulkun_core::dvm::{DestMode, DeviceVerifier, Envelope, VerifierConfig};
use tulkun_core::planner::Planner;
use tulkun_core::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use tulkun_core::verify::{self, compile_packet_space};
use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
use tulkun_netmodel::network::{Network, RuleUpdate};
use tulkun_netmodel::DeviceId;

struct ChannelDriver {
    verifiers: BTreeMap<DeviceId, DeviceVerifier>,
    channels: BTreeMap<(DeviceId, DeviceId), VecDeque<Envelope>>,
    rng: ChaCha8Rng,
}

impl ChannelDriver {
    fn new(net: &Network, plan: &tulkun_core::planner::Plan, seed: u64) -> ChannelDriver {
        let cp = plan.counting().unwrap();
        let psp = compile_packet_space(&net.layout, &plan.invariant.packet_space);
        let cfg = VerifierConfig {
            n_exprs: cp.exprs.len(),
            track_escapes: cp.track_escapes,
            reduce: cp.reduce,
            dest_mode: DestMode::Axiomatic,
        };
        let mut by_dev: BTreeMap<DeviceId, Vec<_>> = BTreeMap::new();
        for t in &cp.tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }
        let mut driver = ChannelDriver {
            verifiers: BTreeMap::new(),
            channels: BTreeMap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        };
        for (dev, tasks) in by_dev {
            let mut v =
                DeviceVerifier::builder(dev, net.layout, net.fib(dev).clone(), &psp, cfg.clone())
                    .tasks(tasks)
                    .build();
            let mut out = Vec::new();
            v.init(&mut out);
            for env in out {
                driver.push(env);
            }
            driver.verifiers.insert(dev, v);
        }
        driver
    }

    fn push(&mut self, env: Envelope) {
        self.channels
            .entry((env.from, env.to))
            .or_default()
            .push_back(env);
    }

    /// Delivers one message from a random non-empty channel. Returns
    /// false when quiescent.
    fn step(&mut self) -> bool {
        let keys: Vec<_> = self
            .channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(k, _)| *k)
            .collect();
        if keys.is_empty() {
            return false;
        }
        let k = keys[self.rng.gen_range(0..keys.len())];
        let env = self.channels.get_mut(&k).unwrap().pop_front().unwrap();
        let mut out = Vec::new();
        if let Some(v) = self.verifiers.get_mut(&env.to) {
            v.handle(&env, &mut out);
        }
        for env in out {
            self.push(env);
        }
        true
    }

    fn run(&mut self) {
        while self.step() {}
    }

    fn inject(&mut self, update: &RuleUpdate) {
        let mut out = Vec::new();
        if let Some(v) = self.verifiers.get_mut(&update.device()) {
            v.handle_fib_update(update, &mut out);
        }
        for env in out {
            self.push(env);
        }
    }
}

fn fig2a() -> Network {
    // Reuse the canonical example network (inline to avoid a dev-dep
    // cycle with tulkun-datasets).
    let mut t = tulkun_netmodel::Topology::new();
    let s = t.add_device("S");
    let a = t.add_device("A");
    let b = t.add_device("B");
    let w = t.add_device("W");
    let d = t.add_device("D");
    t.add_link(s, a, 1000);
    t.add_link(a, b, 1000);
    t.add_link(a, w, 1000);
    t.add_link(b, w, 1000);
    t.add_link(b, d, 1000);
    t.add_link(w, d, 1000);
    t.add_external_prefix(d, "10.0.0.0/23".parse().unwrap());
    let mut net = Network::new(t);
    let p23: tulkun_netmodel::IpPrefix = "10.0.0.0/23".parse().unwrap();
    let p24a: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
    let p24b: tulkun_netmodel::IpPrefix = "10.0.1.0/24".parse().unwrap();
    net.fib_mut(s).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(p23),
        action: Action::fwd(a),
    });
    net.fib_mut(a).insert(Rule {
        priority: 30,
        matches: MatchSpec::dst(p24b).with_port(80),
        action: Action::fwd_any([b, w]),
    });
    net.fib_mut(a).insert(Rule {
        priority: 20,
        matches: MatchSpec::dst(p24b),
        action: Action::fwd(w),
    });
    net.fib_mut(a).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(p24a),
        action: Action::fwd_all([b, w]),
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(p24a),
        action: Action::Drop,
    });
    net.fib_mut(b).insert(Rule {
        priority: 10,
        matches: MatchSpec::dst(p24b),
        action: Action::fwd(d),
    });
    net.fib_mut(w).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(p23),
        action: Action::fwd(d),
    });
    net.fib_mut(d).insert(Rule {
        priority: 23,
        matches: MatchSpec::dst(p23),
        action: Action::deliver(),
    });
    net
}

fn waypoint_plan(net: &Network) -> tulkun_core::planner::Plan {
    let inv = Invariant::builder()
        .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
        .ingress(["S"])
        .behavior(Behavior::exist(
            CountExpr::ge(1),
            PathExpr::parse("S .* W .* D").unwrap().loop_free(),
        ))
        .build()
        .unwrap();
    Planner::new(&net.topology).plan(&inv).unwrap()
}

fn verdict(driver: &mut ChannelDriver, plan: &tulkun_core::planner::Plan) -> usize {
    let cp = plan.counting().unwrap();
    let verifiers = &mut driver.verifiers;
    let report = verify::evaluate_sources(cp, |dev, node| {
        verifiers
            .get_mut(&dev)
            .map(|v| v.node_result(node, None))
            .unwrap_or_default()
    });
    report.violations.len()
}

#[test]
fn verdict_is_order_independent() {
    let net = fig2a();
    let plan = waypoint_plan(&net);
    let mut verdicts = std::collections::BTreeSet::new();
    for seed in 0..20 {
        let mut driver = ChannelDriver::new(&net, &plan, seed);
        driver.run();
        verdicts.insert(verdict(&mut driver, &plan));
    }
    assert_eq!(
        verdicts.len(),
        1,
        "verdict depends on delivery order: {verdicts:?}"
    );
    assert_eq!(verdicts.into_iter().next().unwrap(), 1);
}

#[test]
fn verdict_is_order_independent_with_midflight_updates() {
    // Inject the Fig. 2 repair while burst messages are still in
    // flight, at a random point, under random interleavings: eventual
    // consistency demands the same final verdict every time.
    let net = fig2a();
    let plan = waypoint_plan(&net);
    let b = net.topology.device("B").unwrap();
    let w = net.topology.device("W").unwrap();
    let update = RuleUpdate::Insert {
        device: b,
        rule: Rule {
            priority: 50,
            matches: MatchSpec::dst("10.0.1.0/24".parse().unwrap()),
            action: Action::fwd(w),
        },
    };
    for seed in 0..20 {
        let mut driver = ChannelDriver::new(&net, &plan, seed);
        // Deliver a random number of messages before the update lands.
        let k = (seed as usize * 7) % 12;
        for _ in 0..k {
            if !driver.step() {
                break;
            }
        }
        driver.inject(&update);
        driver.run();
        assert_eq!(
            verdict(&mut driver, &plan),
            0,
            "seed {seed}: repaired network must verify regardless of interleaving"
        );
    }
}
