//! Property tests for DPVNet: the suffix-merged DAG must represent
//! *exactly* the enumerated valid path set (the paper's state
//! minimization must not add or lose paths), and every edge must be a
//! topology link.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tulkun_core::dpvnet::{self, DpvNet};
use tulkun_core::spec::PathExpr;
use tulkun_netmodel::topology::{DeviceId, Topology};

fn random_topology() -> impl Strategy<Value = Topology> {
    (
        4usize..8,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..10),
    )
        .prop_map(|(n, extra)| {
            let mut t = Topology::new();
            let ids: Vec<DeviceId> = (0..n).map(|i| t.add_device(format!("n{i}"))).collect();
            for i in 1..n {
                t.add_link(ids[i - 1], ids[i], 1000);
            }
            for (a, b) in extra {
                let a = a as usize % n;
                let b = b as usize % n;
                if a != b && t.link_between(ids[a], ids[b]).is_none() {
                    t.add_link(ids[a], ids[b], 1000);
                }
            }
            t
        })
}

/// Path templates over the first/last device (+ a middle waypoint).
fn expr_for(topo: &Topology, kind: u8) -> PathExpr {
    let n = topo.num_devices();
    let src = topo.name(DeviceId(0));
    let dst = topo.name(DeviceId(n as u32 - 1));
    let mid = topo.name(DeviceId((n / 2) as u32));
    let pe = match kind % 4 {
        0 => PathExpr::parse(&format!("{src} .* {dst}"))
            .unwrap()
            .loop_free(),
        1 => PathExpr::parse(&format!("{src} .* {mid} .* {dst}"))
            .unwrap()
            .loop_free(),
        2 => PathExpr::parse(&format!("{src} .* {dst}"))
            .unwrap()
            .loop_free()
            .shortest_plus(1),
        _ => PathExpr::parse(&format!("{src} [^{mid}]* {dst}"))
            .unwrap()
            .loop_free(),
    };
    pe
}

/// All root-to-accepting-node device sequences of the DAG.
fn dag_paths(net: &DpvNet) -> BTreeSet<Vec<DeviceId>> {
    let mut out = BTreeSet::new();
    for &(_, src) in net.sources() {
        let mut path = vec![net.node(src).dev];
        walk(net, src, &mut path, &mut out);
    }
    out
}

fn walk(
    net: &DpvNet,
    node: tulkun_core::dpvnet::NodeId,
    path: &mut Vec<DeviceId>,
    out: &mut BTreeSet<Vec<DeviceId>>,
) {
    if net.node(node).is_accepting() {
        out.insert(path.clone());
    }
    for &o in &net.node(node).out {
        path.push(net.node(o).dev);
        walk(net, o, path, out);
        path.pop();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dag_language_equals_enumeration(topo in random_topology(), kind in any::<u8>()) {
        let pe = expr_for(&topo, kind);
        let src = DeviceId(0);
        let enumerated = dpvnet::enumerate_valid_paths(&topo, &[src], std::slice::from_ref(&pe), 1_000_000)
            .unwrap();
        let expected: BTreeSet<Vec<DeviceId>> =
            enumerated.iter().map(|p| p.devices.clone()).collect();
        let net = DpvNet::build(&topo, &[src], std::slice::from_ref(&pe)).unwrap();
        let got = dag_paths(&net);
        prop_assert_eq!(&got, &expected, "DAG paths != enumerated paths for {}", pe);
        // num_paths agrees too.
        prop_assert_eq!(net.num_paths(), expected.len() as f64);
    }

    #[test]
    fn edges_are_topology_links(topo in random_topology(), kind in any::<u8>()) {
        let pe = expr_for(&topo, kind);
        let net = DpvNet::build(&topo, &[DeviceId(0)], std::slice::from_ref(&pe)).unwrap();
        for (id, n) in net.iter() {
            for &o in &n.out {
                let a = n.dev;
                let b = net.node(o).dev;
                prop_assert!(
                    topo.link_between(a, b).is_some(),
                    "edge {}→{} is not a topology link",
                    net.node(id).label,
                    net.node(o).label
                );
                // And inn is the exact inverse of out.
                prop_assert!(net.node(o).inn.contains(&id));
            }
        }
    }

    #[test]
    fn slack_dag_superset_of_exact_for_k2(topo in random_topology()) {
        // For k=2 the slack DAG may add backtracking walks but must
        // contain every exact loop-free ≤shortest+2 path.
        let n = topo.num_devices();
        let src = DeviceId(0);
        let dst = DeviceId(n as u32 - 1);
        let pe = PathExpr::parse(&format!(
            "{} .* {}",
            topo.name(src),
            topo.name(dst)
        ))
        .unwrap()
        .loop_free()
        .shortest_plus(2);
        let exact = DpvNet::build(&topo, &[src], std::slice::from_ref(&pe)).unwrap();
        let fast = DpvNet::slack_dag(&topo, src, dst, 2);
        let exact_paths = dag_paths(&exact);
        let fast_paths = dag_paths(&fast);
        for p in &exact_paths {
            prop_assert!(fast_paths.contains(p), "missing exact path {p:?}");
        }
    }
}
