//! DVM message formats (§5.2).
//!
//! Messages travel between the verifiers of neighboring devices over
//! reliable, in-order channels (TCP in the paper's deployment; channels
//! in the simulator and the threaded runner). Predicates cross device
//! boundaries as [`PortablePred`]s because every device owns a private
//! BDD manager.
//!
//! When the underlying channel is best-effort instead (a lossy
//! management network), the reliability layer in [`crate::dvm::reliable`]
//! rebuilds the TCP guarantees on top of these formats: every data
//! envelope carries a per-`(from, to)` channel sequence number
//! ([`Envelope::seq`], assigned by the sender window — verifiers always
//! emit `seq == 0`), receivers acknowledge with [`Payload::Ack`], and
//! unacknowledged envelopes are retransmitted with exponential backoff.

use crate::count::Counts;
use crate::dpvnet::NodeId;
use tulkun_bdd::serial::PortablePred;
use tulkun_json::{FromJson, Json, JsonError, ToJson};
use tulkun_netmodel::DeviceId;

/// A directed DPVNet edge `(upstream node, downstream node)` — the
/// *intended link* of an UPDATE message. Counting results flow from
/// `down`'s device to `up`'s device, against the edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// Upstream node (receiver of counting results).
    pub up: NodeId,
    /// Downstream node (sender of counting results).
    pub down: NodeId,
}

/// DVM message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Counting results from a downstream node (§5.2). Invariant (the
    /// *UPDATE message principle*): the union of `withdrawn` equals the
    /// union of the predicates in `results`.
    Update {
        /// The intended link.
        edge: EdgeRef,
        /// Predicates whose previous results are obsolete.
        withdrawn: Vec<PortablePred>,
        /// The incoming counting results.
        results: Vec<(PortablePred, Counts)>,
    },
    /// Ask the downstream device to extend its counting scope for this
    /// edge (packet transformation support, §5.2).
    Subscribe {
        /// The edge whose downstream node must grow its scope.
        edge: EdgeRef,
        /// The additional packet space to count.
        space: PortablePred,
    },
    /// Acknowledges receipt of the data envelope with sequence number
    /// `of` on the reverse channel. Generated and consumed entirely by
    /// the reliability layer — verifiers never see acks.
    Ack {
        /// The acknowledged sequence number.
        of: u64,
    },
}

impl Payload {
    /// The DPVNet edge the payload concerns (`None` for acks, which
    /// concern a channel, not an edge).
    pub fn edge(&self) -> Option<EdgeRef> {
        match self {
            Payload::Update { edge, .. } | Payload::Subscribe { edge, .. } => Some(*edge),
            Payload::Ack { .. } => None,
        }
    }

    /// Is this a reliability-layer ack (as opposed to verifier data)?
    pub fn is_ack(&self) -> bool {
        matches!(self, Payload::Ack { .. })
    }

    /// Approximate serialized size in bytes (for overhead accounting).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Update {
                withdrawn, results, ..
            } => {
                8 + withdrawn
                    .iter()
                    .map(PortablePred::wire_bytes)
                    .sum::<usize>()
                    + results
                        .iter()
                        .map(|(p, c)| p.wire_bytes() + 4 * c.len() * c.dim().max(1))
                        .sum::<usize>()
            }
            Payload::Subscribe { space, .. } => 8 + space.wire_bytes(),
            Payload::Ack { .. } => 8,
        }
    }
}

/// A device-to-device message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending device.
    pub from: DeviceId,
    /// Receiving device.
    pub to: DeviceId,
    /// Channel sequence number, per directed `(from, to)` pair. `0`
    /// means "unsequenced": verifiers always emit 0 and the reliability
    /// layer assigns 1, 2, … at send time. Acks carry 0 themselves and
    /// name the acknowledged data seq in [`Payload::Ack`].
    pub seq: u64,
    /// Causal trace id: every envelope emitted while processing a
    /// given FIB update (or while relaying its consequences) carries
    /// the same id, so telemetry can reconstruct the whole UPDATE wave
    /// across devices. `0` means "untraced". Observability metadata
    /// only — excluded from [`Envelope::wire_bytes`] and never read by
    /// the protocol itself.
    pub trace: u64,
    /// Epoch fence: the topology generation the sender was planned
    /// against when it emitted this envelope. Unlike [`Envelope::trace`]
    /// this *is* protocol-relevant — after a topology churn bumps the
    /// generation, verifiers discard in-flight envelopes stamped with a
    /// superseded epoch instead of letting them corrupt the new round,
    /// and the reliability layer drops superseded retransmission
    /// entries. `0` is the pre-churn epoch every run starts in.
    pub epoch: u64,
    /// The DVM payload.
    pub payload: Payload,
}

impl Envelope {
    /// A fresh, unsequenced data envelope (the form verifiers emit).
    pub fn data(from: DeviceId, to: DeviceId, payload: Payload) -> Envelope {
        Envelope {
            from,
            to,
            seq: 0,
            trace: 0,
            epoch: 0,
            payload,
        }
    }

    /// Approximate serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + self.payload.wire_bytes()
    }
}

/// A sink for outgoing envelopes.
///
/// Every [`crate::dvm::DeviceVerifier`] entry point writes the messages
/// it generates into an `Outbox` instead of returning a `Vec<Envelope>`,
/// so runtimes hand their own queue (a `Vec`, a `VecDeque`, a transport
/// adapter) straight to the verifier and batching layers stop
/// concatenating intermediate vectors.
pub trait Outbox {
    /// Accepts one outgoing envelope.
    fn push(&mut self, env: Envelope);
}

impl Outbox for Vec<Envelope> {
    fn push(&mut self, env: Envelope) {
        Vec::push(self, env);
    }
}

impl Outbox for std::collections::VecDeque<Envelope> {
    fn push(&mut self, env: Envelope) {
        self.push_back(env);
    }
}

tulkun_json::impl_json_object!(EdgeRef { up, down });

impl ToJson for Payload {
    fn to_json(&self) -> Json {
        match self {
            Payload::Update {
                edge,
                withdrawn,
                results,
            } => Json::Object(vec![(
                "Update".to_string(),
                Json::Object(vec![
                    ("edge".to_string(), edge.to_json()),
                    ("withdrawn".to_string(), withdrawn.to_json()),
                    ("results".to_string(), results.to_json()),
                ]),
            )]),
            Payload::Subscribe { edge, space } => Json::Object(vec![(
                "Subscribe".to_string(),
                Json::Object(vec![
                    ("edge".to_string(), edge.to_json()),
                    ("space".to_string(), space.to_json()),
                ]),
            )]),
            Payload::Ack { of } => Json::Object(vec![(
                "Ack".to_string(),
                Json::Object(vec![("of".to_string(), of.to_json())]),
            )]),
        }
    }
}

impl FromJson for Payload {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(u) = v.get("Update") {
            let field = |name: &str| u.get(name).ok_or_else(|| JsonError::missing_field(name));
            return Ok(Payload::Update {
                edge: FromJson::from_json(field("edge")?)?,
                withdrawn: FromJson::from_json(field("withdrawn")?)?,
                results: FromJson::from_json(field("results")?)?,
            });
        }
        if let Some(s) = v.get("Subscribe") {
            let field = |name: &str| s.get(name).ok_or_else(|| JsonError::missing_field(name));
            return Ok(Payload::Subscribe {
                edge: FromJson::from_json(field("edge")?)?,
                space: FromJson::from_json(field("space")?)?,
            });
        }
        if let Some(a) = v.get("Ack") {
            let of = a.get("of").ok_or_else(|| JsonError::missing_field("of"))?;
            return Ok(Payload::Ack {
                of: FromJson::from_json(of)?,
            });
        }
        Err(JsonError::expected("DVM payload", v))
    }
}

tulkun_json::impl_json_object!(Envelope {
    from,
    to,
    seq,
    trace,
    epoch,
    payload
});

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_bdd::{serial, BddManager};

    #[test]
    fn payload_round_trips_through_json() {
        let mut m = BddManager::new(8);
        let x = m.var(2);
        let enc = serial::export(&m, x);
        let env = Envelope {
            from: DeviceId(1),
            to: DeviceId(2),
            seq: 7,
            trace: 11,
            epoch: 3,
            payload: Payload::Update {
                edge: EdgeRef {
                    up: NodeId(0),
                    down: NodeId(3),
                },
                withdrawn: vec![enc.clone()],
                results: vec![(enc, Counts::scalars([0, 1]))],
            },
        };
        let json = tulkun_json::to_string(&env);
        let back: Envelope = tulkun_json::from_str(&json).unwrap();
        assert_eq!(back, env);
        assert!(env.wire_bytes() > 0);
    }

    #[test]
    fn ack_round_trips_and_is_small() {
        let env = Envelope::data(DeviceId(2), DeviceId(1), Payload::Ack { of: 42 });
        assert!(env.payload.is_ack());
        assert!(env.payload.edge().is_none());
        let json = tulkun_json::to_string(&env);
        let back: Envelope = tulkun_json::from_str(&json).unwrap();
        assert_eq!(back, env);
        // Acks must stay tiny: they are pure protocol overhead.
        assert!(env.wire_bytes() <= 16);
    }
}
