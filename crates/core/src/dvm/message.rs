//! DVM message formats (§5.2).
//!
//! Messages travel between the verifiers of neighboring devices over
//! reliable, in-order channels (TCP in the paper's deployment; channels
//! in the simulator and the tokio runner). Predicates cross device
//! boundaries as [`PortablePred`]s because every device owns a private
//! BDD manager.

use crate::count::Counts;
use crate::dpvnet::NodeId;
use serde::{Deserialize, Serialize};
use tulkun_bdd::serial::PortablePred;
use tulkun_netmodel::DeviceId;

/// A directed DPVNet edge `(upstream node, downstream node)` — the
/// *intended link* of an UPDATE message. Counting results flow from
/// `down`'s device to `up`'s device, against the edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Upstream node (receiver of counting results).
    pub up: NodeId,
    /// Downstream node (sender of counting results).
    pub down: NodeId,
}

/// DVM message payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Counting results from a downstream node (§5.2). Invariant (the
    /// *UPDATE message principle*): the union of `withdrawn` equals the
    /// union of the predicates in `results`.
    Update {
        /// The intended link.
        edge: EdgeRef,
        /// Predicates whose previous results are obsolete.
        withdrawn: Vec<PortablePred>,
        /// The incoming counting results.
        results: Vec<(PortablePred, Counts)>,
    },
    /// Ask the downstream device to extend its counting scope for this
    /// edge (packet transformation support, §5.2).
    Subscribe {
        /// The edge whose downstream node must grow its scope.
        edge: EdgeRef,
        /// The additional packet space to count.
        space: PortablePred,
    },
}

impl Payload {
    /// The DPVNet edge the payload concerns.
    pub fn edge(&self) -> EdgeRef {
        match self {
            Payload::Update { edge, .. } | Payload::Subscribe { edge, .. } => *edge,
        }
    }

    /// Approximate serialized size in bytes (for overhead accounting).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Update {
                withdrawn, results, ..
            } => {
                8 + withdrawn
                    .iter()
                    .map(PortablePred::wire_bytes)
                    .sum::<usize>()
                    + results
                        .iter()
                        .map(|(p, c)| p.wire_bytes() + 4 * c.len() * c.dim().max(1))
                        .sum::<usize>()
            }
            Payload::Subscribe { space, .. } => 8 + space.wire_bytes(),
        }
    }
}

/// A device-to-device message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending device.
    pub from: DeviceId,
    /// Receiving device.
    pub to: DeviceId,
    /// The DVM payload.
    pub payload: Payload,
}

impl Envelope {
    /// Approximate serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + self.payload.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_bdd::{serial, BddManager};

    #[test]
    fn payload_round_trips_through_json() {
        let mut m = BddManager::new(8);
        let x = m.var(2);
        let enc = serial::export(&m, x);
        let env = Envelope {
            from: DeviceId(1),
            to: DeviceId(2),
            payload: Payload::Update {
                edge: EdgeRef {
                    up: NodeId(0),
                    down: NodeId(3),
                },
                withdrawn: vec![enc.clone()],
                results: vec![(enc, Counts::scalars([0, 1]))],
            },
        };
        let json = serde_json::to_string(&env).unwrap();
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
        assert!(env.wire_bytes() > 0);
    }
}
