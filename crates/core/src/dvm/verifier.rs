//! The on-device verifier: executes counting tasks and speaks DVM (§5).
//!
//! Every device runs one `DeviceVerifier` holding:
//!
//! * a private predicate backend (a BDD manager, a Delta-net atom
//!   partition, or an interval-set universe — see
//!   [`tulkun_predicate::PredicateBackend`]) and the device's **LEC
//!   table** (predicate → action classes built from the FIB, §5.1);
//! * per DPVNet node mapped to this device: `CIBIn` (latest results per
//!   downstream neighbor), `LocCIB` (this node's counting results) and
//!   `CIBOut` (what upstream neighbors currently believe);
//! * the counting scope (invariant packet space, grown by `SUBSCRIBE`
//!   messages when upstream devices rewrite headers).
//!
//! The verifier is generic over the backend ([`DeviceVerifierIn`]);
//! wire messages always carry the canonical [`PortablePred`] ROBDD
//! encoding, so verifiers running different backends interoperate
//! byte-for-byte (the wire-format invariant of `tulkun-predicate`).
//! [`DeviceVerifier`] is the runtime-selected form used by the
//! substrates.
//!
//! Deviation from §5.2, documented in DESIGN.md: affected `LocCIB`
//! entries are recomputed from the stored `CIBIn` tables instead of
//! applying the inverse-⊗/⊕ trick; the two are equivalent because
//! `CIBIn` always holds the latest complete results (the UPDATE message
//! principle).

use crate::count::{Counts, ReduceMode};
use crate::dpvnet::NodeId;
use crate::dvm::message::{EdgeRef, Envelope, Outbox, Payload};
use crate::planner::NodeTask;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;
use tulkun_bdd::serial::PortablePred;
use tulkun_bdd::HeaderLayout;
use tulkun_netmodel::fib::{Action, ActionType, Fib, NextHop, Rewrite};
use tulkun_netmodel::network::RuleUpdate;
use tulkun_netmodel::DeviceId;
use tulkun_predicate::{BackendKind, DynBackend, PredicateBackend};
use tulkun_telemetry::{Telemetry, CIB_RECOMPUTE_NS, FIB_BATCH_NS, LEC_DELTA_NS};

/// How destination nodes count their own delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DestMode {
    /// The paper's semantics: a destination node contributes one copy
    /// axiomatically ("one copy will be sent to the correct external
    /// ports", §2.2.2).
    #[default]
    Axiomatic,
    /// Stricter: the destination contributes one copy only for packets
    /// its FIB actually delivers out an external port.
    CheckDelivery,
}

/// Static configuration shared by all verifiers of one plan.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Number of path expressions.
    pub n_exprs: usize,
    /// Track the escape component (`covered` behaviors).
    pub track_escapes: bool,
    /// Minimal-counting-information reduction (Proposition 1).
    pub reduce: ReduceMode,
    /// Destination-delivery semantics.
    pub dest_mode: DestMode,
}

impl VerifierConfig {
    /// Outcome-vector dimension.
    pub fn dim(&self) -> usize {
        self.n_exprs + usize::from(self.track_escapes)
    }
}

/// Counters for the overhead evaluation (§9.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifierStats {
    /// UPDATE messages handled.
    pub updates_processed: u64,
    /// SUBSCRIBE messages handled.
    pub subscribes_processed: u64,
    /// Messages emitted.
    pub messages_sent: u64,
    /// Bytes emitted (wire estimate).
    pub bytes_sent: u64,
    /// Full or incremental LEC (re)builds.
    pub lec_rebuilds: u64,
    /// Envelopes discarded by the epoch fence (stamped with a
    /// superseded topology generation).
    pub epoch_discarded: u64,
}

#[derive(Debug)]
struct NodeState<P> {
    task: NodeTask,
    /// The node's base packet space: the space of the intent (or plan)
    /// that installed it. Nodes of one verifier may belong to different
    /// intents with different packet spaces; `scope` always starts at —
    /// and a reboot resets it to — this base.
    base: P,
    /// Packet sets this node counts for (base space + subscriptions).
    scope: P,
    /// Indices of LEC classes intersecting `scope` — the only classes
    /// counting ever touches (devices hold thousands of classes, an
    /// invariant's packet space usually overlaps a handful).
    relevant: Vec<usize>,
    /// Latest results per downstream node (predicates in downstream
    /// header space). Missing coverage means count zero.
    cib_in: BTreeMap<NodeId, Vec<(P, Counts)>>,
    /// This node's counting results (partitions `scope`).
    loc_cib: Vec<(P, Counts)>,
    /// What upstream currently believes (reduced counts; partitions
    /// `scope`).
    cib_out: Vec<(P, Counts)>,
    /// Scope already requested from each downstream device.
    sent_subs: BTreeMap<NodeId, P>,
}

/// The event-driven on-device verifier, generic over the predicate
/// backend `B`. See [`DeviceVerifier`] for the runtime-selected form.
pub struct DeviceVerifierIn<B: PredicateBackend> {
    dev: DeviceId,
    backend: B,
    fib: Fib,
    lecs: Vec<(B::Pred, Action)>,
    cfg: VerifierConfig,
    packet_space: B::Pred,
    nodes: BTreeMap<NodeId, NodeState<B::Pred>>,
    /// Neighbor devices currently unreachable (failed adjacent links).
    down_neighbors: BTreeSet<DeviceId>,
    /// Causal trace id of the event currently being processed; stamped
    /// onto every emitted envelope (see [`Envelope::trace`]).
    trace: u64,
    /// Topology generation this verifier is planned against; stamped
    /// onto every emitted envelope (see [`Envelope::epoch`]). Incoming
    /// envelopes from an older generation are discarded at the fence.
    epoch: u64,
    /// Telemetry sink (disabled handle by default — every record call
    /// is then a single branch).
    tel: Arc<Telemetry>,
    /// Statistics for overhead benchmarks.
    pub stats: VerifierStats,
}

/// The on-device verifier with its backend chosen at runtime (the form
/// every substrate instantiates).
pub type DeviceVerifier = DeviceVerifierIn<DynBackend>;

/// Builds a [`DeviceVerifierIn`]: mandatory device/FIB/packet-space
/// context plus the optional parts (planner tasks, a pre-built LEC
/// table, a destination-mode override).
///
/// One device's LEC table is shared by all its tasks across invariants
/// (§8 — re-deriving it per invariant would be wasted work); seed it
/// with [`VerifierBuilderIn::lecs`]. Cached tables are stored in the
/// backend-neutral wire encoding, so a table exported under one backend
/// seeds a verifier running any other. The caller must guarantee the
/// exported table matches `fib`.
pub struct VerifierBuilderIn<'a, B: PredicateBackend> {
    backend: B,
    dev: DeviceId,
    fib: Fib,
    packet_space: &'a PortablePred,
    cfg: VerifierConfig,
    tasks: Vec<NodeTask>,
    lecs: Option<&'a [(PortablePred, Action)]>,
    tel: Option<Arc<Telemetry>>,
}

/// Builder for the runtime-selected [`DeviceVerifier`].
pub type VerifierBuilder<'a> = VerifierBuilderIn<'a, DynBackend>;

impl<'a, B: PredicateBackend> VerifierBuilderIn<'a, B> {
    /// The counting tasks the planner assigned to this device.
    pub fn tasks(mut self, tasks: Vec<NodeTask>) -> Self {
        self.tasks = tasks;
        self
    }

    /// Seeds the LEC table from a previously exported one instead of
    /// deriving it from the FIB.
    pub fn lecs(mut self, lecs: &'a [(PortablePred, Action)]) -> Self {
        self.lecs = Some(lecs);
        self
    }

    /// Seeds the LEC table when a cached export is available; a `None`
    /// falls back to deriving from the FIB.
    pub fn maybe_lecs(mut self, lecs: Option<&'a [(PortablePred, Action)]>) -> Self {
        self.lecs = lecs;
        self
    }

    /// Overrides the destination-delivery semantics of the config.
    pub fn dest_mode(mut self, mode: DestMode) -> Self {
        self.cfg.dest_mode = mode;
        self
    }

    /// Attaches a telemetry handle; omitted, the verifier uses the
    /// disabled handle (recording is a no-op).
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.tel = Some(tel);
        self
    }

    /// Builds the verifier (computing the LEC table unless one was
    /// provided).
    pub fn build(self) -> DeviceVerifierIn<B> {
        let VerifierBuilderIn {
            mut backend,
            dev,
            fib,
            packet_space,
            cfg,
            tasks,
            lecs,
            tel,
        } = self;
        let ps = backend.import(packet_space);
        let dim = cfg.dim();
        let mut nodes = BTreeMap::new();
        for task in tasks {
            assert_eq!(task.dev, dev, "task assigned to the wrong device");
            let mut devs: Vec<DeviceId> = task.downstream.iter().map(|(_, d)| *d).collect();
            devs.sort();
            let uniq = devs.windows(2).all(|w| w[0] != w[1]);
            debug_assert!(uniq, "downstream devices of one node must be distinct");
            nodes.insert(
                task.node,
                NodeState {
                    task,
                    base: ps,
                    scope: ps,
                    relevant: Vec::new(),
                    cib_in: BTreeMap::new(),
                    loc_cib: vec![(ps, Counts::zero(dim))],
                    cib_out: vec![(ps, Counts::zero(dim))],
                    sent_subs: BTreeMap::new(),
                },
            );
        }
        let mut v = DeviceVerifierIn {
            dev,
            backend,
            fib,
            lecs: Vec::new(),
            cfg,
            packet_space: ps,
            nodes,
            down_neighbors: BTreeSet::new(),
            trace: 0,
            epoch: 0,
            tel: tel.unwrap_or_else(Telemetry::disabled),
            stats: VerifierStats::default(),
        };
        match lecs {
            Some(lecs) => {
                v.lecs = lecs
                    .iter()
                    .map(|(p, a)| (v.backend.import(p), a.clone()))
                    .collect();
                v.refresh_relevance();
            }
            None => v.rebuild_lecs(),
        }
        v
    }
}

impl<'a> VerifierBuilder<'a> {
    /// Swaps the predicate backend for the given (concrete) kind.
    /// Resolve [`BackendKind::Auto`] via [`BackendKind::resolve`]
    /// before calling; passing it here panics.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        let layout = *self.backend.layout();
        self.backend = DynBackend::new(kind, layout);
        self
    }
}

impl DeviceVerifier {
    /// Starts building a verifier for `dev` with the default (BDD)
    /// backend; select another with [`VerifierBuilder::backend`].
    /// `packet_space` is the invariant's packet space; tasks, cached
    /// LECs and a dest-mode override are supplied on the returned
    /// [`VerifierBuilder`].
    pub fn builder(
        dev: DeviceId,
        layout: HeaderLayout,
        fib: Fib,
        packet_space: &PortablePred,
        cfg: VerifierConfig,
    ) -> VerifierBuilder<'_> {
        DeviceVerifierIn::builder_in(
            DynBackend::new(BackendKind::Bdd, layout),
            dev,
            fib,
            packet_space,
            cfg,
        )
    }
}

impl<B: PredicateBackend> DeviceVerifierIn<B> {
    /// Starts building a verifier for `dev` over an explicit backend
    /// instance (the fully generic entry point; [`DeviceVerifier`]
    /// users go through [`DeviceVerifier::builder`]).
    pub fn builder_in(
        backend: B,
        dev: DeviceId,
        fib: Fib,
        packet_space: &PortablePred,
        cfg: VerifierConfig,
    ) -> VerifierBuilderIn<'_, B> {
        VerifierBuilderIn {
            backend,
            dev,
            fib,
            packet_space,
            cfg,
            tasks: Vec::new(),
            lecs: None,
            tel: None,
        }
    }

    /// Exports the LEC table for reuse by another verifier of the same
    /// device (see [`VerifierBuilderIn::lecs`]). The export is in the
    /// canonical wire encoding, hence backend-neutral.
    pub fn export_lecs(&self) -> Vec<(PortablePred, Action)> {
        self.lecs
            .iter()
            .map(|(p, a)| (self.backend.export(*p), a.clone()))
            .collect()
    }

    /// The device this verifier runs on.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// The predicate backend in use.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Short name of the predicate backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Sets the causal trace id stamped onto subsequently emitted
    /// envelopes. Runtimes call this before injecting an internal
    /// event (FIB batch, link event, reboot, replay) so the whole
    /// resulting UPDATE wave shares one id; incoming envelopes set it
    /// automatically in [`DeviceVerifierIn::handle`].
    pub fn set_trace(&mut self, trace: u64) {
        self.trace = trace;
    }

    /// The causal trace id currently in effect.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Sets the topology generation this verifier is planned against.
    /// Runtimes call this when a churn bumps the epoch, *before*
    /// applying re-planned tasks, so every resulting emission carries
    /// the new generation.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The topology generation currently in effect.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the current trace id and epoch, accounts stats and
    /// forwards `env` to `out`. Every data envelope leaves through here.
    fn emit(&mut self, mut env: Envelope, out: &mut dyn Outbox) {
        env.trace = self.trace;
        env.epoch = self.epoch;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += env.wire_bytes() as u64;
        out.push(env);
    }

    /// DPVNet nodes hosted here.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Current LEC count (§9.4 initialization overhead).
    pub fn lec_count(&self) -> usize {
        self.lecs.len()
    }

    /// Backend memory proxy for §9.4: BDD nodes, stored intervals, or
    /// atoms + list entries, depending on the representation.
    pub fn mem_units(&self) -> usize {
        self.backend.mem_units()
    }

    /// Backend memory proxy for §9.4 (historical name; same value as
    /// [`DeviceVerifierIn::mem_units`]).
    pub fn bdd_nodes(&self) -> usize {
        self.backend.mem_units()
    }

    fn rebuild_lecs(&mut self) {
        self.stats.lec_rebuilds += 1;
        self.lecs = tulkun_predicate::lecs(&self.fib, &mut self.backend);
        self.refresh_relevance();
    }

    /// Recomputes each node's relevant-LEC index after the LEC table or
    /// a scope changed.
    fn refresh_relevance(&mut self) {
        let lecs = self.lecs.clone();
        let ids = self.node_ids();
        for id in ids {
            let scope = self.nodes[&id].scope;
            let relevant = lecs
                .iter()
                .enumerate()
                .filter(|(_, (p, _))| self.backend.intersects(*p, scope))
                .map(|(i, _)| i)
                .collect();
            self.nodes.get_mut(&id).unwrap().relevant = relevant;
        }
    }

    /// The LEC classes that can matter for one node (those intersecting
    /// its scope).
    fn relevant_lecs(&self, node: NodeId) -> Vec<(B::Pred, Action)> {
        let st = &self.nodes[&node];
        st.relevant.iter().map(|&i| self.lecs[i].clone()).collect()
    }

    /// Initialization (burst start): computes the LEC table and the
    /// initial counting results; writes the initial UPDATE/SUBSCRIBE
    /// messages into `out` (destination devices speak first — everyone
    /// else's results stay at the implicit zero).
    pub fn init(&mut self, out: &mut dyn Outbox) {
        let ids = self.node_ids();
        for id in ids {
            let scope = self.nodes[&id].scope;
            self.emit_subscriptions(id, scope, out);
            self.recompute_node(id, scope, out);
        }
    }

    /// Handles one incoming DVM message, writing any responses to `out`.
    ///
    /// The **epoch fence**: an envelope stamped with a generation older
    /// than this verifier's is in-flight residue of a superseded
    /// topology and is discarded unprocessed — its counting results
    /// describe a DPVNet that no longer exists, and applying them would
    /// corrupt the new round.
    pub fn handle(&mut self, env: &Envelope, out: &mut dyn Outbox) {
        assert_eq!(env.to, self.dev, "message routed to the wrong device");
        if env.epoch < self.epoch {
            self.stats.epoch_discarded += 1;
            self.tel.count(self.dev, "tulkun_epoch_discarded_total", 1);
            return;
        }
        self.trace = env.trace;
        match &env.payload {
            Payload::Update {
                edge,
                withdrawn,
                results,
            } => {
                self.stats.updates_processed += 1;
                self.tel.count(self.dev, "tulkun_dvm_updates_total", 1);
                self.handle_update(*edge, withdrawn, results, out);
            }
            Payload::Subscribe { edge, space } => {
                self.stats.subscribes_processed += 1;
                self.tel.count(self.dev, "tulkun_dvm_subscribes_total", 1);
                self.handle_subscribe(*edge, space, out);
            }
            // Acks belong to the reliability layer; a verifier that sees
            // one (e.g. over a perfect transport) ignores it.
            Payload::Ack { .. } => {}
        }
    }

    fn handle_update(
        &mut self,
        edge: EdgeRef,
        withdrawn: &[PortablePred],
        results: &[(PortablePred, Counts)],
        out: &mut dyn Outbox,
    ) {
        let node = edge.up;
        let v = edge.down;
        if !self.nodes.contains_key(&node) {
            return; // stale message after a plan change
        }
        // Step 1: update CIBIn(v).
        let mut w = self.backend.falsum();
        for p in withdrawn {
            let p = self.backend.import(p);
            w = self.backend.or(w, p);
        }
        let mut incoming = Vec::with_capacity(results.len());
        for (p, c) in results {
            let p = self.backend.import(p);
            incoming.push((p, c.clone()));
        }
        {
            let st = self.nodes.get_mut(&node).unwrap();
            let entry = st.cib_in.entry(v).or_default();
            let be = &mut self.backend;
            entry.retain_mut(|(p, _)| {
                *p = be.diff(*p, w);
                !be.is_false(*p)
            });
            entry.extend(incoming);
        }
        // Step 2 + 3: recompute the affected region of LocCIB and emit.
        // An edge absent from the current task (it may have been
        // deactivated by a fault-scene switch) still refreshes CIBIn but
        // affects nothing.
        let Some(vdev) = self.nodes[&node]
            .task
            .downstream
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, d)| *d)
        else {
            return;
        };
        let region = self.affected_region(node, vdev, w);
        self.recompute_node(node, region, out);
    }

    /// Upstream region affected by a change of downstream predicates `w`
    /// at neighbor device `vdev` (the causality lookup of §5.2): LEC
    /// classes forwarding to `vdev`, pulled back through any rewrite.
    fn affected_region(&mut self, node: NodeId, vdev: DeviceId, w: B::Pred) -> B::Pred {
        let mut region = self.backend.falsum();
        let lecs = self.relevant_lecs(node);
        for (pred, action) in &lecs {
            let Action::Forward {
                next_hops, rewrite, ..
            } = action
            else {
                continue;
            };
            if !next_hops.contains(&NextHop::Device(vdev)) {
                continue;
            }
            let wback = match rewrite {
                Some(rw) => self.preimage(w, rw),
                None => w,
            };
            let hit = self.backend.and(*pred, wback);
            region = self.backend.or(region, hit);
        }
        region
    }

    fn handle_subscribe(&mut self, edge: EdgeRef, space: &PortablePred, out: &mut dyn Outbox) {
        let node = edge.down;
        if !self.nodes.contains_key(&node) {
            return;
        }
        let s = self.backend.import(space);
        let scope = self.nodes[&node].scope;
        let grow = self.backend.diff(s, scope);
        if self.backend.is_false(grow) {
            return;
        }
        let zero = self.zero();
        {
            let be = &mut self.backend;
            let st = self.nodes.get_mut(&node).unwrap();
            st.scope = be.or(st.scope, grow);
            // The new region starts at the implicit zero on both tables.
            st.loc_cib.push((grow, zero.clone()));
            st.cib_out.push((grow, zero));
        }
        // The grown scope may make more LEC classes relevant.
        {
            let lecs = self.lecs.clone();
            let scope = self.nodes[&node].scope;
            let relevant: Vec<usize> = lecs
                .iter()
                .enumerate()
                .filter(|(_, (p, _))| self.backend.intersects(*p, scope))
                .map(|(i, _)| i)
                .collect();
            self.nodes.get_mut(&node).unwrap().relevant = relevant;
        }
        self.emit_subscriptions(node, grow, out);
        self.recompute_node(node, grow, out);
    }

    /// Applies one FIB rule update (internal event, §5.2), writing the
    /// resulting messages to `out`. Single-update form of
    /// [`DeviceVerifierIn::handle_fib_batch`].
    pub fn handle_fib_update(&mut self, update: &RuleUpdate, out: &mut dyn Outbox) {
        self.handle_fib_batch(std::slice::from_ref(update), out);
    }

    /// Applies a whole burst of FIB rule updates for this device with a
    /// *single* LEC delta and one CIB recompute per affected node,
    /// emitting one coalesced UPDATE per upstream edge instead of one
    /// per rule. The LEC table is maintained *incrementally*: only the
    /// updated rules' match regions can change class, so the table is
    /// re-derived inside the union of those regions and spliced in — the
    /// §5.1 "maintain a table of a minimal number of LECs" behaviour,
    /// without a full rebuild.
    ///
    /// The batch leaves the verifier in exactly the state sequential
    /// application would: the FIB mutations happen in order, and the LEC
    /// splice derives the *final* classes inside the touched region.
    pub fn handle_fib_batch(&mut self, updates: &[RuleUpdate], out: &mut dyn Outbox) {
        if updates.is_empty() {
            return;
        }
        if !self.tel.is_enabled() {
            return self.fib_batch_inner(updates, out);
        }
        let begin = self.tel.host_tick();
        let wall = Instant::now();
        self.fib_batch_inner(updates, out);
        let dur = (wall.elapsed().as_nanos() as u64).max(1);
        let tel = self.tel.clone();
        tel.span(self.dev, "fib.batch", "dvm", begin, dur, self.trace);
        tel.observe(self.dev, &FIB_BATCH_NS, dur);
        tel.count(self.dev, "tulkun_fib_updates_total", updates.len() as u64);
    }

    fn fib_batch_inner(&mut self, updates: &[RuleUpdate], out: &mut dyn Outbox) {
        // Apply every FIB mutation in order, unioning the touched match
        // regions.
        let mut m = self.backend.falsum();
        for update in updates {
            assert_eq!(update.device(), self.dev);
            let matches = match update {
                RuleUpdate::Insert { rule, .. } => {
                    self.fib.insert(rule.clone());
                    rule.matches
                }
                RuleUpdate::Remove {
                    priority, matches, ..
                } => {
                    self.fib.remove(*priority, matches);
                    *matches
                }
            };
            let mp = self.backend.match_pred(&matches);
            m = self.backend.or(m, mp);
        }
        self.stats.lec_rebuilds += 1;
        let lec_timer = self
            .tel
            .is_enabled()
            .then(|| (self.tel.host_tick(), Instant::now()));

        // Old effective actions inside the region (for the changed-region
        // diff), keyed by action.
        let mut old_in: Vec<(B::Pred, Action)> = Vec::new();
        for (p, a) in &self.lecs.clone() {
            let i = self.backend.and(*p, m);
            if !self.backend.is_false(i) {
                old_in.push((i, a.clone()));
            }
        }
        // Splice: strip the region from every class, re-derive classes
        // inside it, merge same-action classes back.
        let fresh = tulkun_predicate::lecs_in(&self.fib, m, &mut self.backend);
        {
            let be = &mut self.backend;
            self.lecs.retain_mut(|(p, _)| {
                *p = be.diff(*p, m);
                !be.is_false(*p)
            });
        }
        let mut changed = self.backend.falsum();
        for (fp, fa) in fresh {
            // Changed where the new action differs from the old one.
            for (op, oa) in &old_in {
                if *oa == fa {
                    continue;
                }
                let i = self.backend.and(*op, fp);
                changed = self.backend.or(changed, i);
            }
            match self.lecs.iter_mut().find(|(_, a)| *a == fa) {
                Some((p, _)) => *p = self.backend.or(*p, fp),
                None => self.lecs.push((fp, fa)),
            }
        }
        self.refresh_relevance();
        if let Some((begin, wall)) = lec_timer {
            let dur = (wall.elapsed().as_nanos() as u64).max(1);
            let tel = self.tel.clone();
            tel.span(self.dev, "lec.delta", "dvm", begin, dur, self.trace);
            tel.observe(self.dev, &LEC_DELTA_NS, dur);
        }
        if self.backend.is_false(changed) {
            return;
        }
        let ids = self.node_ids();
        for id in ids {
            self.emit_subscriptions(id, changed, out);
            self.recompute_node(id, changed, out);
        }
    }

    /// Swaps this device's tasks for a new fault-scene view (§6: after
    /// link-state flooding, verifiers recount along the DPVNet subgraph
    /// of the current scene without contacting the planner). `CIBOut` is
    /// preserved — it still reflects what upstream neighbors believe, so
    /// diff-based UPDATEs stay correct — and `CIBIn` keeps entries for
    /// surviving downstream nodes.
    pub fn set_tasks(&mut self, tasks: Vec<NodeTask>, out: &mut dyn Outbox) {
        let base = self.packet_space;
        self.install_tasks_pred(tasks, base, out);
    }

    /// Installs (or re-tasks) DPVNet nodes whose *base packet space* is
    /// `space` — the per-intent form of [`DeviceVerifierIn::set_tasks`].
    /// Existing nodes keep the base they were installed with (only
    /// their task — upstream/downstream edges, accept flags — is
    /// replaced); new nodes start counting over `space`.
    pub fn install_tasks(
        &mut self,
        tasks: Vec<NodeTask>,
        space: &PortablePred,
        out: &mut dyn Outbox,
    ) {
        let base = self.backend.import(space);
        self.install_tasks_pred(tasks, base, out);
    }

    fn install_tasks_pred(&mut self, tasks: Vec<NodeTask>, base: B::Pred, out: &mut dyn Outbox) {
        let mut touched = Vec::with_capacity(tasks.len());
        for task in tasks {
            assert_eq!(task.dev, self.dev);
            let node = task.node;
            let keep: Vec<NodeId> = task.downstream.iter().map(|(n, _)| *n).collect();
            if let Some(st) = self.nodes.get_mut(&node) {
                st.task = task;
                st.cib_in.retain(|n, _| keep.contains(n));
            } else {
                let zero = Counts::zero(self.cfg.dim());
                self.nodes.insert(
                    node,
                    NodeState {
                        task,
                        base,
                        scope: base,
                        relevant: Vec::new(),
                        cib_in: BTreeMap::new(),
                        loc_cib: vec![(base, zero.clone())],
                        cib_out: vec![(base, zero)],
                        sent_subs: BTreeMap::new(),
                    },
                );
            }
            touched.push(node);
        }
        // New nodes start with an empty relevance index; recomputing
        // through it would see no LEC classes and silently zero the
        // node out. Rebuild relevance before the first recount.
        self.refresh_relevance();
        for node in touched {
            let scope = self.nodes[&node].scope;
            self.emit_subscriptions(node, scope, out);
            self.recompute_node(node, scope, out);
        }
    }

    /// Drops DPVNet nodes a re-plan no longer assigns to this device
    /// (their paths vanished with the churned topology). In-flight
    /// messages naming a removed node are tolerated by the stale-node
    /// guard in UPDATE handling.
    pub fn remove_nodes(&mut self, nodes: &[NodeId]) {
        for n in nodes {
            self.nodes.remove(n);
        }
    }

    /// Re-announces this device's durable protocol state to *all*
    /// neighbors after an epoch bump: a full-scope UPDATE carrying the
    /// current `CIBOut` on every upstream edge (the `withdrawn = scope`
    /// form makes it idempotent) and a SUBSCRIBE re-stating every grown
    /// scope on every downstream edge. The epoch fence dropped whatever
    /// was in flight when the topology churned; re-announcing repairs
    /// exactly the `CIBIn`/scope entries those lost messages carried, so
    /// the new epoch re-converges to the fixpoint of a fresh plan.
    pub fn reannounce(&mut self, out: &mut dyn Outbox) {
        let ids = self.node_ids();
        for node in ids {
            let st = &self.nodes[&node];
            let ups: Vec<(NodeId, DeviceId)> = st.task.upstream.clone();
            if !ups.is_empty() {
                let withdrawn = vec![self.backend.export(st.scope)];
                let results: Vec<(PortablePred, Counts)> = st
                    .cib_out
                    .iter()
                    .map(|(p, c)| (self.backend.export(*p), c.clone()))
                    .collect();
                for (un, ud) in ups {
                    let env = Envelope::data(
                        self.dev,
                        ud,
                        Payload::Update {
                            edge: EdgeRef { up: un, down: node },
                            withdrawn: withdrawn.clone(),
                            results: results.clone(),
                        },
                    );
                    self.emit(env, out);
                }
            }
            let downs: Vec<(NodeId, DeviceId, B::Pred)> = self.nodes[&node]
                .task
                .downstream
                .iter()
                .filter_map(|(n, d)| self.nodes[&node].sent_subs.get(n).map(|s| (*n, *d, *s)))
                .collect();
            for (vn, vd, space) in downs {
                if self.backend.is_false(space) {
                    continue;
                }
                let env = Envelope::data(
                    self.dev,
                    vd,
                    Payload::Subscribe {
                        edge: EdgeRef { up: node, down: vn },
                        space: self.backend.export(space),
                    },
                );
                self.emit(env, out);
            }
        }
    }

    /// Marks the link to a neighbor device down/up and recounts (§6:
    /// predicates forwarded over a failed link count zero).
    pub fn handle_link_event(&mut self, neighbor: DeviceId, up: bool, out: &mut dyn Outbox) {
        let changed = if up {
            self.down_neighbors.remove(&neighbor)
        } else {
            self.down_neighbors.insert(neighbor)
        };
        if !changed {
            return;
        }
        // Region: everything forwarded toward that neighbor (per node,
        // over its relevant classes only).
        let ids = self.node_ids();
        for id in ids {
            let mut region = self.backend.falsum();
            for (pred, action) in self.relevant_lecs(id) {
                if action.device_next_hops().contains(&neighbor) {
                    region = self.backend.or(region, pred);
                }
            }
            self.recompute_node(id, region, out);
        }
    }

    /// Simulates a device crash + restart of the verification agent:
    /// all soft counting state (`CIBIn`, `LocCIB`, `CIBOut`, grown
    /// scopes, subscription ledger) is lost and re-initialized, then the
    /// verifier recounts from scratch and returns its fresh initial
    /// messages. The FIB and the LEC table survive — they live in the
    /// switch hardware / FIB agent, not in the verification process —
    /// and so does local link state (`down_neighbors`), which the agent
    /// re-reads from the platform on start.
    ///
    /// Recovery of the *inputs* (neighbors' last counting results and
    /// subscriptions) is driven by the runtime calling
    /// [`DeviceVerifierIn::replay_for_restart`] on each neighbor.
    pub fn reboot(&mut self, out: &mut dyn Outbox) {
        let dim = self.cfg.dim();
        for st in self.nodes.values_mut() {
            st.scope = st.base;
            st.cib_in.clear();
            st.loc_cib = vec![(st.base, Counts::zero(dim))];
            st.cib_out = vec![(st.base, Counts::zero(dim))];
            st.sent_subs.clear();
        }
        self.refresh_relevance();
        self.init(out);
    }

    /// Re-sends this device's durable protocol state toward a freshly
    /// restarted neighbor so it can rebuild its lost soft state:
    ///
    /// * for each hosted node with an *upstream* edge into `restarted`,
    ///   a full-scope UPDATE carrying the current `CIBOut` (the
    ///   neighbor's `CIBIn` entry for us, lost in the crash — the
    ///   `withdrawn = scope` form makes the replay idempotent);
    /// * for each *downstream* edge into `restarted`, a SUBSCRIBE
    ///   re-stating every packet space we ever requested beyond the
    ///   invariant's (the neighbor's scope reset to the packet space).
    ///
    /// Replays are plain DVM messages, so the protocol re-converges to
    /// the same fixpoint it held before the crash.
    pub fn replay_for_restart(&mut self, restarted: DeviceId, out: &mut dyn Outbox) {
        let ids = self.node_ids();
        for node in ids {
            let st = &self.nodes[&node];
            let ups: Vec<NodeId> = st
                .task
                .upstream
                .iter()
                .filter(|(_, d)| *d == restarted)
                .map(|(n, _)| *n)
                .collect();
            if !ups.is_empty() {
                let withdrawn = vec![self.backend.export(st.scope)];
                let results: Vec<(PortablePred, Counts)> = st
                    .cib_out
                    .iter()
                    .map(|(p, c)| (self.backend.export(*p), c.clone()))
                    .collect();
                for un in ups {
                    let env = Envelope::data(
                        self.dev,
                        restarted,
                        Payload::Update {
                            edge: EdgeRef { up: un, down: node },
                            withdrawn: withdrawn.clone(),
                            results: results.clone(),
                        },
                    );
                    self.emit(env, out);
                }
            }
            let downs: Vec<(NodeId, B::Pred)> = self.nodes[&node]
                .task
                .downstream
                .iter()
                .filter(|(_, d)| *d == restarted)
                .filter_map(|(n, _)| self.nodes[&node].sent_subs.get(n).map(|s| (*n, *s)))
                .collect();
            for (vn, space) in downs {
                if self.backend.is_false(space) {
                    continue;
                }
                let env = Envelope::data(
                    self.dev,
                    restarted,
                    Payload::Subscribe {
                        edge: EdgeRef { up: node, down: vn },
                        space: self.backend.export(space),
                    },
                );
                self.emit(env, out);
            }
        }
    }

    /// Exports a node's current counting results, optionally restricted
    /// to the entries intersecting a packet-space filter.
    pub fn node_result(
        &mut self,
        node: NodeId,
        space: Option<&PortablePred>,
    ) -> Vec<(PortablePred, Counts)> {
        let q = space.map(|s| self.backend.import(s));
        let Some(st) = self.nodes.get(&node) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (p, c) in st.loc_cib.iter() {
            let keep = match q {
                None => true,
                Some(q) => self.backend.intersects(*p, q),
            };
            if keep {
                out.push((self.backend.export(*p), c.clone()));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Counting core
    // ------------------------------------------------------------------

    fn zero(&self) -> Counts {
        Counts::zero(self.cfg.dim())
    }

    /// Escape outcome: zeros with the escape component set to `n`
    /// (or plain zero when escapes are not tracked).
    fn esc(&self, n: u32) -> Counts {
        if self.cfg.track_escapes && n > 0 {
            let mut v = vec![0u32; self.cfg.dim()];
            *v.last_mut().unwrap() = n;
            Counts::single(v)
        } else {
            self.zero()
        }
    }

    /// Base contribution of a node: its own acceptance (destination
    /// initialization, §2.2.2).
    fn base(&self, accept: &[bool], action: &Action) -> Counts {
        let delivered = match self.cfg.dest_mode {
            DestMode::Axiomatic => true,
            DestMode::CheckDelivery => action.delivers_external(),
        };
        let mut v = vec![0u32; self.cfg.dim()];
        if delivered {
            for (i, &a) in accept.iter().enumerate() {
                v[i] = u32::from(a);
            }
        }
        Counts::single(v)
    }

    /// Recomputes `LocCIB` over `region` for one node and writes the
    /// UPDATE messages for its upstream neighbors (steps 2–3 of §5.2)
    /// to `out`.
    fn recompute_node(&mut self, node: NodeId, region: B::Pred, out: &mut dyn Outbox) {
        if !self.tel.is_enabled() {
            return self.recompute_node_inner(node, region, out);
        }
        let begin = self.tel.host_tick();
        let wall = Instant::now();
        self.recompute_node_inner(node, region, out);
        let dur = (wall.elapsed().as_nanos() as u64).max(1);
        let tel = self.tel.clone();
        tel.span(self.dev, "cib.recompute", "dvm", begin, dur, self.trace);
        tel.observe(self.dev, &CIB_RECOMPUTE_NS, dur);
    }

    fn recompute_node_inner(&mut self, node: NodeId, region: B::Pred, out: &mut dyn Outbox) {
        let scope = self.nodes[&node].scope;
        let r = self.backend.and(region, scope);
        if self.backend.is_false(r) {
            return;
        }
        let new_entries = self.compute_entries(node, r);

        // Replace the region in LocCIB.
        {
            let be = &mut self.backend;
            let st = self.nodes.get_mut(&node).unwrap();
            st.loc_cib.retain_mut(|(p, _)| {
                *p = be.diff(*p, r);
                !be.is_false(*p)
            });
            st.loc_cib.extend(new_entries.iter().cloned());
        }

        // Reduce (Proposition 1) and diff against CIBOut.
        let reduced: Vec<(B::Pred, Counts)> = new_entries
            .iter()
            .map(|(p, c)| (*p, c.reduce(self.cfg.reduce)))
            .collect();
        let mut changed = self.backend.falsum();
        {
            let old_out = self.nodes[&node].cib_out.clone();
            for (p, c) in &reduced {
                for (q, oc) in &old_out {
                    if c != oc {
                        let i = self.backend.and(*p, *q);
                        changed = self.backend.or(changed, i);
                    }
                }
            }
        }
        if self.backend.is_false(changed) {
            return;
        }
        // Update CIBOut over the changed region.
        let mut out_results: Vec<(B::Pred, Counts)> = Vec::new();
        {
            let be = &mut self.backend;
            let st = self.nodes.get_mut(&node).unwrap();
            st.cib_out.retain_mut(|(p, _)| {
                *p = be.diff(*p, changed);
                !be.is_false(*p)
            });
            for (p, c) in &reduced {
                let pc = be.and(*p, changed);
                if be.is_false(pc) {
                    continue;
                }
                match out_results.iter_mut().find(|(_, oc)| oc == c) {
                    Some((op, _)) => *op = be.or(*op, pc),
                    None => out_results.push((pc, c.clone())),
                }
            }
            st.cib_out.extend(out_results.iter().cloned());
        }

        // Emit one UPDATE per upstream edge.
        let withdrawn = vec![self.backend.export(changed)];
        let results: Vec<(PortablePred, Counts)> = out_results
            .iter()
            .map(|(p, c)| (self.backend.export(*p), c.clone()))
            .collect();
        let ups = self.nodes[&node].task.upstream.clone();
        for (un, udev) in ups {
            let env = Envelope::data(
                self.dev,
                udev,
                Payload::Update {
                    edge: EdgeRef { up: un, down: node },
                    withdrawn: withdrawn.clone(),
                    results: results.clone(),
                },
            );
            self.emit(env, out);
        }
    }

    /// Computes fresh `(predicate, counts)` entries partitioning `r`
    /// (Equations (1) and (2) refined per packet set).
    fn compute_entries(&mut self, node: NodeId, r: B::Pred) -> Vec<(B::Pred, Counts)> {
        let lecs = self.relevant_lecs(node);
        let accept = self.nodes[&node].task.accept.clone();
        let mut out: Vec<(B::Pred, Counts)> = Vec::new();
        for (lp, action) in &lecs {
            let p0 = self.backend.and(*lp, r);
            if self.backend.is_false(p0) {
                continue;
            }
            for (p, c) in self.combine(node, p0, &accept, action) {
                // Merge equal outcome sets.
                match out.iter_mut().find(|(_, oc)| *oc == c) {
                    Some((op, _)) => *op = self.backend.or(*op, p),
                    None => out.push((p, c)),
                }
            }
        }
        out
    }

    /// Applies Equations (1)/(2) for one LEC piece.
    fn combine(
        &mut self,
        node: NodeId,
        p0: B::Pred,
        accept: &[bool],
        action: &Action,
    ) -> Vec<(B::Pred, Counts)> {
        let accepting_any = accept.iter().any(|&a| a);
        let base = self.base(accept, action);
        let (mode, hops, rewrite, ext) = match action {
            Action::Drop => {
                let c = base.cross_sum(&self.esc(u32::from(!accepting_any)));
                return vec![(p0, c)];
            }
            Action::Forward {
                mode,
                next_hops,
                rewrite,
            } => {
                let mut hops: Vec<DeviceId> = next_hops
                    .iter()
                    .filter_map(|nh| match nh {
                        NextHop::Device(d) => Some(*d),
                        NextHop::External => None,
                    })
                    .collect();
                hops.sort();
                hops.dedup();
                let ext = next_hops.contains(&NextHop::External);
                (*mode, hops, *rewrite, ext)
            }
        };
        if hops.is_empty() && !ext {
            let c = base.cross_sum(&self.esc(u32::from(!accepting_any)));
            return vec![(p0, c)];
        }

        // Split hops into DPVNet-covered downstream nodes and escapes.
        let task_down = self.nodes[&node].task.downstream.clone();
        let mut relevant: Vec<NodeId> = Vec::new();
        let mut missing = 0u32;
        for h in &hops {
            if self.down_neighbors.contains(h) {
                missing += 1;
                continue;
            }
            match task_down.iter().find(|(_, d)| d == h) {
                Some((n, _)) => relevant.push(*n),
                None => missing += 1,
            }
        }

        // Joint refinement of p0 against the relevant CIBIn partitions.
        let pieces = self.refine(node, p0, &relevant, rewrite.as_ref());

        let mut out = Vec::with_capacity(pieces.len());
        for (p, cs) in pieces {
            let fwd = match mode {
                ActionType::All => {
                    let mut acc = cs.iter().fold(self.zero(), |acc, c| acc.cross_sum(c));
                    if missing > 0 {
                        acc = acc.cross_sum(&self.esc(missing));
                    }
                    if ext && !accepting_any {
                        acc = acc.cross_sum(&self.esc(1));
                    }
                    acc
                }
                ActionType::Any => {
                    let mut options: Vec<Counts> = cs;
                    if missing > 0 {
                        options.push(self.esc(1));
                    }
                    if ext {
                        options.push(if accepting_any {
                            self.zero()
                        } else {
                            self.esc(1)
                        });
                    }
                    let mut it = options.into_iter();
                    let first = it.next().unwrap_or_else(|| self.zero());
                    it.fold(first, |acc, c| acc.union(&c))
                }
            };
            out.push((p, base.cross_sum(&fwd)));
        }
        out
    }

    /// Refines `p0` against the CIBIn partitions of the relevant
    /// downstream nodes, yielding `(piece, per-node counts)` with missing
    /// coverage defaulting to zero.
    fn refine(
        &mut self,
        node: NodeId,
        p0: B::Pred,
        relevant: &[NodeId],
        rewrite: Option<&Rewrite>,
    ) -> Vec<(B::Pred, Vec<Counts>)> {
        let mut pieces: Vec<(B::Pred, Vec<Counts>)> = vec![(p0, Vec::new())];
        for v in relevant {
            let parts: Vec<(B::Pred, Counts)> =
                self.nodes[&node].cib_in.get(v).cloned().unwrap_or_default();
            let mut next = Vec::with_capacity(pieces.len().max(parts.len()));
            for (p, cs) in pieces {
                let mut rem = p;
                for (q, c) in &parts {
                    if self.backend.is_false(rem) {
                        break;
                    }
                    let pq = match rewrite {
                        Some(rw) => self.preimage(*q, rw),
                        None => *q,
                    };
                    let hit = self.backend.and(rem, pq);
                    if self.backend.is_false(hit) {
                        continue;
                    }
                    let mut ncs = cs.clone();
                    ncs.push(c.clone());
                    next.push((hit, ncs));
                    rem = self.backend.diff(rem, pq);
                }
                if !self.backend.is_false(rem) {
                    let mut ncs = cs;
                    ncs.push(self.zero());
                    next.push((rem, ncs));
                }
            }
            pieces = next;
        }
        pieces
    }

    /// Image of a packet set under a rewrite: the top `to.len` bits of
    /// the destination address are replaced by the prefix bits.
    fn image(&mut self, p: B::Pred, rw: &Rewrite) -> B::Pred {
        self.backend.rewrite_image(p, rw)
    }

    /// Preimage of a downstream packet set under a rewrite.
    fn preimage(&mut self, q: B::Pred, rw: &Rewrite) -> B::Pred {
        self.backend.rewrite_preimage(q, rw)
    }

    /// Emits SUBSCRIBE messages (§5.2): downstream devices must count
    /// the *image* of this node's scope under its forwarding — the
    /// transformed space for rewriting classes, and any subscribed
    /// region beyond the invariant's packet space for plain forwarding
    /// (subscriptions propagate transitively toward destinations).
    fn emit_subscriptions(&mut self, node: NodeId, region: B::Pred, out: &mut dyn Outbox) {
        let lecs = self.relevant_lecs(node);
        let scope = self.nodes[&node].scope;
        let r = self.backend.and(region, scope);
        for (lp, action) in &lecs {
            let Action::Forward {
                next_hops, rewrite, ..
            } = action
            else {
                continue;
            };
            let p = self.backend.and(*lp, r);
            if self.backend.is_false(p) {
                continue;
            }
            let img = match rewrite {
                Some(rw) => self.image(p, rw),
                None => p,
            };
            let task_down = self.nodes[&node].task.downstream.clone();
            for (vn, vdev) in task_down {
                if !next_hops.contains(&NextHop::Device(vdev)) {
                    continue;
                }
                let already = self.nodes[&node]
                    .sent_subs
                    .get(&vn)
                    .copied()
                    .unwrap_or_else(|| self.backend.falsum());
                // Downstream scopes start at the node's base packet
                // space (every DPVNet edge connects nodes installed by
                // the same intent, hence sharing a base); only the
                // region beyond it needs subscribing.
                let base = self.nodes[&node].base;
                let known = self.backend.or(already, base);
                let newspace = self.backend.diff(img, known);
                if self.backend.is_false(newspace) {
                    continue;
                }
                {
                    let merged = self.backend.or(already, newspace);
                    self.nodes
                        .get_mut(&node)
                        .unwrap()
                        .sent_subs
                        .insert(vn, merged);
                }
                let env = Envelope::data(
                    self.dev,
                    vdev,
                    Payload::Subscribe {
                        edge: EdgeRef { up: node, down: vn },
                        space: self.backend.export(newspace),
                    },
                );
                self.emit(env, out);
            }
        }
    }
}
