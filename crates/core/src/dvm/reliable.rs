//! At-least-once delivery over best-effort channels.
//!
//! The paper's deployment runs DVM over TCP; the simulator's
//! fault-injection transport instead models a lossy management network
//! that drops, duplicates, reorders and delays envelopes. This module
//! rebuilds the TCP guarantees the protocol relies on:
//!
//! * a [`SenderWindow`] assigns per-`(from, to)` channel sequence
//!   numbers, keeps every unacknowledged envelope, and schedules
//!   timeout-driven retransmissions with exponential backoff;
//! * a [`ReceiverLedger`] suppresses duplicates and releases envelopes
//!   strictly in channel order (buffering out-of-order arrivals), so
//!   each verifier observes exactly the per-link FIFO semantics of §5.2.
//!
//! Delivery is *at-least-once* on the wire and *exactly-once, in-order*
//! at the verifier; since `UPDATE`/`SUBSCRIBE` application is also
//! idempotent (diff-based against `CIBOut`, grow-only scopes), counting
//! results converge to the same fixpoint as over a perfect channel.
//!
//! The structures are pure state machines over virtual time — the
//! transport decides what "now" is and when to ask for retransmissions,
//! so the same code serves the instant FIFO reference and the
//! virtual-time event simulator.
//!
//! Both halves are *bounded*: the sender's unacked window and the
//! receiver's out-of-order buffer carry explicit per-channel caps and
//! refuse further growth with a [`ReliableError`] instead of letting a
//! sustained reorder storm (or a dead peer) grow them without limit.
//! They are also *epoch-aware*: when a topology churn bumps the
//! [`Envelope::epoch`] generation, superseded retransmission entries
//! are dropped ([`SenderWindow::purge_epochs_below`]) and channels can
//! be reset wholesale so stale sequence state cannot block the new
//! round.

use crate::dvm::message::Envelope;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tulkun_netmodel::DeviceId;
use tulkun_telemetry::Telemetry;

/// A directed sender→receiver channel.
pub type ChannelKey = (DeviceId, DeviceId);

/// Default per-channel cap for both the sender's unacked window and the
/// receiver's out-of-order buffer. Far above anything the verifier
/// workloads reach; hitting it means the peer is dead or the channel is
/// pathologically reordered, and the caller must apply backpressure.
pub const DEFAULT_CHANNEL_CAP: usize = 1024;

/// Backpressure: a bounded reliability structure refused to grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliableError {
    /// The sender window for `ch` already holds `cap` unacked envelopes.
    WindowFull {
        /// The saturated channel.
        ch: ChannelKey,
        /// Its configured cap.
        cap: usize,
    },
    /// The receiver's out-of-order buffer for `ch` already holds `cap`
    /// gap-buffered envelopes.
    ReorderFull {
        /// The saturated channel.
        ch: ChannelKey,
        /// Its configured cap.
        cap: usize,
    },
}

impl fmt::Display for ReliableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliableError::WindowFull { ch, cap } => {
                write!(
                    f,
                    "sender window full on {:?}->{:?} (cap {cap})",
                    ch.0, ch.1
                )
            }
            ReliableError::ReorderFull { ch, cap } => {
                write!(
                    f,
                    "reorder buffer full on {:?}->{:?} (cap {cap})",
                    ch.0, ch.1
                )
            }
        }
    }
}

impl std::error::Error for ReliableError {}

/// One envelope awaiting acknowledgment.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The sequenced envelope (retransmitted verbatim).
    pub env: Envelope,
    /// Virtual time at which the retransmission timer fires.
    pub deadline: u64,
    /// Retransmissions performed so far.
    pub attempts: u32,
}

/// Sender half: sequence assignment, the unacked window, backoff.
#[derive(Debug)]
pub struct SenderWindow {
    next_seq: BTreeMap<ChannelKey, u64>,
    unacked: BTreeMap<(ChannelKey, u64), Pending>,
    /// Unacked count per channel (kept in sync with `unacked`).
    per_ch: BTreeMap<ChannelKey, usize>,
    cap: usize,
    tel: Arc<Telemetry>,
}

impl Default for SenderWindow {
    fn default() -> Self {
        SenderWindow {
            next_seq: BTreeMap::new(),
            unacked: BTreeMap::new(),
            per_ch: BTreeMap::new(),
            cap: DEFAULT_CHANNEL_CAP,
            tel: Telemetry::disabled(),
        }
    }
}

impl SenderWindow {
    /// A fresh window (all channels start at sequence 1).
    pub fn new() -> SenderWindow {
        SenderWindow::default()
    }

    /// A fresh window with a non-default per-channel unacked cap.
    pub fn with_cap(cap: usize) -> SenderWindow {
        assert!(cap > 0, "sender window cap must be positive");
        SenderWindow {
            cap,
            ..SenderWindow::default()
        }
    }

    /// The per-channel unacked cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Attaches a telemetry handle recording retransmit/ack events.
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = tel;
    }

    /// Assigns the next sequence number on the envelope's channel,
    /// stamps it into `env`, and registers the envelope as unacked with
    /// its first retransmission deadline at `now + rto_ns`.
    ///
    /// Refuses with [`ReliableError::WindowFull`] — leaving `env`
    /// untouched — when the channel already holds `cap` unacked
    /// envelopes; the caller must hold the envelope back until acks
    /// drain the window.
    pub fn assign(
        &mut self,
        env: &mut Envelope,
        now: u64,
        rto_ns: u64,
    ) -> Result<(), ReliableError> {
        let ch = (env.from, env.to);
        let in_flight = self.per_ch.entry(ch).or_insert(0);
        if *in_flight >= self.cap {
            self.tel
                .count(env.from, "tulkun_reliable_backpressure_total", 1);
            return Err(ReliableError::WindowFull { ch, cap: self.cap });
        }
        *in_flight += 1;
        let seq = self.next_seq.entry(ch).or_insert(1);
        env.seq = *seq;
        *seq += 1;
        self.unacked.insert(
            (ch, env.seq),
            Pending {
                env: env.clone(),
                deadline: now.saturating_add(rto_ns),
                attempts: 0,
            },
        );
        self.tel.count(env.from, "tulkun_reliable_sent_total", 1);
        Ok(())
    }

    /// Clears one acknowledged envelope; returns whether it was still
    /// outstanding (duplicate acks return `false`).
    pub fn ack(&mut self, ch: ChannelKey, seq: u64) -> bool {
        let cleared = self.unacked.remove(&(ch, seq)).is_some();
        if cleared {
            self.decrement(ch);
            self.tel.count(ch.0, "tulkun_reliable_acked_total", 1);
        }
        cleared
    }

    fn decrement(&mut self, ch: ChannelKey) {
        if let Some(n) = self.per_ch.get_mut(&ch) {
            *n = n.saturating_sub(1);
        }
    }

    /// Unacked envelopes currently in flight on one channel.
    pub fn outstanding_on(&self, ch: ChannelKey) -> usize {
        self.per_ch.get(&ch).copied().unwrap_or(0)
    }

    /// Drops every unacked entry stamped with an epoch older than
    /// `epoch` (superseded by a topology churn: the receiving verifier
    /// would fence it off anyway, so retransmitting is pure waste).
    /// Returns how many entries were dropped.
    pub fn purge_epochs_below(&mut self, epoch: u64) -> usize {
        let stale: Vec<(ChannelKey, u64)> = self
            .unacked
            .iter()
            .filter(|(_, p)| p.env.epoch < epoch)
            .map(|(k, _)| *k)
            .collect();
        for (ch, seq) in &stale {
            self.unacked.remove(&(*ch, *seq));
            self.decrement(*ch);
        }
        if !stale.is_empty() {
            self.tel.count(
                stale[0].0 .0,
                "tulkun_epoch_purged_total",
                stale.len() as u64,
            );
        }
        stale.len()
    }

    /// Full channel reset: forgets every sequence counter and unacked
    /// entry. Used by the epoch fence, which atomically drops all
    /// in-flight traffic so restarting every channel at sequence 1 is
    /// coherent.
    pub fn reset(&mut self) {
        self.next_seq.clear();
        self.unacked.clear();
        self.per_ch.clear();
    }

    /// Resets only the channels *into* `dev` (sequence counters and
    /// unacked entries): the crash/restart purge, where all in-flight
    /// traffic toward the rebooted device is dropped with it.
    /// Returns how many unacked entries were dropped.
    pub fn reset_channels_into(&mut self, dev: DeviceId) -> usize {
        let stale: Vec<(ChannelKey, u64)> = self
            .unacked
            .keys()
            .filter(|((_, to), _)| *to == dev)
            .copied()
            .collect();
        for key in &stale {
            self.unacked.remove(key);
        }
        self.next_seq.retain(|(_, to), _| *to != dev);
        self.per_ch.retain(|(_, to), _| *to != dev);
        stale.len()
    }

    /// The unacked entry with the earliest retransmission deadline.
    pub fn earliest_due(&self) -> Option<(ChannelKey, u64)> {
        self.unacked
            .iter()
            .min_by_key(|(_, p)| p.deadline)
            .map(|((ch, seq), _)| (*ch, *seq))
    }

    /// The current retransmission deadline of one unacked entry.
    pub fn deadline_of(&self, ch: ChannelKey, seq: u64) -> Option<u64> {
        self.unacked.get(&(ch, seq)).map(|p| p.deadline)
    }

    /// Advances one entry's timer for a retransmission at `now`: bumps
    /// the attempt count and pushes the deadline out by the backed-off
    /// timeout (`rto_ns << attempts`, exponent capped). Returns a clone
    /// of the envelope to resend plus the new attempt count.
    pub fn bump(
        &mut self,
        ch: ChannelKey,
        seq: u64,
        now: u64,
        rto_ns: u64,
        max_backoff_exp: u32,
    ) -> Option<(Envelope, u32)> {
        let p = self.unacked.get_mut(&(ch, seq))?;
        p.attempts += 1;
        let timeout = rto_ns.saturating_mul(1u64 << p.attempts.min(max_backoff_exp));
        p.deadline = now.max(p.deadline).saturating_add(timeout);
        let (env, attempts) = (p.env.clone(), p.attempts);
        if self.tel.is_enabled() {
            self.tel.count(ch.0, "tulkun_reliable_retransmits_total", 1);
            // Event tick is host time (one timeline per trace); the
            // substrate's virtual `now` rides in aux.
            self.tel.span_aux(
                ch.0,
                "reliable.retransmit",
                "reliable",
                self.tel.host_tick(),
                0,
                env.trace,
                now,
            );
        }
        Some((env, attempts))
    }

    /// Number of unacknowledged envelopes.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Is every sent envelope acknowledged?
    pub fn is_empty(&self) -> bool {
        self.unacked.is_empty()
    }
}

/// What the receiver ledger decided about one arrival.
#[derive(Debug)]
pub enum Accepted {
    /// New in-order envelopes, released for delivery (the arrival
    /// itself plus any buffered successors it unblocked). Each carries
    /// the virtual time at which it becomes deliverable.
    Ready(Vec<(u64, Envelope)>),
    /// Out-of-order: buffered until the gap fills. Still acked.
    Buffered,
    /// Already seen (retransmission or injected duplicate). Re-acked.
    Duplicate,
}

/// Receiver half: duplicate suppression and in-order release.
#[derive(Debug)]
pub struct ReceiverLedger {
    expected: BTreeMap<ChannelKey, u64>,
    /// Out-of-order arrivals, per channel, keyed by sequence.
    buffered: BTreeMap<ChannelKey, BTreeMap<u64, (u64, Envelope)>>,
    cap: usize,
    tel: Arc<Telemetry>,
}

impl Default for ReceiverLedger {
    fn default() -> Self {
        ReceiverLedger {
            expected: BTreeMap::new(),
            buffered: BTreeMap::new(),
            cap: DEFAULT_CHANNEL_CAP,
            tel: Telemetry::disabled(),
        }
    }
}

impl ReceiverLedger {
    /// A fresh ledger (all channels expect sequence 1).
    pub fn new() -> ReceiverLedger {
        ReceiverLedger::default()
    }

    /// A fresh ledger with a non-default per-channel reorder-buffer cap.
    pub fn with_cap(cap: usize) -> ReceiverLedger {
        assert!(cap > 0, "reorder buffer cap must be positive");
        ReceiverLedger {
            cap,
            ..ReceiverLedger::default()
        }
    }

    /// The per-channel reorder-buffer cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Attaches a telemetry handle recording gap-buffer/dup events.
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = tel;
    }

    /// Processes one data arrival at virtual time `arrival`.
    ///
    /// Refuses with [`ReliableError::ReorderFull`] when the arrival is
    /// out of order and the channel's gap buffer already holds `cap`
    /// envelopes. The refused envelope is *not* recorded; since it is
    /// also not acked, the sender's retransmission redelivers it once
    /// the gap fills and the buffer drains — backpressure, not loss.
    pub fn accept(&mut self, arrival: u64, env: Envelope) -> Result<Accepted, ReliableError> {
        debug_assert!(env.seq > 0, "data envelopes must be sequenced");
        let ch = (env.from, env.to);
        let expected = self.expected.entry(ch).or_insert(1);
        if env.seq < *expected {
            self.tel.count(env.to, "tulkun_reliable_dups_total", 1);
            return Ok(Accepted::Duplicate);
        }
        if env.seq > *expected {
            let slot = self.buffered.entry(ch).or_default();
            if slot.contains_key(&env.seq) {
                self.tel.count(env.to, "tulkun_reliable_dups_total", 1);
                return Ok(Accepted::Duplicate);
            }
            if slot.len() >= self.cap {
                self.tel
                    .count(env.to, "tulkun_reliable_backpressure_total", 1);
                return Err(ReliableError::ReorderFull { ch, cap: self.cap });
            }
            if self.tel.is_enabled() {
                self.tel
                    .count(env.to, "tulkun_reliable_gap_buffered_total", 1);
                self.tel.span_aux(
                    env.to,
                    "reliable.gap_buffer",
                    "reliable",
                    self.tel.host_tick(),
                    0,
                    env.trace,
                    arrival,
                );
            }
            slot.insert(env.seq, (arrival, env));
            return Ok(Accepted::Buffered);
        }
        // In order: release it plus any directly following buffered
        // envelopes. A released successor becomes deliverable no earlier
        // than the arrival that unblocked it.
        let mut ready = vec![(arrival, env)];
        *expected += 1;
        if let Some(slot) = self.buffered.get_mut(&ch) {
            while let Some((a, e)) = slot.remove(expected) {
                ready.push((a.max(arrival), e));
                *expected += 1;
            }
        }
        Ok(Accepted::Ready(ready))
    }

    /// Envelopes currently buffered out of order.
    pub fn buffered_len(&self) -> usize {
        self.buffered.values().map(BTreeMap::len).sum()
    }

    /// Envelopes buffered out of order on one channel.
    pub fn buffered_on(&self, ch: ChannelKey) -> usize {
        self.buffered.get(&ch).map(BTreeMap::len).unwrap_or(0)
    }

    /// Full channel reset (the receiver side of the epoch fence).
    pub fn reset(&mut self) {
        self.expected.clear();
        self.buffered.clear();
    }

    /// Resets only the channels *into* `dev` (the crash/restart purge):
    /// forgets expected counters and drops gap-buffered arrivals, so
    /// the rebooted device's channels restart coherently at sequence 1.
    /// Returns how many buffered envelopes were dropped.
    pub fn reset_channels_into(&mut self, dev: DeviceId) -> usize {
        let dropped = self
            .buffered
            .iter()
            .filter(|((_, to), _)| *to == dev)
            .map(|(_, slot)| slot.len())
            .sum();
        self.expected.retain(|(_, to), _| *to != dev);
        self.buffered.retain(|(_, to), _| *to != dev);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvm::message::Payload;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope::data(DeviceId(from), DeviceId(to), Payload::Ack { of: 0 })
    }

    #[test]
    fn sender_assigns_monotonic_seqs_per_channel() {
        let mut w = SenderWindow::new();
        let mut a = env(1, 2);
        let mut b = env(1, 2);
        let mut c = env(1, 3);
        w.assign(&mut a, 0, 100).unwrap();
        w.assign(&mut b, 0, 100).unwrap();
        w.assign(&mut c, 0, 100).unwrap();
        assert_eq!((a.seq, b.seq, c.seq), (1, 2, 1));
        assert_eq!(w.outstanding(), 3);
        assert!(w.ack((DeviceId(1), DeviceId(2)), 1));
        assert!(!w.ack((DeviceId(1), DeviceId(2)), 1), "double ack");
        assert_eq!(w.outstanding(), 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut w = SenderWindow::new();
        let mut a = env(1, 2);
        w.assign(&mut a, 0, 100).unwrap();
        let ch = (DeviceId(1), DeviceId(2));
        assert_eq!(w.earliest_due(), Some((ch, 1)));
        let (_, n1) = w.bump(ch, 1, 100, 100, 3).unwrap();
        assert_eq!(n1, 1);
        // deadline = max(100, 100) + 100<<1 = 300.
        let (_, n2) = w.bump(ch, 1, 300, 100, 3).unwrap();
        assert_eq!(n2, 2);
        // Exponent caps at 3: attempts 5 uses 100<<3.
        for now in [700, 1500, 2300] {
            w.bump(ch, 1, now, 100, 3).unwrap();
        }
        let p = w.unacked.get(&(ch, 1)).unwrap();
        assert_eq!(p.attempts, 5);
        assert_eq!(p.deadline, 2300 + (100 << 3));
        // Unknown entries bump to None.
        assert!(w.bump(ch, 99, 0, 100, 3).is_none());
    }

    #[test]
    fn receiver_releases_in_order_and_suppresses_dups() {
        let mut r = ReceiverLedger::new();
        let mk = |seq: u64| {
            let mut e = env(1, 2);
            e.seq = seq;
            e
        };
        // 2 arrives first: buffered.
        assert!(matches!(r.accept(20, mk(2)), Ok(Accepted::Buffered)));
        assert_eq!(r.buffered_len(), 1);
        // 2 again while buffered: duplicate.
        assert!(matches!(r.accept(21, mk(2)), Ok(Accepted::Duplicate)));
        // 1 arrives: releases 1 then 2, with 2 no earlier than 1's
        // unblocking arrival.
        match r.accept(30, mk(1)) {
            Ok(Accepted::Ready(v)) => {
                assert_eq!(v.len(), 2);
                assert_eq!((v[0].0, v[0].1.seq), (30, 1));
                assert_eq!((v[1].0, v[1].1.seq), (30, 2));
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        // Replays of released seqs are duplicates.
        assert!(matches!(r.accept(40, mk(1)), Ok(Accepted::Duplicate)));
        assert!(matches!(r.accept(40, mk(2)), Ok(Accepted::Duplicate)));
        // The next in-order seq flows straight through.
        assert!(matches!(r.accept(50, mk(3)), Ok(Accepted::Ready(_))));
        assert_eq!(r.buffered_len(), 0);
    }

    #[test]
    fn sender_window_cap_applies_backpressure() {
        let mut w = SenderWindow::with_cap(2);
        let ch = (DeviceId(1), DeviceId(2));
        let mut a = env(1, 2);
        let mut b = env(1, 2);
        w.assign(&mut a, 0, 100).unwrap();
        w.assign(&mut b, 0, 100).unwrap();
        assert_eq!(w.outstanding_on(ch), 2);
        // Third unacked envelope on the same channel: refused, untouched.
        let mut c = env(1, 2);
        assert_eq!(
            w.assign(&mut c, 0, 100),
            Err(ReliableError::WindowFull { ch, cap: 2 })
        );
        assert_eq!(c.seq, 0, "refused envelope must stay unsequenced");
        // Other channels are unaffected by this channel's saturation.
        let mut d = env(1, 3);
        w.assign(&mut d, 0, 100).unwrap();
        assert_eq!(d.seq, 1);
        // An ack frees a slot and the held-back envelope fits again.
        assert!(w.ack(ch, 1));
        w.assign(&mut c, 0, 100).unwrap();
        assert_eq!(c.seq, 3, "seq numbering continues past the refusal");
    }

    #[test]
    fn reorder_buffer_cap_applies_backpressure() {
        let mut r = ReceiverLedger::with_cap(2);
        let ch = (DeviceId(1), DeviceId(2));
        let mk = |seq: u64| {
            let mut e = env(1, 2);
            e.seq = seq;
            e
        };
        // Seqs 3 and 4 gap-buffer (expected is 1); 5 is refused.
        assert!(matches!(r.accept(10, mk(3)), Ok(Accepted::Buffered)));
        assert!(matches!(r.accept(11, mk(4)), Ok(Accepted::Buffered)));
        assert_eq!(
            r.accept(12, mk(5)).unwrap_err(),
            ReliableError::ReorderFull { ch, cap: 2 }
        );
        assert_eq!(r.buffered_on(ch), 2, "refused arrival is not recorded");
        // A buffered duplicate is still reported as Duplicate, not refused.
        assert!(matches!(r.accept(13, mk(3)), Ok(Accepted::Duplicate)));
        // Filling the gap drains the buffer; the refused seq can then be
        // retransmitted and flows straight through.
        match r.accept(20, mk(1)).unwrap() {
            Accepted::Ready(v) => assert_eq!(v.len(), 1),
            other => panic!("expected Ready, got {other:?}"),
        }
        match r.accept(21, mk(2)).unwrap() {
            Accepted::Ready(v) => {
                let seqs: Vec<u64> = v.iter().map(|(_, e)| e.seq).collect();
                assert_eq!(seqs, vec![2, 3, 4]);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert!(matches!(r.accept(22, mk(5)), Ok(Accepted::Ready(_))));
        assert_eq!(r.buffered_len(), 0);
    }

    #[test]
    fn epoch_purge_drops_only_superseded_entries() {
        let mut w = SenderWindow::new();
        let mut old = env(1, 2);
        w.assign(&mut old, 0, 100).unwrap();
        let mut cur = env(1, 2);
        cur.epoch = 2;
        w.assign(&mut cur, 0, 100).unwrap();
        assert_eq!(w.outstanding(), 2);
        assert_eq!(w.purge_epochs_below(2), 1);
        assert_eq!(w.outstanding(), 1);
        let ch = (DeviceId(1), DeviceId(2));
        assert_eq!(w.outstanding_on(ch), 1);
        assert!(
            w.deadline_of(ch, cur.seq).is_some(),
            "current-epoch entry must survive the purge"
        );
        assert!(w.deadline_of(ch, old.seq).is_none());
        // Purging again is a no-op.
        assert_eq!(w.purge_epochs_below(2), 0);
    }

    #[test]
    fn channel_reset_restarts_sequences_coherently() {
        let mut w = SenderWindow::new();
        let mut r = ReceiverLedger::new();
        let mut a = env(1, 2);
        let mut b = env(3, 2);
        let mut c = env(1, 3);
        w.assign(&mut a, 0, 100).unwrap();
        w.assign(&mut b, 0, 100).unwrap();
        w.assign(&mut c, 0, 100).unwrap();
        assert!(matches!(r.accept(5, a.clone()), Ok(Accepted::Ready(_))));
        let mut gap = env(1, 2);
        gap.seq = 3;
        assert!(matches!(r.accept(6, gap), Ok(Accepted::Buffered)));
        // Reset everything into device 2: its unacked entries and
        // buffered arrivals vanish, other channels are untouched.
        assert_eq!(w.reset_channels_into(DeviceId(2)), 2);
        assert_eq!(r.reset_channels_into(DeviceId(2)), 1);
        assert_eq!(w.outstanding(), 1, "1->3 survives");
        assert_eq!(r.buffered_len(), 0);
        // Channels into 2 restart at sequence 1 and deliver cleanly.
        let mut a2 = env(1, 2);
        w.assign(&mut a2, 0, 100).unwrap();
        assert_eq!(a2.seq, 1);
        assert!(matches!(r.accept(9, a2), Ok(Accepted::Ready(_))));
        // Full reset clears the remaining channel too.
        w.reset();
        r.reset();
        assert!(w.is_empty());
        let mut c2 = env(1, 3);
        w.assign(&mut c2, 0, 100).unwrap();
        assert_eq!(c2.seq, 1);
    }
}
