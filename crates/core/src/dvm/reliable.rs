//! At-least-once delivery over best-effort channels.
//!
//! The paper's deployment runs DVM over TCP; the simulator's
//! fault-injection transport instead models a lossy management network
//! that drops, duplicates, reorders and delays envelopes. This module
//! rebuilds the TCP guarantees the protocol relies on:
//!
//! * a [`SenderWindow`] assigns per-`(from, to)` channel sequence
//!   numbers, keeps every unacknowledged envelope, and schedules
//!   timeout-driven retransmissions with exponential backoff;
//! * a [`ReceiverLedger`] suppresses duplicates and releases envelopes
//!   strictly in channel order (buffering out-of-order arrivals), so
//!   each verifier observes exactly the per-link FIFO semantics of §5.2.
//!
//! Delivery is *at-least-once* on the wire and *exactly-once, in-order*
//! at the verifier; since `UPDATE`/`SUBSCRIBE` application is also
//! idempotent (diff-based against `CIBOut`, grow-only scopes), counting
//! results converge to the same fixpoint as over a perfect channel.
//!
//! The structures are pure state machines over virtual time — the
//! transport decides what "now" is and when to ask for retransmissions,
//! so the same code serves the instant FIFO reference and the
//! virtual-time event simulator.

use crate::dvm::message::Envelope;
use std::collections::BTreeMap;
use std::sync::Arc;
use tulkun_netmodel::DeviceId;
use tulkun_telemetry::Telemetry;

/// A directed sender→receiver channel.
pub type ChannelKey = (DeviceId, DeviceId);

/// One envelope awaiting acknowledgment.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The sequenced envelope (retransmitted verbatim).
    pub env: Envelope,
    /// Virtual time at which the retransmission timer fires.
    pub deadline: u64,
    /// Retransmissions performed so far.
    pub attempts: u32,
}

/// Sender half: sequence assignment, the unacked window, backoff.
#[derive(Debug)]
pub struct SenderWindow {
    next_seq: BTreeMap<ChannelKey, u64>,
    unacked: BTreeMap<(ChannelKey, u64), Pending>,
    tel: Arc<Telemetry>,
}

impl Default for SenderWindow {
    fn default() -> Self {
        SenderWindow {
            next_seq: BTreeMap::new(),
            unacked: BTreeMap::new(),
            tel: Telemetry::disabled(),
        }
    }
}

impl SenderWindow {
    /// A fresh window (all channels start at sequence 1).
    pub fn new() -> SenderWindow {
        SenderWindow::default()
    }

    /// Attaches a telemetry handle recording retransmit/ack events.
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = tel;
    }

    /// Assigns the next sequence number on the envelope's channel,
    /// stamps it into `env`, and registers the envelope as unacked with
    /// its first retransmission deadline at `now + rto_ns`.
    pub fn assign(&mut self, env: &mut Envelope, now: u64, rto_ns: u64) {
        let ch = (env.from, env.to);
        let seq = self.next_seq.entry(ch).or_insert(1);
        env.seq = *seq;
        *seq += 1;
        self.unacked.insert(
            (ch, env.seq),
            Pending {
                env: env.clone(),
                deadline: now.saturating_add(rto_ns),
                attempts: 0,
            },
        );
        self.tel.count(env.from, "tulkun_reliable_sent_total", 1);
    }

    /// Clears one acknowledged envelope; returns whether it was still
    /// outstanding (duplicate acks return `false`).
    pub fn ack(&mut self, ch: ChannelKey, seq: u64) -> bool {
        let cleared = self.unacked.remove(&(ch, seq)).is_some();
        if cleared {
            self.tel.count(ch.0, "tulkun_reliable_acked_total", 1);
        }
        cleared
    }

    /// The unacked entry with the earliest retransmission deadline.
    pub fn earliest_due(&self) -> Option<(ChannelKey, u64)> {
        self.unacked
            .iter()
            .min_by_key(|(_, p)| p.deadline)
            .map(|((ch, seq), _)| (*ch, *seq))
    }

    /// The current retransmission deadline of one unacked entry.
    pub fn deadline_of(&self, ch: ChannelKey, seq: u64) -> Option<u64> {
        self.unacked.get(&(ch, seq)).map(|p| p.deadline)
    }

    /// Advances one entry's timer for a retransmission at `now`: bumps
    /// the attempt count and pushes the deadline out by the backed-off
    /// timeout (`rto_ns << attempts`, exponent capped). Returns a clone
    /// of the envelope to resend plus the new attempt count.
    pub fn bump(
        &mut self,
        ch: ChannelKey,
        seq: u64,
        now: u64,
        rto_ns: u64,
        max_backoff_exp: u32,
    ) -> Option<(Envelope, u32)> {
        let p = self.unacked.get_mut(&(ch, seq))?;
        p.attempts += 1;
        let timeout = rto_ns.saturating_mul(1u64 << p.attempts.min(max_backoff_exp));
        p.deadline = now.max(p.deadline).saturating_add(timeout);
        let (env, attempts) = (p.env.clone(), p.attempts);
        if self.tel.is_enabled() {
            self.tel.count(ch.0, "tulkun_reliable_retransmits_total", 1);
            // Event tick is host time (one timeline per trace); the
            // substrate's virtual `now` rides in aux.
            self.tel.span_aux(
                ch.0,
                "reliable.retransmit",
                "reliable",
                self.tel.host_tick(),
                0,
                env.trace,
                now,
            );
        }
        Some((env, attempts))
    }

    /// Number of unacknowledged envelopes.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Is every sent envelope acknowledged?
    pub fn is_empty(&self) -> bool {
        self.unacked.is_empty()
    }
}

/// What the receiver ledger decided about one arrival.
#[derive(Debug)]
pub enum Accepted {
    /// New in-order envelopes, released for delivery (the arrival
    /// itself plus any buffered successors it unblocked). Each carries
    /// the virtual time at which it becomes deliverable.
    Ready(Vec<(u64, Envelope)>),
    /// Out-of-order: buffered until the gap fills. Still acked.
    Buffered,
    /// Already seen (retransmission or injected duplicate). Re-acked.
    Duplicate,
}

/// Receiver half: duplicate suppression and in-order release.
#[derive(Debug)]
pub struct ReceiverLedger {
    expected: BTreeMap<ChannelKey, u64>,
    /// Out-of-order arrivals, per channel, keyed by sequence.
    buffered: BTreeMap<ChannelKey, BTreeMap<u64, (u64, Envelope)>>,
    tel: Arc<Telemetry>,
}

impl Default for ReceiverLedger {
    fn default() -> Self {
        ReceiverLedger {
            expected: BTreeMap::new(),
            buffered: BTreeMap::new(),
            tel: Telemetry::disabled(),
        }
    }
}

impl ReceiverLedger {
    /// A fresh ledger (all channels expect sequence 1).
    pub fn new() -> ReceiverLedger {
        ReceiverLedger::default()
    }

    /// Attaches a telemetry handle recording gap-buffer/dup events.
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = tel;
    }

    /// Processes one data arrival at virtual time `arrival`.
    pub fn accept(&mut self, arrival: u64, env: Envelope) -> Accepted {
        debug_assert!(env.seq > 0, "data envelopes must be sequenced");
        let ch = (env.from, env.to);
        let expected = self.expected.entry(ch).or_insert(1);
        if env.seq < *expected {
            self.tel.count(env.to, "tulkun_reliable_dups_total", 1);
            return Accepted::Duplicate;
        }
        if env.seq > *expected {
            let slot = self.buffered.entry(ch).or_default();
            if slot.contains_key(&env.seq) {
                self.tel.count(env.to, "tulkun_reliable_dups_total", 1);
                return Accepted::Duplicate;
            }
            if self.tel.is_enabled() {
                self.tel
                    .count(env.to, "tulkun_reliable_gap_buffered_total", 1);
                self.tel.span_aux(
                    env.to,
                    "reliable.gap_buffer",
                    "reliable",
                    self.tel.host_tick(),
                    0,
                    env.trace,
                    arrival,
                );
            }
            slot.insert(env.seq, (arrival, env));
            return Accepted::Buffered;
        }
        // In order: release it plus any directly following buffered
        // envelopes. A released successor becomes deliverable no earlier
        // than the arrival that unblocked it.
        let mut ready = vec![(arrival, env)];
        *expected += 1;
        if let Some(slot) = self.buffered.get_mut(&ch) {
            while let Some((a, e)) = slot.remove(expected) {
                ready.push((a.max(arrival), e));
                *expected += 1;
            }
        }
        Accepted::Ready(ready)
    }

    /// Envelopes currently buffered out of order.
    pub fn buffered_len(&self) -> usize {
        self.buffered.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvm::message::Payload;

    fn env(from: u32, to: u32) -> Envelope {
        Envelope::data(DeviceId(from), DeviceId(to), Payload::Ack { of: 0 })
    }

    #[test]
    fn sender_assigns_monotonic_seqs_per_channel() {
        let mut w = SenderWindow::new();
        let mut a = env(1, 2);
        let mut b = env(1, 2);
        let mut c = env(1, 3);
        w.assign(&mut a, 0, 100);
        w.assign(&mut b, 0, 100);
        w.assign(&mut c, 0, 100);
        assert_eq!((a.seq, b.seq, c.seq), (1, 2, 1));
        assert_eq!(w.outstanding(), 3);
        assert!(w.ack((DeviceId(1), DeviceId(2)), 1));
        assert!(!w.ack((DeviceId(1), DeviceId(2)), 1), "double ack");
        assert_eq!(w.outstanding(), 2);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut w = SenderWindow::new();
        let mut a = env(1, 2);
        w.assign(&mut a, 0, 100);
        let ch = (DeviceId(1), DeviceId(2));
        assert_eq!(w.earliest_due(), Some((ch, 1)));
        let (_, n1) = w.bump(ch, 1, 100, 100, 3).unwrap();
        assert_eq!(n1, 1);
        // deadline = max(100, 100) + 100<<1 = 300.
        let (_, n2) = w.bump(ch, 1, 300, 100, 3).unwrap();
        assert_eq!(n2, 2);
        // Exponent caps at 3: attempts 5 uses 100<<3.
        for now in [700, 1500, 2300] {
            w.bump(ch, 1, now, 100, 3).unwrap();
        }
        let p = w.unacked.get(&(ch, 1)).unwrap();
        assert_eq!(p.attempts, 5);
        assert_eq!(p.deadline, 2300 + (100 << 3));
        // Unknown entries bump to None.
        assert!(w.bump(ch, 99, 0, 100, 3).is_none());
    }

    #[test]
    fn receiver_releases_in_order_and_suppresses_dups() {
        let mut r = ReceiverLedger::new();
        let mk = |seq: u64| {
            let mut e = env(1, 2);
            e.seq = seq;
            e
        };
        // 2 arrives first: buffered.
        assert!(matches!(r.accept(20, mk(2)), Accepted::Buffered));
        assert_eq!(r.buffered_len(), 1);
        // 2 again while buffered: duplicate.
        assert!(matches!(r.accept(21, mk(2)), Accepted::Duplicate));
        // 1 arrives: releases 1 then 2, with 2 no earlier than 1's
        // unblocking arrival.
        match r.accept(30, mk(1)) {
            Accepted::Ready(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!((v[0].0, v[0].1.seq), (30, 1));
                assert_eq!((v[1].0, v[1].1.seq), (30, 2));
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        // Replays of released seqs are duplicates.
        assert!(matches!(r.accept(40, mk(1)), Accepted::Duplicate));
        assert!(matches!(r.accept(40, mk(2)), Accepted::Duplicate));
        // The next in-order seq flows straight through.
        assert!(matches!(r.accept(50, mk(3)), Accepted::Ready(_)));
        assert_eq!(r.buffered_len(), 0);
    }
}
