//! The Distributed Verification Messaging protocol (§5).
//!
//! * [`message`] — `UPDATE` and `SUBSCRIBE` payloads and device-to-device
//!   envelopes.
//! * [`verifier`] — the event-driven on-device verifier holding the LEC
//!   table and the three counting information bases.
//!
//! DVM needs no loop-prevention mechanism: messages flow against the
//! edges of the acyclic DPVNet, so no message loop can form.

pub mod message;
pub mod reliable;
pub mod verifier;

pub use message::{EdgeRef, Envelope, Outbox, Payload};
pub use reliable::{Accepted, ReceiverLedger, SenderWindow};
pub use verifier::{
    DestMode, DeviceVerifier, DeviceVerifierIn, VerifierBuilder, VerifierBuilderIn, VerifierConfig,
    VerifierStats,
};
