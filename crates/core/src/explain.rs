//! The explain engine: turn a degraded verdict (`Stale`, `Unreachable`,
//! a fired violation) plus the causal flight recorder into a ranked
//! causal chain a human can read.
//!
//! The walk is deterministic by construction: journal entries carry no
//! wall clock (only their global `seq`), relevance is decided by exact
//! device/intent/epoch matches plus trace-id closure, and ranking is a
//! fixed severity order of event kinds with `seq` (newest first) as
//! the tiebreak — so the same seeded run explains itself with
//! byte-identical JSON every time.
//!
//! The algorithm, given a subject (a device or an intent) and its
//! verdict:
//!
//! 1. **Direct pass** — scan the journal backwards, keeping entries
//!    that name the subject (same device, or same intent id) and
//!    global entries (epoch fences, topology churn, SLO breaches)
//!    whose epoch is at or below the verdict's epoch horizon.
//! 2. **Trace closure** — collect the causal trace ids of the direct
//!    hits and sweep once more, pulling in every entry that shares one
//!    of those trace ids (the rest of the wave the subject was hit
//!    by: the fence that superseded it, the retransmissions that
//!    exhausted toward it, the crash that wiped it).
//! 3. **Rank** — order by kind severity (topology churn outranks a
//!    crash outranks a watchdog stall outranks fault injections …),
//!    newest first within a kind, and keep the top
//!    [`MAX_CAUSES`] entries.

use tulkun_json::Json;
use tulkun_netmodel::topology::DeviceId;
use tulkun_telemetry::{JournalEvent, JournalKind};

use crate::verify::{Freshness, Report};

/// What is being explained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// A device (every DPVNet node hosted on it).
    Device(DeviceId),
    /// A runtime intent by id.
    Intent(u64),
}

impl Subject {
    /// Render as the stable subject string used in the JSON output
    /// (`"device:3"` / `"intent:2"`).
    pub fn label(&self) -> String {
        match self {
            Subject::Device(d) => format!("device:{}", d.0),
            Subject::Intent(id) => format!("intent:{id}"),
        }
    }
}

/// The ranked causal chain is capped here; everything the walk found
/// beyond it is summarized by [`Explanation::considered`].
pub const MAX_CAUSES: usize = 8;

/// One ranked cause: a journal entry plus why it was kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cause {
    /// The journal entry.
    pub event: JournalEvent,
    /// Severity rank (lower = more likely the root cause).
    pub rank: u32,
    /// Why this entry is in the chain (`"names the device"`,
    /// `"shares trace 7"`, …).
    pub reason: &'static str,
}

/// A ranked causal chain for one subject/verdict pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The subject label (`"device:3"` / `"intent:2"`).
    pub subject: String,
    /// The verdict being explained (`"stale(epoch 7)"`,
    /// `"unreachable"`, `"violated"`, `"fresh"`).
    pub verdict: String,
    /// Ranked causes, most severe first; at most [`MAX_CAUSES`].
    pub causes: Vec<Cause>,
    /// How many journal entries the walk deemed relevant in total.
    pub considered: usize,
}

/// Severity order: lower outranks higher. Topology churn is the
/// canonical root cause; fences and admission decisions are usually
/// consequences.
fn severity(kind: JournalKind) -> u32 {
    use JournalKind as K;
    match kind {
        K::TopologyChurn => 0,
        // Parking/degradation are the per-intent face of a churn fence:
        // for an intent subject they ARE the root cause ("parked behind
        // fence @epoch N"), so they rank right behind the churn itself.
        K::CrashRestart | K::IntentParked | K::IntentDegraded => 1,
        K::WatchdogStall => 2,
        K::FaultInjected => 3,
        K::Retransmit => 4,
        K::AdmissionShed | K::AdmissionBlocked => 5,
        K::SloBreach => 6,
        K::EpochFence => 7,
        K::ChurnRejected | K::IntentRejected => 8,
        K::IntentInstalled | K::IntentRemoved | K::IntentReplanned | K::BackendSwap => 9,
        K::LinkEvent | K::SceneApplied => 10,
        K::BatchApplied => 11,
    }
}

/// Does this entry speak about every subject (rather than one device)?
fn is_global(kind: JournalKind) -> bool {
    matches!(
        kind,
        JournalKind::EpochFence | JournalKind::TopologyChurn | JournalKind::SloBreach
    )
}

/// Compute the verdict string for a device from a report: the worst
/// freshness over the nodes the caller mapped to this device, plus
/// any violation naming the device. `nodes_on_device` is the node-id
/// set hosted there (from the counting plan's tasks).
pub fn device_verdict(report: &Report, dev: DeviceId, nodes_on_device: &[u32]) -> String {
    let mut worst = Freshness::Fresh;
    for (node, f) in &report.freshness {
        if !nodes_on_device.contains(&node.0) {
            continue;
        }
        worst = match (worst, f) {
            (_, Freshness::Unreachable) | (Freshness::Unreachable, _) => Freshness::Unreachable,
            (_, Freshness::Stale(e)) => Freshness::Stale(*e),
            (w, Freshness::Fresh) => w,
        };
    }
    let violated = report.violations.iter().any(|v| v.device == dev);
    verdict_string(worst, violated)
}

/// Compute the verdict string for an intent from a report: the worst
/// freshness over the intent's global node ids plus any violation
/// carrying the intent id.
pub fn intent_verdict(report: &Report, intent: u64, global_nodes: &[u32]) -> String {
    let mut worst = Freshness::Fresh;
    for (node, f) in &report.freshness {
        if !global_nodes.contains(&node.0) {
            continue;
        }
        worst = match (worst, f) {
            (_, Freshness::Unreachable) | (Freshness::Unreachable, _) => Freshness::Unreachable,
            (_, Freshness::Stale(e)) => Freshness::Stale(*e),
            (w, Freshness::Fresh) => w,
        };
    }
    let violated = report.violations.iter().any(|v| v.intent == intent);
    verdict_string(worst, violated)
}

fn verdict_string(f: Freshness, violated: bool) -> String {
    let fresh = match f {
        Freshness::Fresh => "fresh".to_string(),
        Freshness::Stale(e) => format!("stale(epoch {e})"),
        Freshness::Unreachable => "unreachable".to_string(),
    };
    if violated {
        format!("violated, {fresh}")
    } else {
        fresh
    }
}

/// Walk the journal backwards and build the ranked causal chain for
/// `subject` under `verdict` (see the module docs for the algorithm).
pub fn explain(events: &[JournalEvent], subject: Subject, verdict: &str) -> Explanation {
    // Pass 1: direct hits.
    let mut kept: Vec<(&JournalEvent, &'static str)> = Vec::new();
    let mut traces: Vec<u64> = Vec::new();
    for e in events.iter().rev() {
        let direct = match subject {
            Subject::Device(d) => e.device == d,
            Subject::Intent(id) => e.intent == Some(id),
        };
        if direct {
            kept.push((e, "names the subject"));
            if e.trace != 0 && !traces.contains(&e.trace) {
                traces.push(e.trace);
            }
        } else if is_global(e.kind) {
            kept.push((e, "global event"));
            if e.trace != 0 && !traces.contains(&e.trace) {
                traces.push(e.trace);
            }
        }
    }
    // Pass 2: trace closure over the rest of the waves the subject
    // was part of.
    for e in events.iter().rev() {
        if kept.iter().any(|(k, _)| k.seq == e.seq) {
            continue;
        }
        if e.trace != 0 && traces.contains(&e.trace) {
            kept.push((e, "shares a causal trace"));
        }
    }
    let considered = kept.len();
    // Rank: severity, then newest first.
    kept.sort_by(|(a, _), (b, _)| {
        (severity(a.kind), std::cmp::Reverse(a.seq))
            .cmp(&(severity(b.kind), std::cmp::Reverse(b.seq)))
    });
    let causes = kept
        .into_iter()
        .take(MAX_CAUSES)
        .map(|(e, reason)| Cause {
            event: e.clone(),
            rank: severity(e.kind),
            reason,
        })
        .collect();
    Explanation {
        subject: subject.label(),
        verdict: verdict.to_string(),
        causes,
        considered,
    }
}

impl Explanation {
    /// Deterministic JSON rendering (stable key order; causes carry
    /// the full journal entry plus rank and reason).
    pub fn to_json(&self) -> String {
        let causes: Vec<Json> = self
            .causes
            .iter()
            .map(|c| {
                Json::Object(vec![
                    ("rank".into(), Json::Int(c.rank as i64)),
                    ("reason".into(), Json::Str(c.reason.into())),
                    ("event".into(), c.event.to_json()),
                ])
            })
            .collect();
        let doc = Json::Object(vec![
            ("schema".into(), Json::Str("tulkun-explain-v1".into())),
            ("subject".into(), Json::Str(self.subject.clone())),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            ("considered".into(), Json::Int(self.considered as i64)),
            ("causes".into(), Json::Array(causes)),
        ]);
        tulkun_json::to_string(&doc)
    }

    /// Human-readable rendering: one line per cause, most severe
    /// first.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} is {}", self.subject, self.verdict);
        if self.causes.is_empty() {
            let _ = writeln!(out, "  no journaled cause found (journal off or empty)");
            return out;
        }
        for (i, c) in self.causes.iter().enumerate() {
            let e = &c.event;
            let mut line = format!(
                "  {}. [{}] {} on device {} at epoch {}",
                i + 1,
                e.kind.as_str(),
                e.detail,
                e.device.0,
                e.epoch
            );
            if let Some(id) = e.intent {
                let _ = write!(line, " (intent {id})");
            }
            if e.trace != 0 {
                let _ = write!(line, " [trace {}]", e.trace);
            }
            let _ = write!(line, " (seq {}, {})", e.seq, c.reason);
            let _ = writeln!(out, "{line}");
        }
        if self.considered > self.causes.len() {
            let _ = writeln!(
                out,
                "  … {} more related journal entries",
                self.considered - self.causes.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: JournalKind, dev: u32, epoch: u64, trace: u64) -> JournalEvent {
        JournalEvent {
            seq,
            kind,
            device: DeviceId(dev),
            epoch,
            trace,
            intent: None,
            detail: format!("{} #{seq}", kind.as_str()),
            source: None,
        }
    }

    #[test]
    fn churn_outranks_faults_and_fences() {
        let events = vec![
            ev(1, JournalKind::EpochFence, 0, 1, 5),
            ev(2, JournalKind::TopologyChurn, 2, 1, 5),
            ev(3, JournalKind::FaultInjected, 2, 1, 6),
            ev(4, JournalKind::FaultInjected, 2, 1, 6),
            ev(5, JournalKind::Retransmit, 2, 1, 6),
        ];
        let x = explain(&events, Subject::Device(DeviceId(2)), "stale(epoch 1)");
        assert_eq!(x.causes[0].event.kind, JournalKind::TopologyChurn);
        assert_eq!(x.causes[0].event.device, DeviceId(2));
        assert_eq!(x.considered, 5);
        // Newest fault first within the kind.
        assert_eq!(x.causes[1].event.seq, 4);
    }

    #[test]
    fn trace_closure_pulls_in_the_wave() {
        // Device 9 only appears via a retransmit, but the fence and the
        // churn that share its trace must be pulled in.
        let events = vec![
            ev(1, JournalKind::IntentInstalled, 0, 1, 7),
            ev(2, JournalKind::Retransmit, 9, 1, 7),
            ev(3, JournalKind::BatchApplied, 4, 1, 8),
        ];
        let x = explain(&events, Subject::Device(DeviceId(9)), "stale(epoch 1)");
        assert_eq!(x.considered, 2, "trace 8 is unrelated");
        assert!(x
            .causes
            .iter()
            .any(|c| c.event.kind == JournalKind::IntentInstalled));
    }

    #[test]
    fn intent_subject_matches_by_id_and_json_is_deterministic() {
        let mut e = ev(1, JournalKind::IntentInstalled, 0, 1, 7);
        e.intent = Some(3);
        let events = vec![e, ev(2, JournalKind::TopologyChurn, 1, 2, 8)];
        let a = explain(&events, Subject::Intent(3), "stale(epoch 2)");
        let b = explain(&events, Subject::Intent(3), "stale(epoch 2)");
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"subject\":\"intent:3\""));
        assert!(a.causes.iter().any(|c| c.event.intent == Some(3)));
    }

    #[test]
    fn parked_intent_ranks_behind_only_the_churn() {
        // "parked behind fence @epoch N" must outrank the fence itself
        // and everything downstream of it — only the churn event that
        // caused the fence ranks higher.
        let mut parked = ev(3, JournalKind::IntentParked, 0, 2, 9);
        parked.intent = Some(5);
        let events = vec![
            ev(1, JournalKind::TopologyChurn, 1, 2, 9),
            ev(2, JournalKind::EpochFence, 1, 2, 9),
            parked,
            ev(4, JournalKind::Retransmit, 1, 2, 9),
        ];
        let x = explain(&events, Subject::Intent(5), "parked(epoch 2)");
        assert_eq!(x.causes[0].event.kind, JournalKind::TopologyChurn);
        assert_eq!(x.causes[1].event.kind, JournalKind::IntentParked);
        assert_eq!(x.causes[1].event.intent, Some(5));
    }

    #[test]
    fn empty_journal_yields_empty_chain() {
        let x = explain(&[], Subject::Device(DeviceId(0)), "unreachable");
        assert!(x.causes.is_empty());
        assert!(x.to_text().contains("no journaled cause"));
    }
}
