//! Communication-free local contracts for `equal` behaviors (§4.2).
//!
//! For an invariant with the `equal` match operator, the minimal counting
//! information of every node is the empty set: each device only checks
//! that it forwards the invariant's packets to exactly the devices of its
//! downstream DPVNet neighbors (and delivers externally at destination
//! nodes). This generalizes Azure RCDC's local contracts for
//! all-shortest-path availability.

use crate::planner::LocalContract;
use tulkun_bdd::serial::{self, PortablePred};
use tulkun_bdd::{BddManager, HeaderLayout, Pred};
use tulkun_netmodel::fib::{Action, Fib};
use tulkun_netmodel::DeviceId;

/// A local-contract violation found on a device.
#[derive(Debug, Clone)]
pub struct ContractViolation {
    /// The device that broke its contract.
    pub device: DeviceId,
    /// The DPVNet node whose contract it is.
    pub node: crate::dpvnet::NodeId,
    /// The offending packet set.
    pub pred: PortablePred,
    /// What the contract requires.
    pub expected: Vec<DeviceId>,
    /// What the data plane does.
    pub found: Vec<DeviceId>,
    /// Human-readable reason.
    pub reason: String,
}

/// The per-device checker for `equal` plans: holds the device's LEC
/// table and its contracts, and checks them locally, with no
/// communication.
pub struct LocalChecker {
    dev: DeviceId,
    mgr: BddManager,
    layout: HeaderLayout,
    fib: Fib,
    contracts: Vec<LocalContract>,
    packet_space: Pred,
    /// LEC table, rebuilt lazily when the FIB changes.
    lecs: Option<Vec<tulkun_netmodel::fib::Lec>>,
}

impl LocalChecker {
    /// Creates a checker for `dev` with its assigned contracts.
    pub fn new(
        dev: DeviceId,
        layout: HeaderLayout,
        fib: Fib,
        contracts: Vec<LocalContract>,
        packet_space: &PortablePred,
    ) -> Self {
        Self::new_with_lecs(dev, layout, fib, contracts, packet_space, None)
    }

    /// Like [`LocalChecker::new`], but seeds the LEC table from a
    /// previously exported one (the LEC table is shared across all the
    /// invariants a device verifies, §8).
    pub fn new_with_lecs(
        dev: DeviceId,
        layout: HeaderLayout,
        fib: Fib,
        contracts: Vec<LocalContract>,
        packet_space: &PortablePred,
        lecs: Option<&[(PortablePred, tulkun_netmodel::fib::Action)]>,
    ) -> Self {
        let mut mgr = BddManager::new(layout.num_vars());
        let ps = serial::import(&mut mgr, packet_space).expect("packet space import");
        for c in &contracts {
            assert_eq!(c.dev, dev, "contract assigned to the wrong device");
        }
        let lecs = lecs.map(|ls| {
            ls.iter()
                .map(|(p, a)| tulkun_netmodel::fib::Lec {
                    pred: serial::import(&mut mgr, p).expect("lec import"),
                    action: a.clone(),
                })
                .collect()
        });
        LocalChecker {
            dev,
            mgr,
            layout,
            fib,
            contracts,
            packet_space: ps,
            lecs,
        }
    }

    /// Exports the LEC table for reuse (builds it if needed).
    pub fn export_lecs(&mut self) -> Vec<(PortablePred, tulkun_netmodel::fib::Action)> {
        self.ensure_lecs();
        self.lecs
            .as_ref()
            .unwrap()
            .iter()
            .map(|l| (serial::export(&self.mgr, l.pred), l.action.clone()))
            .collect()
    }

    fn ensure_lecs(&mut self) {
        if self.lecs.is_none() {
            self.lecs = Some(
                self.fib
                    .local_equivalence_classes(&mut self.mgr, &self.layout),
            );
        }
    }

    /// Applies a FIB change (incremental checking).
    pub fn update_fib(&mut self, fib: Fib) {
        self.fib = fib;
        self.lecs = None;
    }

    /// Runs all contracts against the current FIB.
    pub fn check(&mut self) -> Vec<ContractViolation> {
        self.ensure_lecs();
        let lecs = self.lecs.clone().unwrap();
        let mut out = Vec::new();
        for contract in self.contracts.clone() {
            if contract.required_next_hops.is_empty() && !contract.must_deliver {
                continue; // dead node: nothing to check locally
            }
            for lec in &lecs {
                let p = self.mgr.and(lec.pred, self.packet_space);
                if self.mgr.is_false(p) {
                    continue;
                }
                let mut found = lec.action.device_next_hops();
                found.sort();
                found.dedup();
                let delivers = lec.action.delivers_external();
                let reason = if found != contract.required_next_hops {
                    Some(format!(
                        "forwarding group {found:?} differs from contract {:?}",
                        contract.required_next_hops
                    ))
                } else if delivers != contract.must_deliver {
                    Some(if contract.must_deliver {
                        "destination does not deliver externally".to_string()
                    } else {
                        "unexpected external delivery".to_string()
                    })
                } else if matches!(
                    lec.action,
                    Action::Forward {
                        rewrite: Some(_),
                        ..
                    }
                ) {
                    Some("unexpected header rewrite".to_string())
                } else {
                    None
                };
                if let Some(reason) = reason {
                    out.push(ContractViolation {
                        device: self.dev,
                        node: contract.node,
                        pred: serial::export(&self.mgr, p),
                        expected: contract.required_next_hops.clone(),
                        found,
                        reason,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use crate::spec::{table1, PacketSpace};
    use tulkun_netmodel::fib::{MatchSpec, Rule};
    use tulkun_netmodel::routing::{generate_fibs, RoutingOptions};
    use tulkun_netmodel::topology::Topology;
    use tulkun_netmodel::IpPrefix;

    fn diamond() -> Topology {
        // S - A - D, S - B - D: two equal-cost paths.
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let d = t.add_device("D");
        t.add_link(s, a, 1);
        t.add_link(s, b, 1);
        t.add_link(a, d, 1);
        t.add_link(b, d, 1);
        t.add_external_prefix(d, "10.0.0.0/24".parse().unwrap());
        t
    }

    fn packet_space_portable(layout: &HeaderLayout, ps: &PacketSpace) -> PortablePred {
        let mut m = BddManager::new(layout.num_vars());
        let p = ps.compile(&mut m, layout);
        serial::export(&m, p)
    }

    #[test]
    fn correct_ecmp_data_plane_passes() {
        let topo = diamond();
        let fibs = generate_fibs(&topo, &RoutingOptions::default());
        let ps = PacketSpace::dst_prefix("10.0.0.0/24");
        let inv = table1::all_shortest_path(ps.clone(), "S", "D").unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let layout = HeaderLayout::ipv4_tcp();
        let psp = packet_space_portable(&layout, &ps);

        for dev in topo.devices() {
            let contracts: Vec<LocalContract> = lp
                .contracts
                .iter()
                .filter(|c| c.dev == dev)
                .cloned()
                .collect();
            if contracts.is_empty() {
                continue;
            }
            let mut checker =
                LocalChecker::new(dev, layout, fibs[dev.idx()].clone(), contracts, &psp);
            let v = checker.check();
            assert!(v.is_empty(), "device {} violations: {v:?}", topo.name(dev));
        }
    }

    #[test]
    fn missing_ecmp_member_is_caught() {
        let topo = diamond();
        let mut fibs = generate_fibs(&topo, &RoutingOptions::default());
        // Break S: forward only via A instead of the ECMP pair {A, B}.
        let s = topo.device("S").unwrap();
        let a = topo.device("A").unwrap();
        let p: IpPrefix = "10.0.0.0/24".parse().unwrap();
        fibs[s.idx()] = Fib::new();
        fibs[s.idx()].insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(p),
            action: Action::fwd(a),
        });

        let ps = PacketSpace::dst_prefix("10.0.0.0/24");
        let inv = table1::all_shortest_path(ps.clone(), "S", "D").unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let layout = HeaderLayout::ipv4_tcp();
        let psp = packet_space_portable(&layout, &ps);

        let contracts: Vec<LocalContract> = lp
            .contracts
            .iter()
            .filter(|c| c.dev == s)
            .cloned()
            .collect();
        let mut checker = LocalChecker::new(s, layout, fibs[s.idx()].clone(), contracts, &psp);
        let v = checker.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].found, vec![a]);
        assert_eq!(v[0].expected.len(), 2);
    }

    #[test]
    fn destination_must_deliver() {
        let topo = diamond();
        let mut fibs = generate_fibs(&topo, &RoutingOptions::default());
        let d = topo.device("D").unwrap();
        fibs[d.idx()] = Fib::new(); // destination drops everything

        let ps = PacketSpace::dst_prefix("10.0.0.0/24");
        let inv = table1::all_shortest_path(ps.clone(), "S", "D").unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let layout = HeaderLayout::ipv4_tcp();
        let psp = packet_space_portable(&layout, &ps);

        let contracts: Vec<LocalContract> = lp
            .contracts
            .iter()
            .filter(|c| c.dev == d)
            .cloned()
            .collect();
        let mut checker = LocalChecker::new(d, layout, fibs[d.idx()].clone(), contracts, &psp);
        let v = checker.check();
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("deliver"), "{}", v[0].reason);
    }
}
