//! DPVNet: the DAG of all valid paths of an invariant (§4.1).
//!
//! A DPVNet is built by multiplying the path-expression automata with the
//! topology. Devices map 1-to-many onto DPVNet nodes (`B1`, `B2`, …);
//! edges follow topology links; every source-to-sink path of the DAG is a
//! valid path of the invariant and vice versa.
//!
//! Construction here enumerates the (finite) valid path set — every
//! invariant the paper evaluates is bounded by `loop_free` and/or a
//! length filter — and then performs the paper's *state minimization* by
//! suffix merging: nodes with the same device and identical downstream
//! structure are hash-consed together, yielding the minimal DAG of the
//! path language (the construction of Figure 2c). Two fast paths avoid
//! enumeration where the paper's evaluation needs scale:
//!
//! * [`DpvNet::shortest_path_dag`] — the all-sources shortest-path DAG
//!   toward one destination (used by `equal` / RCDC-style invariants on
//!   data centers);
//! * [`DpvNet::slack_dag`] — the `(device, slack)` unrolling for
//!   `<= shortest + k` reachability, linear in `|E| · k`.

use crate::spec::PathExpr;
use std::collections::HashMap;
use std::fmt;
use tulkun_automata::Dfa;
use tulkun_netmodel::topology::{DeviceId, Topology};

/// A node in a DPVNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl tulkun_json::ToJson for NodeId {
    fn to_json(&self) -> tulkun_json::Json {
        tulkun_json::ToJson::to_json(&self.0)
    }
}

impl tulkun_json::FromJson for NodeId {
    fn from_json(v: &tulkun_json::Json) -> Result<Self, tulkun_json::JsonError> {
        tulkun_json::FromJson::from_json(v).map(NodeId)
    }
}

/// A DPVNet node: one (device, automaton-progress) point.
#[derive(Debug, Clone)]
pub struct DpvNode {
    /// The network device this node's task runs on.
    pub dev: DeviceId,
    /// Downstream neighbors (toward destinations; counting results flow
    /// *against* these edges).
    pub out: Vec<NodeId>,
    /// Upstream neighbors.
    pub inn: Vec<NodeId>,
    /// Per path expression: does a valid path of that expression end
    /// here?
    pub accept: Vec<bool>,
    /// Display label, e.g. `"B2"`.
    pub label: String,
}

impl DpvNode {
    /// Is this a destination node for at least one expression?
    pub fn is_accepting(&self) -> bool {
        self.accept.iter().any(|&a| a)
    }
}

/// The DAG of all valid paths, with one source node per ingress device.
#[derive(Debug, Clone)]
pub struct DpvNet {
    nodes: Vec<DpvNode>,
    /// `(ingress device, its source node)` pairs.
    sources: Vec<(DeviceId, NodeId)>,
    /// Number of path expressions (`accept` vector length).
    dim: usize,
}

/// Errors from DPVNet construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpvNetError {
    /// A device referenced by the invariant does not exist.
    UnknownDevice(String),
    /// The path language is infinite: no `loop_free` and no concrete or
    /// symbolic length bound.
    UnboundedPathSet,
    /// Path enumeration exceeded the safety cap; use divide-and-conquer
    /// or a fast-path construction.
    PathExplosion {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for DpvNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpvNetError::UnknownDevice(d) => write!(f, "unknown device {d:?}"),
            DpvNetError::UnboundedPathSet => write!(
                f,
                "path expression matches unboundedly many paths; add loop_free or a length filter"
            ),
            DpvNetError::PathExplosion { cap } => {
                write!(f, "more than {cap} valid paths; use divide-and-conquer")
            }
        }
    }
}

impl std::error::Error for DpvNetError {}

/// Default cap on enumerated paths before construction aborts.
pub const DEFAULT_PATH_CAP: usize = 2_000_000;

impl DpvNet {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &DpvNode {
        &self.nodes[id.idx()]
    }

    /// All nodes with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &DpvNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Source nodes per ingress device.
    pub fn sources(&self) -> &[(DeviceId, NodeId)] {
        &self.sources
    }

    /// Number of path expressions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Accepting (destination) nodes.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(|(_, n)| n.is_accepting())
            .map(|(id, _)| id)
    }

    /// Nodes in reverse topological order (downstream before upstream) —
    /// the traversal order of Algorithm 1.
    pub fn reverse_topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut out_deg: Vec<usize> = self.nodes.iter().map(|nd| nd.out.len()).collect();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&i| out_deg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &up in &self.nodes[id.idx()].inn {
                out_deg[up.idx()] -= 1;
                if out_deg[up.idx()] == 0 {
                    queue.push(up);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DPVNet must be acyclic");
        order
    }

    /// All nodes mapped to a device.
    pub fn nodes_on_device(&self, dev: DeviceId) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.dev == dev)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total number of source-to-sink paths (may be astronomically large;
    /// saturates at `f64`).
    pub fn num_paths(&self) -> f64 {
        let order = self.reverse_topo_order();
        let mut count = vec![0f64; self.nodes.len()];
        for id in order {
            let n = &self.nodes[id.idx()];
            let mut c = if n.is_accepting() { 1.0 } else { 0.0 };
            for &o in &n.out {
                c += count[o.idx()];
            }
            count[id.idx()] = c;
        }
        self.sources.iter().map(|(_, s)| count[s.idx()]).sum()
    }

    /// GraphViz rendering for documentation and debugging.
    pub fn to_dot(&self, topo: &Topology) -> String {
        let mut s = String::from("digraph dpvnet {\n  rankdir=LR;\n");
        for (id, n) in self.iter() {
            let shape = if n.is_accepting() {
                "doublecircle"
            } else {
                "circle"
            };
            s.push_str(&format!(
                "  n{} [label=\"{}\" shape={} tooltip=\"{}\"];\n",
                id.0,
                n.label,
                shape,
                topo.name(n.dev)
            ));
        }
        for (id, n) in self.iter() {
            for &o in &n.out {
                s.push_str(&format!("  n{} -> n{};\n", id.0, o.0));
            }
        }
        s.push_str("}\n");
        s
    }

    /// Assembles a DPVNet from raw parts (used by the fault-tolerant
    /// construction, which builds the union DAG itself).
    pub fn from_parts(nodes: Vec<DpvNode>, sources: Vec<(DeviceId, NodeId)>, dim: usize) -> DpvNet {
        DpvNet {
            nodes,
            sources,
            dim,
        }
    }

    /// Builds the DPVNet for a set of path expressions over one topology
    /// (the union construction of §4.3): enumerates all valid paths from
    /// the ingress devices, inserts them into a prefix trie, and suffix-
    /// merges the trie into the minimal DAG.
    pub fn build(
        topo: &Topology,
        ingress: &[DeviceId],
        exprs: &[PathExpr],
    ) -> Result<DpvNet, DpvNetError> {
        Self::build_with_cap(topo, ingress, exprs, DEFAULT_PATH_CAP)
    }

    /// [`DpvNet::build`] with an explicit path cap.
    pub fn build_with_cap(
        topo: &Topology,
        ingress: &[DeviceId],
        exprs: &[PathExpr],
        cap: usize,
    ) -> Result<DpvNet, DpvNetError> {
        let paths = enumerate_valid_paths(topo, ingress, exprs, cap)?;
        Ok(from_paths(&paths, exprs.len(), topo))
    }

    /// Fast path: the all-sources shortest-path DAG toward `dst`
    /// (the DPVNet of `(. * dst, == shortest)` from every device), used
    /// for `equal` invariants like RCDC's all-shortest-path availability.
    pub fn shortest_path_dag(
        topo: &Topology,
        dst: DeviceId,
        down: &[tulkun_netmodel::LinkId],
    ) -> DpvNet {
        let dist = topo.bfs_hops(dst, down);
        // One node per reachable device; edges from d to neighbors one
        // hop closer to dst.
        let mut map: HashMap<DeviceId, NodeId> = HashMap::new();
        let mut nodes = Vec::new();
        for d in topo.devices() {
            if dist[d.idx()] == u32::MAX {
                continue;
            }
            let id = NodeId(nodes.len() as u32);
            map.insert(d, id);
            nodes.push(DpvNode {
                dev: d,
                out: Vec::new(),
                inn: Vec::new(),
                accept: vec![d == dst],
                label: format!("{}1", topo.name(d)),
            });
        }
        for d in topo.devices() {
            let Some(&id) = map.get(&d) else { continue };
            if d == dst {
                continue;
            }
            for &(n, l) in topo.neighbors(d) {
                if down.contains(&l) {
                    continue;
                }
                if dist[n.idx()] != u32::MAX && dist[n.idx()] + 1 == dist[d.idx()] {
                    let nid = map[&n];
                    nodes[id.idx()].out.push(nid);
                    nodes[nid.idx()].inn.push(id);
                }
            }
        }
        let sources = topo
            .devices()
            .filter(|d| *d != dst)
            .filter_map(|d| map.get(&d).map(|&id| (d, id)))
            .collect();
        DpvNet {
            nodes,
            sources,
            dim: 1,
        }
    }

    /// Fast path: the `(device, slack)` DAG of all walks from `src` to
    /// `dst` with at most `shortest + k` hops. Linear in `|E|·k`; unlike
    /// [`DpvNet::build`] it does not exclude device revisits (a revisit
    /// costs ≥ 2 slack, so for `k < 2` the two constructions coincide).
    pub fn slack_dag(topo: &Topology, src: DeviceId, dst: DeviceId, k: u32) -> DpvNet {
        let dist = topo.bfs_hops(dst, &[]);
        let mut map: HashMap<(DeviceId, u32), NodeId> = HashMap::new();
        let mut nodes: Vec<DpvNode> = Vec::new();
        if dist[src.idx()] == u32::MAX {
            // Unreachable: a lone, non-accepting source node.
            let id = NodeId(0);
            nodes.push(DpvNode {
                dev: src,
                out: vec![],
                inn: vec![],
                accept: vec![false],
                label: format!("{}1", topo.name(src)),
            });
            return DpvNet {
                nodes,
                sources: vec![(src, id)],
                dim: 1,
            };
        }
        let mut label_count: HashMap<DeviceId, u32> = HashMap::new();
        let mut mk = |dev: DeviceId,
                      slack: u32,
                      nodes: &mut Vec<DpvNode>,
                      map: &mut HashMap<(DeviceId, u32), NodeId>| {
            *map.entry((dev, slack)).or_insert_with(|| {
                let id = NodeId(nodes.len() as u32);
                let c = label_count.entry(dev).or_insert(0);
                *c += 1;
                nodes.push(DpvNode {
                    dev,
                    out: vec![],
                    inn: vec![],
                    accept: vec![dev == dst],
                    label: format!("{}{}", topo.name(dev), c),
                });
                id
            })
        };
        // BFS over (device, slack) pairs from the source.
        let start = mk(src, 0, &mut nodes, &mut map);
        let mut queue = vec![(src, 0u32)];
        let mut head = 0;
        while head < queue.len() {
            let (d, slack) = queue[head];
            head += 1;
            if d == dst {
                continue; // paths end at the destination
            }
            let id = map[&(d, slack)];
            for &(n, _) in topo.neighbors(d) {
                if dist[n.idx()] == u32::MAX {
                    continue;
                }
                // Moving d→n costs 1 hop; slack grows by 1+dist(n)-dist(d).
                let delta = 1 + dist[n.idx()] as i64 - dist[d.idx()] as i64;
                let ns = slack as i64 + delta;
                if ns < 0 || ns > k as i64 {
                    continue;
                }
                let existed = map.contains_key(&(n, ns as u32));
                let nid = mk(n, ns as u32, &mut nodes, &mut map);
                if !nodes[id.idx()].out.contains(&nid) {
                    nodes[id.idx()].out.push(nid);
                    nodes[nid.idx()].inn.push(id);
                }
                if !existed {
                    queue.push((n, ns as u32));
                }
            }
        }
        prune_dead(&mut nodes, start);
        DpvNet {
            nodes,
            sources: vec![(src, start)],
            dim: 1,
        }
    }
}

/// Removes nodes that cannot reach an accepting node (keeps the source
/// even if dead so sources always exist), compacting ids.
fn prune_dead(nodes: &mut Vec<DpvNode>, source: NodeId) {
    let n = nodes.len();
    let mut live = vec![false; n];
    // Reverse reachability from accepting nodes.
    let mut stack: Vec<usize> = (0..n)
        .filter(|&i| nodes[i].accept.iter().any(|&a| a))
        .collect();
    for &s in &stack {
        live[s] = true;
    }
    while let Some(i) = stack.pop() {
        for &up in &nodes[i].inn {
            if !live[up.idx()] {
                live[up.idx()] = true;
                stack.push(up.idx());
            }
        }
    }
    live[source.idx()] = true;
    if live.iter().all(|&l| l) {
        return;
    }
    let mut remap = vec![NodeId(u32::MAX); n];
    let mut new_nodes = Vec::new();
    for i in 0..n {
        if live[i] {
            remap[i] = NodeId(new_nodes.len() as u32);
            new_nodes.push(nodes[i].clone());
        }
    }
    for node in &mut new_nodes {
        node.out = node
            .out
            .iter()
            .filter(|o| live[o.idx()])
            .map(|o| remap[o.idx()])
            .collect();
        node.inn = node
            .inn
            .iter()
            .filter(|o| live[o.idx()])
            .map(|o| remap[o.idx()])
            .collect();
    }
    *nodes = new_nodes;
}

/// One enumerated valid path plus its per-expression acceptance marks.
#[derive(Debug, Clone)]
pub struct ValidPath {
    /// The devices of the path, in order.
    pub devices: Vec<DeviceId>,
    /// Per expression: does the path satisfy it?
    pub accept: Vec<bool>,
}

/// Per-expression enumeration context: DFA, liveness, bounds and the
/// distance-to-destination table used for branch-and-bound pruning.
struct ExprCtx {
    dfa: Dfa,
    live: Vec<bool>,
    /// Absolute hop bound for this expression, possibly tightened per
    /// ingress (symbolic `<= shortest + k` filters).
    static_bound: u32,
    /// `shortest + k` slack for symbolic `<=` filters, if any.
    symbolic_le: Option<u32>,
    /// Minimum hops from each device to any destination device of the
    /// expression (`u32::MAX` when unreachable).
    dist_to_dest: Vec<u32>,
}

/// Enumerates all valid paths from the ingress devices (DFS over the
/// product of the topology and the per-expression DFAs, with
/// branch-and-bound pruning on remaining distance to the destinations).
pub fn enumerate_valid_paths(
    topo: &Topology,
    ingress: &[DeviceId],
    exprs: &[PathExpr],
    cap: usize,
) -> Result<Vec<ValidPath>, DpvNetError> {
    let alphabet: Vec<String> = topo.devices().map(|d| topo.name(d).to_string()).collect();
    let n_dev = topo.num_devices() as u32;

    let mut ctxs = Vec::with_capacity(exprs.len());
    for e in exprs {
        let dfa = Dfa::compile(&e.regex, &alphabet);
        let live = dfa.live_states();
        // Destination devices: symbols that can complete an accepted
        // path; pruning distance is the BFS distance to the nearest one.
        let mut dest_devs: Vec<DeviceId> = Vec::new();
        for sym in 0..alphabet.len() {
            if (0..dfa.num_states() as u32).any(|q| dfa.is_accepting(dfa.step(q, sym))) {
                dest_devs.push(DeviceId(sym as u32));
            }
        }
        let mut dist_to_dest = vec![u32::MAX; topo.num_devices()];
        for &d in &dest_devs {
            for (i, h) in topo.bfs_hops(d, &[]).into_iter().enumerate() {
                dist_to_dest[i] = dist_to_dest[i].min(h);
            }
        }

        let symbolic_le = e
            .filters
            .iter()
            .filter_map(|f| match (f.op, f.bound) {
                (crate::spec::FilterOp::Le, crate::spec::LengthBound::ShortestPlus(k)) => {
                    Some(k.max(0) as u32)
                }
                (crate::spec::FilterOp::Eq, crate::spec::LengthBound::ShortestPlus(k)) => {
                    Some(k.max(0) as u32)
                }
                _ => None,
            })
            .min();

        let mut candidates: Vec<u32> = Vec::new();
        if let Some(b) = e.concrete_hop_bound() {
            candidates.push(b);
        }
        if e.has_symbolic_filter() {
            candidates.push(n_dev - 1 + symbolic_le.unwrap_or(0));
        }
        // Intrinsically finite languages (e.g. `S A B D`, `SD|S.D|S..D`)
        // carry their own hop bound.
        if let Some(len) = dfa.max_word_len() {
            candidates.push(len.saturating_sub(1));
        }
        if e.loop_free {
            candidates.push(n_dev - 1);
        }
        let static_bound = match candidates.into_iter().min() {
            Some(b) => b.min(n_dev - 1 + 8),
            None => return Err(DpvNetError::UnboundedPathSet),
        };
        ctxs.push(ExprCtx {
            dfa,
            live,
            static_bound,
            symbolic_le,
            dist_to_dest,
        });
    }
    let all_loop_free = exprs.iter().all(|e| e.loop_free);

    // Shortest-path matrices for symbolic filters, computed lazily per
    // ingress device.
    let mut shortest_from: HashMap<DeviceId, Vec<u32>> = HashMap::new();

    let mut paths: Vec<ValidPath> = Vec::new();
    for &ing in ingress {
        // Per-ingress tightened bounds: for symbolic `<= shortest + k`,
        // no accepted path from this ingress exceeds
        // max_d(shortest(ing, d)) + k over destination devices.
        let bounds: Vec<u32> = ctxs
            .iter()
            .map(|c| match c.symbolic_le {
                Some(k) => {
                    let dist = shortest_from
                        .entry(ing)
                        .or_insert_with(|| topo.bfs_hops(ing, &[]));
                    let max_sp = c
                        .dist_to_dest
                        .iter()
                        .enumerate()
                        .filter(|(_, &dd)| dd == 0)
                        .map(|(i, _)| dist[i])
                        .filter(|&h| h != u32::MAX)
                        .max()
                        .unwrap_or(0);
                    c.static_bound.min(max_sp + k)
                }
                None => c.static_bound,
            })
            .collect();
        let global_bound = bounds.iter().copied().max().unwrap_or(0);
        let mut visited = vec![0u32; topo.num_devices()];
        let mut stack_path: Vec<DeviceId> = Vec::new();
        let states0: Vec<u32> = ctxs.iter().map(|c| c.dfa.start()).collect();
        dfs(
            topo,
            &ctxs,
            exprs,
            &bounds,
            global_bound,
            all_loop_free,
            ing,
            states0,
            &mut visited,
            &mut stack_path,
            &mut shortest_from,
            &mut paths,
            cap,
        )?;
    }
    Ok(paths)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    topo: &Topology,
    ctxs: &[ExprCtx],
    exprs: &[PathExpr],
    bounds: &[u32],
    global_bound: u32,
    all_loop_free: bool,
    dev: DeviceId,
    states: Vec<u32>,
    visited: &mut Vec<u32>,
    path: &mut Vec<DeviceId>,
    shortest_from: &mut HashMap<DeviceId, Vec<u32>>,
    out: &mut Vec<ValidPath>,
    cap: usize,
) -> Result<(), DpvNetError> {
    // Consume `dev` in every automaton.
    let states: Vec<u32> = states
        .iter()
        .zip(ctxs)
        .map(|(&s, c)| c.dfa.step(s, dev.idx()))
        .collect();
    let hops = path.len() as u32; // after pushing dev below
                                  // Feasibility per expression: the DFA state must be live AND the
                                  // remaining distance to a destination must fit the hop bound
                                  // (branch-and-bound).
    let feasible = |i: usize, s: u32| {
        let c = &ctxs[i];
        if !c.live[s as usize] {
            return false;
        }
        let dd = c.dist_to_dest[dev.idx()];
        dd != u32::MAX && hops + dd <= bounds[i]
    };
    if !(0..ctxs.len()).any(|i| feasible(i, states[i])) {
        return Ok(()); // no expression can still be completed
    }
    path.push(dev);
    visited[dev.idx()] += 1;

    // Acceptance per expression.
    let mut accept = vec![false; ctxs.len()];
    let mut any = false;
    for (i, c) in ctxs.iter().enumerate() {
        if !c.dfa.is_accepting(states[i]) || hops > bounds[i] {
            continue;
        }
        if exprs[i].loop_free && visited.iter().any(|&v| v > 1) {
            continue;
        }
        // Length filters: shortest distance between path endpoints.
        let src = path[0];
        let shortest = if exprs[i].filters.is_empty() {
            0
        } else {
            let dist = shortest_from
                .entry(src)
                .or_insert_with(|| topo.bfs_hops(src, &[]));
            dist[dev.idx()]
        };
        if exprs[i].filters.iter().all(|f| f.accepts(hops, shortest)) {
            accept[i] = true;
            any = true;
        }
    }
    if any {
        if out.len() >= cap {
            path.pop();
            visited[dev.idx()] -= 1;
            return Err(DpvNetError::PathExplosion { cap });
        }
        out.push(ValidPath {
            devices: path.clone(),
            accept,
        });
    }

    if hops < global_bound {
        for &(n, _) in topo.neighbors(dev) {
            if all_loop_free && visited[n.idx()] > 0 {
                continue;
            }
            dfs(
                topo,
                ctxs,
                exprs,
                bounds,
                global_bound,
                all_loop_free,
                n,
                states.clone(),
                visited,
                path,
                shortest_from,
                out,
                cap,
            )?;
        }
    }
    path.pop();
    visited[dev.idx()] -= 1;
    Ok(())
}

/// Builds the minimal suffix-merged DAG from an enumerated path set
/// (trie insertion + bottom-up hash-consing: the paper's state
/// minimization step).
pub fn from_paths(paths: &[ValidPath], dim: usize, topo: &Topology) -> DpvNet {
    // Trie with a virtual root.
    #[derive(Clone)]
    struct TrieNode {
        dev: DeviceId,
        children: Vec<(DeviceId, usize)>,
        accept: Vec<bool>,
    }
    let mut trie: Vec<TrieNode> = vec![TrieNode {
        dev: DeviceId(u32::MAX),
        children: Vec::new(),
        accept: vec![false; dim],
    }];
    for p in paths {
        let mut cur = 0usize;
        for &d in &p.devices {
            cur = match trie[cur].children.iter().find(|(cd, _)| *cd == d) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = trie.len();
                    trie.push(TrieNode {
                        dev: d,
                        children: Vec::new(),
                        accept: vec![false; dim],
                    });
                    trie[cur].children.push((d, idx));
                    idx
                }
            };
        }
        for (i, &a) in p.accept.iter().enumerate() {
            if a {
                trie[cur].accept[i] = true;
            }
        }
    }

    // Bottom-up hash-consing: canonical id per (dev, accept, children).
    // The trie is a tree, so children always precede parents in a
    // post-order traversal.
    let mut canon_of: Vec<Option<NodeId>> = vec![None; trie.len()];
    let mut sig_map: HashMap<(DeviceId, Vec<bool>, Vec<NodeId>), NodeId> = HashMap::new();
    let mut nodes: Vec<DpvNode> = Vec::new();
    let mut label_count: HashMap<DeviceId, u32> = HashMap::new();

    // Iterative post-order over trie (skip virtual root for canon).
    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((t, expanded)) = stack.pop() {
        if !expanded {
            stack.push((t, true));
            for &(_, c) in &trie[t].children {
                stack.push((c, false));
            }
            continue;
        }
        if t == 0 {
            continue; // virtual root has no canonical node
        }
        let mut kids: Vec<NodeId> = trie[t]
            .children
            .iter()
            .map(|&(_, c)| canon_of[c].unwrap())
            .collect();
        kids.sort();
        kids.dedup();
        let sig = (trie[t].dev, trie[t].accept.clone(), kids.clone());
        let id = match sig_map.get(&sig) {
            Some(&id) => id,
            None => {
                let id = NodeId(nodes.len() as u32);
                let c = label_count.entry(trie[t].dev).or_insert(0);
                *c += 1;
                nodes.push(DpvNode {
                    dev: trie[t].dev,
                    out: kids,
                    inn: Vec::new(),
                    accept: trie[t].accept.clone(),
                    label: format!("{}{}", topo.name(trie[t].dev), c),
                });
                sig_map.insert(sig, id);
                id
            }
        };
        canon_of[t] = Some(id);
    }

    // Fill in upstream edges.
    for i in 0..nodes.len() {
        let outs = nodes[i].out.clone();
        for o in outs {
            nodes[o.idx()].inn.push(NodeId(i as u32));
        }
    }
    for node in &mut nodes {
        node.inn.sort();
        node.inn.dedup();
    }

    // Sources: canonical first-level trie children keyed by device.
    let mut sources: Vec<(DeviceId, NodeId)> = Vec::new();
    for &(d, c) in &trie[0].children {
        if let Some(id) = canon_of[c] {
            sources.push((d, id));
        }
    }
    sources.sort();
    DpvNet {
        nodes,
        sources,
        dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PathExpr;

    /// The paper's Fig. 2a topology (without C).
    pub(crate) fn fig2a_topo() -> Topology {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t
    }

    #[test]
    fn waypoint_dpvnet_matches_fig2c() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* W .* D").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        // Fig. 2c: S1, A1, B1, B2, W1, W2, D1 = 7 nodes.
        assert_eq!(net.num_nodes(), 7);
        assert_eq!(net.num_paths(), 3.0); // SAWD, SABWD, SAWBD
                                          // Exactly one destination node (device D).
        let dests: Vec<NodeId> = net.destinations().collect();
        assert_eq!(dests.len(), 1);
        assert_eq!(topo.name(net.node(dests[0]).dev), "D");
        // Device B maps to two nodes, W to two nodes.
        let b = topo.device("B").unwrap();
        let w = topo.device("W").unwrap();
        assert_eq!(net.nodes_on_device(b).len(), 2);
        assert_eq!(net.nodes_on_device(w).len(), 2);
        // One source at S.
        assert_eq!(net.sources().len(), 1);
        assert_eq!(net.sources()[0].0, s);
    }

    #[test]
    fn reverse_topo_order_is_consistent() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* W .* D").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        let order = net.reverse_topo_order();
        assert_eq!(order.len(), net.num_nodes());
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, n) in net.iter() {
            for &o in &n.out {
                assert!(pos[&o] < pos[&id], "downstream must come first");
            }
        }
    }

    #[test]
    fn simple_reachability_paths() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* D").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        // Simple S→D paths: SABD? S-A-B-D, S-A-W-D, S-A-B-W-D, S-A-W-B-D = 4.
        assert_eq!(net.num_paths(), 4.0);
    }

    #[test]
    fn length_filter_prunes_paths() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        // shortest S→D = 3 hops; allow exactly shortest.
        let pe = PathExpr::parse("S .* D")
            .unwrap()
            .loop_free()
            .shortest_only();
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        assert_eq!(net.num_paths(), 2.0); // SABD and SAWD
        let pe = PathExpr::parse("S .* D")
            .unwrap()
            .loop_free()
            .shortest_plus(1);
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        assert_eq!(net.num_paths(), 4.0);
    }

    #[test]
    fn unbounded_expression_is_rejected() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* D").unwrap(); // no loop_free, no filter
        assert_eq!(
            DpvNet::build(&topo, &[s], &[pe]).unwrap_err(),
            DpvNetError::UnboundedPathSet
        );
    }

    #[test]
    fn path_cap_triggers() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* D").unwrap().loop_free();
        let err = DpvNet::build_with_cap(&topo, &[s], &[pe], 2).unwrap_err();
        assert!(matches!(err, DpvNetError::PathExplosion { cap: 2 }));
    }

    #[test]
    fn multi_ingress_sources() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let b = topo.device("B").unwrap();
        let pe = PathExpr::parse("(S|B) .* D").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s, b], &[pe]).unwrap();
        assert_eq!(net.sources().len(), 2);
    }

    #[test]
    fn union_of_two_exprs_shares_nodes() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let p1 = PathExpr::parse("S .* D").unwrap().loop_free();
        let p2 = PathExpr::parse("S .* W").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s], &[p1, p2]).unwrap();
        assert_eq!(net.dim(), 2);
        // Destination nodes exist for both exprs.
        let mut saw = [false, false];
        for (_, n) in net.iter() {
            for (i, s) in saw.iter_mut().enumerate() {
                if n.accept[i] {
                    *s = true;
                }
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn shortest_path_dag_covers_all_sources() {
        let topo = fig2a_topo();
        let d = topo.device("D").unwrap();
        let net = DpvNet::shortest_path_dag(&topo, d, &[]);
        assert_eq!(net.num_nodes(), 5); // every device reaches D
        assert_eq!(net.sources().len(), 4);
        // B and W point straight at D; A at both; S at A.
        let a = topo.device("A").unwrap();
        let na = net.nodes_on_device(a)[0];
        assert_eq!(net.node(na).out.len(), 2);
        // Paths: from S: SABD, SAWD → but num_paths sums over all sources.
        assert_eq!(net.num_paths(), 2.0 + 1.0 + 1.0 + 2.0); // S:2, A:2, B:1, W:1
    }

    #[test]
    fn slack_dag_matches_enumeration_for_k0_and_k1() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let d = topo.device("D").unwrap();
        for k in [0u32, 1] {
            let fast = DpvNet::slack_dag(&topo, s, d, k);
            let pe = PathExpr::parse("S .* D")
                .unwrap()
                .loop_free()
                .shortest_plus(k as i32);
            let exact = DpvNet::build(&topo, &[s], &[pe]).unwrap();
            assert_eq!(fast.num_paths(), exact.num_paths(), "k={k}");
        }
    }

    #[test]
    fn slack_dag_unreachable_destination() {
        let mut topo = Topology::new();
        let s = topo.add_device("S");
        let d = topo.add_device("D");
        let _ = topo.add_device("X");
        topo.add_link(s, topo.device("X").unwrap(), 1);
        let net = DpvNet::slack_dag(&topo, s, d, 2);
        assert_eq!(net.num_paths(), 0.0);
        assert_eq!(net.sources().len(), 1);
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* W .* D").unwrap().loop_free();
        let net = DpvNet::build(&topo, &[s], &[pe]).unwrap();
        let dot = net.to_dot(&topo);
        for (_, n) in net.iter() {
            assert!(dot.contains(&n.label));
        }
    }
}
