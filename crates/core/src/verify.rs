//! In-process verification driver.
//!
//! [`Session`] instantiates one on-device verifier per participating
//! device, delivers DVM messages until quiescence, and evaluates the
//! invariant's formula at the DPVNet sources. The discrete-event
//! simulator and the threaded runner drive the same verifiers with real
//! latencies; this driver is the convenient synchronous API (and the
//! reference semantics the others are tested against).

use crate::churn::{ChurnState, TopologyEvent};
use crate::count::Counts;
use crate::dpvnet::NodeId;
use crate::dvm::{DestMode, DeviceVerifier, Envelope, VerifierConfig};
use crate::intent::{
    plan_intent_on, IntentDelta, IntentId, IntentStore, StoreReplan, MAX_INTENT_RETRIES,
};
use crate::localcheck::{ContractViolation, LocalChecker};
use crate::planner::{CountingPlan, NodeTask, Plan, PlanError, PlanKind, Planner};
use crate::spec::{Invariant, PacketSpace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use tulkun_bdd::serial::{self, PortablePred};
use tulkun_bdd::{BddManager, HeaderLayout};
use tulkun_json::{Json, ToJson};
use tulkun_netmodel::network::{Network, RuleUpdate, UpdateBatch};
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::DeviceId;
use tulkun_predicate::BackendKind;
use tulkun_telemetry::{JournalKind, Telemetry};

/// Why an invariant does not hold.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// A universe's outcome vector fails the behavior formula at a
    /// source.
    Counting {
        /// The per-universe outcome set at the source.
        counts: Counts,
    },
    /// A local contract is broken (`equal` behaviors).
    Contract {
        /// Required forwarding set.
        expected: Vec<DeviceId>,
        /// Observed forwarding set.
        found: Vec<DeviceId>,
        /// Human-readable explanation.
        reason: String,
    },
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The device reporting the violation (a source for counting; the
    /// contract holder for `equal`).
    pub device: DeviceId,
    /// Its DPVNet node, in the *violated intent's* local numbering —
    /// the same id a standalone session for that intent would report.
    pub node: NodeId,
    /// The violating packet set.
    pub pred: PortablePred,
    /// What went wrong.
    pub kind: ViolationKind,
    /// The intent that failed (0 = the base intent; omitted from the
    /// JSON encoding when 0, so single-intent sessions keep their
    /// pre-intent byte encoding).
    pub intent: u64,
}

/// How current one DPVNet node's contribution to the verdict is after
/// topology churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Counted against the current epoch's plan.
    Fresh,
    /// The node's device last converged in the given (superseded)
    /// epoch — e.g. the convergence watchdog gave up on it mid-round.
    Stale(u64),
    /// The node's device is quarantined (dead or partitioned); its last
    /// known results are not part of the current plan at all.
    Unreachable,
}

/// The verification verdict.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Everything that failed (empty = the invariant holds).
    pub violations: Vec<Violation>,
    /// DVM messages processed to reach quiescence.
    pub messages: usize,
    /// Per-node freshness markers, sorted by node id. Empty until a
    /// topology churn occurs; callers then get explicit partial results
    /// (`Fresh`/`Stale`/`Unreachable`) instead of a hang. Like
    /// `messages`, excluded from [`Report::canonical_bytes`] — the
    /// verdict over reachable nodes must stay substrate-identical.
    pub freshness: Vec<(NodeId, Freshness)>,
    /// Devices currently quarantined (dead or partitioned), sorted.
    pub quarantined: Vec<DeviceId>,
}

impl ToJson for ViolationKind {
    fn to_json(&self) -> Json {
        match self {
            ViolationKind::Counting { counts } => Json::Object(vec![(
                "Counting".to_string(),
                Json::Object(vec![("counts".to_string(), counts.to_json())]),
            )]),
            ViolationKind::Contract {
                expected,
                found,
                reason,
            } => Json::Object(vec![(
                "Contract".to_string(),
                Json::Object(vec![
                    ("expected".to_string(), expected.to_json()),
                    ("found".to_string(), found.to_json()),
                    ("reason".to_string(), reason.to_json()),
                ]),
            )]),
        }
    }
}

impl tulkun_json::FromJson for ViolationKind {
    fn from_json(v: &Json) -> Result<Self, tulkun_json::JsonError> {
        use tulkun_json::{FromJson, JsonError};
        if let Some(c) = v.get("Counting") {
            return Ok(ViolationKind::Counting {
                counts: FromJson::from_json(
                    c.get("counts")
                        .ok_or_else(|| JsonError::missing_field("counts"))?,
                )?,
            });
        }
        if let Some(c) = v.get("Contract") {
            let field = |name: &str| c.get(name).ok_or_else(|| JsonError::missing_field(name));
            return Ok(ViolationKind::Contract {
                expected: FromJson::from_json(field("expected")?)?,
                found: FromJson::from_json(field("found")?)?,
                reason: FromJson::from_json(field("reason")?)?,
            });
        }
        Err(JsonError::expected("violation kind", v))
    }
}

// Hand-written (not `impl_json_object!`) so `intent` is only emitted
// when non-zero: the base intent's violations keep the exact bytes the
// pre-intent encoding produced, which `Report::canonical_bytes`
// equivalence gates across substrates and sessions depend on.
impl ToJson for Violation {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("device".to_string(), self.device.to_json()),
            ("node".to_string(), self.node.to_json()),
            ("pred".to_string(), self.pred.to_json()),
            ("kind".to_string(), self.kind.to_json()),
        ];
        if self.intent != 0 {
            fields.push(("intent".to_string(), self.intent.to_json()));
        }
        Json::Object(fields)
    }
}

impl tulkun_json::FromJson for Violation {
    fn from_json(v: &Json) -> Result<Self, tulkun_json::JsonError> {
        use tulkun_json::{FromJson, JsonError};
        let field = |name: &str| v.get(name).ok_or_else(|| JsonError::missing_field(name));
        Ok(Violation {
            device: FromJson::from_json(field("device")?)?,
            node: FromJson::from_json(field("node")?)?,
            pred: FromJson::from_json(field("pred")?)?,
            kind: FromJson::from_json(field("kind")?)?,
            intent: match v.get("intent") {
                Some(i) => FromJson::from_json(i)?,
                None => 0,
            },
        })
    }
}

impl Report {
    /// Does the invariant hold?
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// A deterministic, substrate-independent byte encoding of the
    /// verdict: violations serialized to JSON and sorted. The message
    /// count is deliberately excluded — it is a property of the
    /// execution substrate (the event simulator, the threaded runner
    /// and the synchronous reference deliver different message
    /// schedules), while the verdict itself must be identical.
    /// Predicates are already canonical: BDD export is children-first
    /// post-order over a hash-consed DAG, so equal functions under the
    /// same variable order serialize to equal bytes on every substrate.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut rendered: Vec<String> =
            self.violations.iter().map(tulkun_json::to_string).collect();
        rendered.sort();
        let mut out = String::from("[");
        for (i, r) in rendered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(r);
        }
        out.push(']');
        out.into_bytes()
    }
}

/// Compiles a packet space to a portable predicate.
pub fn compile_packet_space(layout: &HeaderLayout, ps: &PacketSpace) -> PortablePred {
    let mut m = BddManager::new(layout.num_vars());
    let p = ps.compile(&mut m, layout);
    serial::export(&m, p)
}

/// A live distributed-counting session over a network snapshot.
pub struct Session {
    plan: CountingPlan,
    packet_space: PortablePred,
    verifiers: BTreeMap<DeviceId, DeviceVerifier>,
    queue: VecDeque<Envelope>,
    /// Messages processed since creation.
    pub messages_processed: usize,
    /// Event-fence generation: bumped by every applied churn event and
    /// every intent install/remove.
    epoch: u64,
    /// Cumulative link/device churn.
    churn: ChurnState,
    /// Applied topology-churn events (freshness marking is churn-era
    /// only; intent churn alone never degrades a report).
    churn_events: u64,
    /// Devices currently quarantined (no deliveries, no recounting).
    quarantined: BTreeSet<DeviceId>,
    /// Old-plan nodes stranded on quarantined devices.
    unreachable: BTreeMap<NodeId, DeviceId>,
    /// Live intents and the shared (deduplicated) global node table.
    store: IntentStore,
    /// Intent id → the epoch whose fence degraded it (freshness
    /// attribution; cleared when a later fence revives the intent).
    degraded_epochs: BTreeMap<u64, u64>,
    /// The network snapshot, kept current under rule updates so
    /// verifiers can be built lazily for devices a later intent pulls
    /// into the plan.
    net: Network,
    cfg: VerifierConfig,
    backend_kind: BackendKind,
    /// Observability handle (disabled by default; see
    /// [`Session::set_telemetry`]). The reference session records only
    /// flight-recorder journal entries — no spans, its clockless
    /// delivery has nothing to time.
    tel: Arc<Telemetry>,
}

impl Session {
    /// Builds verifiers for every device with a task. Panics if the plan
    /// is not a counting plan (use [`verify_snapshot`] for the generic
    /// entry point).
    pub fn new(net: &Network, plan: &Plan) -> Session {
        let PlanKind::Counting(cp) = &plan.kind else {
            panic!("Session requires a counting plan; use verify_snapshot for local plans");
        };
        Session::from_counting(net, cp.clone(), &plan.invariant.packet_space)
    }

    /// Builds a session directly from a counting plan (on the default
    /// BDD backend).
    pub fn from_counting(net: &Network, cp: CountingPlan, ps: &PacketSpace) -> Session {
        Session::from_counting_with_backend(net, cp, ps, BackendKind::Bdd)
    }

    /// Like [`Session::from_counting`], with an explicit predicate
    /// backend. [`BackendKind::Auto`] resolves against the network
    /// (sessions have no update stream, so the rate hint is zero and
    /// `Auto` stays on BDDs).
    pub fn from_counting_with_backend(
        net: &Network,
        cp: CountingPlan,
        ps: &PacketSpace,
        backend: BackendKind,
    ) -> Session {
        let kind = backend.resolve(tulkun_predicate::network_ip_only(net), 0.0);
        let packet_space = compile_packet_space(&net.layout, ps);
        let cfg = VerifierConfig {
            n_exprs: cp.exprs.len(),
            track_escapes: cp.track_escapes,
            reduce: cp.reduce,
            dest_mode: DestMode::Axiomatic,
        };
        // Group tasks by device.
        let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        for t in &cp.tasks {
            by_dev.entry(t.dev).or_default().push(t.clone());
        }
        let mut verifiers = BTreeMap::new();
        let mut queue = VecDeque::new();
        for (dev, tasks) in by_dev {
            let mut v = DeviceVerifier::builder(
                dev,
                net.layout,
                net.fib(dev).clone(),
                &packet_space,
                cfg.clone(),
            )
            .backend(kind)
            .tasks(tasks)
            .build();
            v.init(&mut queue);
            verifiers.insert(dev, v);
        }
        let store = IntentStore::with_base(cp.clone(), ps.clone(), None);
        Session {
            plan: cp,
            packet_space,
            verifiers,
            queue,
            messages_processed: 0,
            epoch: 0,
            churn: ChurnState::new(),
            churn_events: 0,
            quarantined: BTreeSet::new(),
            unreachable: BTreeMap::new(),
            store,
            degraded_epochs: BTreeMap::new(),
            net: net.clone(),
            cfg,
            backend_kind: kind,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach an observability handle: flight-recorder journal entries
    /// for every fence/churn/intent event the session applies. The
    /// default handle is disabled (every record call is one branch).
    pub fn set_telemetry(&mut self, tel: Arc<Telemetry>) {
        self.tel = tel;
    }

    /// The counting plan driving this session.
    pub fn plan(&self) -> &CountingPlan {
        &self.plan
    }

    /// Access a device's verifier.
    pub fn verifier(&self, dev: DeviceId) -> Option<&DeviceVerifier> {
        self.verifiers.get(&dev)
    }

    /// Mutable access to a device's verifier (result export needs the
    /// device's BDD manager).
    pub fn verifier_mut(&mut self, dev: DeviceId) -> Option<&mut DeviceVerifier> {
        self.verifiers.get_mut(&dev)
    }

    /// Delivers queued messages until no messages are in flight.
    /// Returns the number processed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut n = 0;
        while let Some(env) = self.queue.pop_front() {
            n += 1;
            if self.quarantined.contains(&env.to) {
                continue;
            }
            if let Some(v) = self.verifiers.get_mut(&env.to) {
                v.handle(&env, &mut self.queue);
            }
        }
        self.messages_processed += n;
        n
    }

    /// Applies a rule update at its device and re-runs to quiescence.
    /// Returns the number of messages the update caused.
    pub fn apply_rule_update(&mut self, update: &RuleUpdate) -> usize {
        self.apply_batch(std::slice::from_ref(update))
    }

    /// Applies a burst of rule updates — one coalesced per-device batch
    /// each — and re-runs to quiescence. Returns the number of messages
    /// the burst caused.
    pub fn apply_batch(&mut self, updates: &[RuleUpdate]) -> usize {
        self.stage_batch(updates);
        self.run_to_quiescence()
    }

    /// Injects a burst of rule updates *without* running to quiescence:
    /// the UPDATE wave each coalesced per-device batch causes stays in
    /// the in-flight queue. The always-on service uses this to admit
    /// work while deferring propagation to its own drain cadence;
    /// [`Session::report`] stays callable in between — it evaluates
    /// whatever each source has converged to so far, so a snapshot
    /// never has to wait for (or force) quiescence.
    pub fn stage_batch(&mut self, updates: &[RuleUpdate]) {
        let batch: UpdateBatch = updates.iter().cloned().collect();
        // Keep the snapshot current: a verifier built lazily for a
        // later intent must see the post-update FIB.
        self.net.apply_batch(&batch);
        let n = updates.len();
        let mut journaled = false;
        for (dev, ops) in batch.coalesced() {
            if !journaled {
                journaled = true;
                self.tel
                    .journal(JournalKind::BatchApplied, dev, self.epoch, 0, None, || {
                        format!("{n} updates")
                    });
            }
            if let Some(v) = self.verifiers.get_mut(&dev) {
                v.handle_fib_batch(&ops, &mut self.queue);
            }
        }
    }

    /// Messages currently in flight (staged but not yet delivered).
    /// Zero means every past batch has fully propagated, i.e. a
    /// [`Session::report`] taken now is quiescent, not just current.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Signals a link failure (`up = false`) or recovery to both
    /// endpoint devices and re-runs to quiescence.
    pub fn apply_link_event(&mut self, a: DeviceId, b: DeviceId, up: bool) -> usize {
        self.tel
            .journal(JournalKind::LinkEvent, a, self.epoch, 0, None, || {
                let dir = if up { "up" } else { "down" };
                format!("link-{dir} d{}-d{}", a.0, b.0)
            });
        if let Some(v) = self.verifiers.get_mut(&a) {
            v.handle_link_event(b, up, &mut self.queue);
        }
        if let Some(v) = self.verifiers.get_mut(&b) {
            v.handle_link_event(a, up, &mut self.queue);
        }
        self.run_to_quiescence()
    }

    /// The current topology generation (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one live topology churn event: folds it into the
    /// cumulative churn state, re-plans the invariant against the
    /// post-churn topology (`base` is the *original* topology; `inv`
    /// the invariant this session's plan was compiled from), bumps the
    /// epoch fence, applies the incremental task diff, has every
    /// reachable device re-announce its durable state under the new
    /// epoch, and re-runs to quiescence. Returns the number of messages
    /// the churn caused.
    ///
    /// Devices named by `DeviceDown` are quarantined: no deliveries, no
    /// recounting; their old-plan nodes show up `Unreachable` in the
    /// report. Every *live* intent is re-planned under the same fence
    /// ([`IntentStore::replan_all_for_churn`]): unaffected slices keep
    /// their node ids and ship zero tasks, slices the churned topology
    /// cannot host degrade per-intent (excluded from evaluation, marked
    /// stale/unreachable in the report) instead of rejecting the event,
    /// and parked installs get their bounded retry against the new
    /// epoch. Only a failure to re-plan the *base* invariant leaves the
    /// session on the old epoch.
    pub fn apply_topology_event(
        &mut self,
        ev: &TopologyEvent,
        base: &Topology,
        inv: &Invariant,
    ) -> Result<usize, PlanError> {
        let mut churn = self.churn.clone();
        if !churn.apply(ev) {
            return Ok(0);
        }
        // Transactional: an Err re-planning the base invariant happens
        // before the store mutates anything.
        let replan = self
            .store
            .replan_all_for_churn(base, Some(inv), &churn, None)?;
        self.churn = churn;
        self.churn_events += 1;
        self.epoch += 1;
        let epoch = self.epoch;
        self.tel.journal(
            JournalKind::TopologyChurn,
            ev.primary_device(),
            epoch,
            0,
            None,
            || ev.describe(),
        );
        self.tel.journal(
            JournalKind::EpochFence,
            ev.primary_device(),
            epoch,
            0,
            None,
            || format!("fence to epoch {epoch} (churn)"),
        );
        journal_replan_transitions(
            &self.tel,
            &mut self.degraded_epochs,
            &replan,
            ev.primary_device(),
            epoch,
            0,
            &ev.describe(),
        );
        for v in self.verifiers.values_mut() {
            v.set_epoch(epoch);
        }
        match ev {
            TopologyEvent::DeviceDown(d) => {
                self.quarantined.insert(*d);
            }
            TopologyEvent::DeviceUp(d) => {
                // Revived: clean slate — soft state from before the
                // outage is meaningless under the new plan.
                self.quarantined.remove(d);
                if let Some(v) = self.verifiers.get_mut(d) {
                    let all = v.node_ids();
                    v.remove_nodes(&all);
                }
            }
            TopologyEvent::LinkDown(..) | TopologyEvent::LinkUp(..) => {}
        }
        for (dev, gone) in &replan.removed {
            if let Some(v) = self.verifiers.get_mut(dev) {
                v.remove_nodes(gone);
            }
        }
        // New nodes import their context's packet space; compile each
        // referenced context once.
        let mut spaces: BTreeMap<usize, PortablePred> = BTreeMap::new();
        for groups in replan.changed.values() {
            for g in groups {
                if let Some(c) = g.ctx {
                    spaces.entry(c).or_insert_with(|| {
                        compile_packet_space(&self.net.layout, self.store.context_space(c))
                    });
                }
            }
        }
        // Build verifiers lazily for devices the re-plan pulls in (e.g.
        // a detour through a device the base plan never tasked).
        for dev in replan.changed.keys() {
            if !self.verifiers.contains_key(dev) {
                let mut v = DeviceVerifier::builder(
                    *dev,
                    self.net.layout,
                    self.net.fib(*dev).clone(),
                    &self.packet_space,
                    self.cfg.clone(),
                )
                .backend(self.backend_kind)
                .tasks(Vec::new())
                .build();
                v.init(&mut self.queue);
                self.verifiers.insert(*dev, v);
            }
        }
        for (dev, groups) in &replan.changed {
            let v = self.verifiers.get_mut(dev).expect("built above");
            for g in groups {
                match g.ctx {
                    None => v.set_tasks(g.tasks.clone(), &mut self.queue),
                    Some(c) => v.install_tasks(g.tasks.clone(), &spaces[&c], &mut self.queue),
                }
            }
        }
        // Everyone reachable re-announces: the epoch fence dropped
        // whatever was in flight, re-announcement repairs it.
        for (dev, v) in self.verifiers.iter_mut() {
            if !self.quarantined.contains(dev) {
                v.reannounce(&mut self.queue);
            }
        }
        self.unreachable.retain(|_, d| self.churn.is_down(*d));
        for (n, d) in &replan.unreachable {
            self.unreachable.insert(*n, *d);
        }
        if let Some(p) = self.store.base_plan() {
            self.plan = p.clone();
        }
        Ok(self.run_to_quiescence())
    }

    /// Evaluates every live intent at its DPVNet sources (each universe
    /// of each packet set must satisfy the intent's formula).
    pub fn report(&mut self) -> Report {
        let store = &self.store;
        let verifiers = &mut self.verifiers;
        let mut r = evaluate_intents(store, |dev, node| {
            verifiers
                .get_mut(&dev)
                .map_or_else(Vec::new, |v| v.node_result(node, None))
        });
        r.messages = self.messages_processed;
        if self.churn_events > 0 {
            mark_freshness_store(
                &mut r,
                &self.store,
                &self.unreachable,
                self.quarantined.iter().copied(),
                &BTreeMap::new(),
                &self.degraded_epochs,
            );
        }
        r
    }

    /// The live intents and their shared global node table.
    pub fn intents(&self) -> &IntentStore {
        &self.store
    }

    /// Compiles `inv` against the session's topology and installs it as
    /// a new runtime intent: the invariant's DPVNet slice is interned
    /// into the shared node table (nodes already installed by other
    /// intents are reused, not duplicated), only the devices in the
    /// slice receive new or re-announced tasks, the epoch fence is
    /// bumped so superseded in-flight messages can never corrupt the
    /// new fixpoint, and the session re-converges. Returns the new
    /// intent id and the applied delta (its `reused_nodes` /
    /// `touched_devices` evidence slicing locality).
    pub fn install_intent(
        &mut self,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.install_intent_inner(None, name, inv)
    }

    /// [`Session::install_intent`] under a caller-chosen id — for
    /// deterministic replay (e.g. a hot backend swap re-building the
    /// session must keep every live intent's id stable).
    pub fn install_intent_as(
        &mut self,
        id: IntentId,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        self.install_intent_inner(Some(id), name, inv)
    }

    fn install_intent_inner(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        inv: &Invariant,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        let cp = if self.churn.is_quiet() {
            let plan = Planner::new(&self.net.topology).plan(inv)?;
            let PlanKind::Counting(cp) = &plan.kind else {
                return Err(PlanError::Unsupported(
                    "runtime intents require a counting plan (local-contract \
                     behaviors have no DPVNet slice to install)"
                        .to_string(),
                ));
            };
            cp.clone()
        } else {
            // The install races an active topology fence: plan against
            // the effective (post-churn) topology; a slice it cannot
            // host is *parked* for bounded retry on the next fence
            // instead of rejected.
            let effective = self.churn.apply_to(&self.net.topology);
            match plan_intent_on(&effective, inv, &self.churn, None) {
                Ok(cp) => cp,
                Err(e) => {
                    let id = self.store.park(id, name, inv.clone())?;
                    let epoch = self.epoch;
                    self.tel.journal(
                        JournalKind::IntentParked,
                        DeviceId(0),
                        epoch,
                        0,
                        Some(id.0),
                        || format!("parked behind fence @epoch {epoch}: {e}"),
                    );
                    return Ok((id, IntentDelta::default()));
                }
            }
        };
        let (id, delta) =
            self.store
                .install(id, name, Some(inv.clone()), cp, inv.packet_space.clone())?;
        let space = compile_packet_space(
            &self.net.layout,
            delta.space.as_ref().unwrap_or(&inv.packet_space),
        );
        // Build verifiers lazily for devices the slice pulls in.
        for dev in delta.changed.keys() {
            if !self.verifiers.contains_key(dev) {
                let mut v = DeviceVerifier::builder(
                    *dev,
                    self.net.layout,
                    self.net.fib(*dev).clone(),
                    &self.packet_space,
                    self.cfg.clone(),
                )
                .backend(self.backend_kind)
                .tasks(Vec::new())
                .build();
                v.init(&mut self.queue);
                self.verifiers.insert(*dev, v);
            }
        }
        self.fence_and_apply(&delta, Some(&space));
        if self.tel.journal_on() {
            let dev = delta.changed.keys().next().copied().unwrap_or(DeviceId(0));
            let name = name.to_string();
            self.tel.journal(
                JournalKind::IntentInstalled,
                dev,
                self.epoch,
                0,
                Some(id.0),
                || format!("intent {name:?} installed"),
            );
        }
        Ok((id, delta))
    }

    /// Removes a live intent: its ownership references are dropped and
    /// only nodes no surviving intent owns are uninstalled (shared
    /// tasks stay, cheaper by exactly the dedup), under the same epoch
    /// fence as [`Session::install_intent`]. Removing the base intent
    /// (id 0) is allowed once other intents exist; removing the last
    /// intent leaves an empty (trivially holding) session.
    pub fn remove_intent(&mut self, id: IntentId) -> Result<IntentDelta, PlanError> {
        // A parked or degraded intent owns no on-device state: removing
        // it drains the bookkeeping without a fence.
        let no_footprint =
            self.store.is_parked(id) || self.store.get(id).is_some_and(|i| i.is_degraded());
        let delta = self.store.remove(id)?;
        self.degraded_epochs.remove(&id.0);
        if !no_footprint {
            self.fence_and_apply(&delta, None);
        }
        self.tel.journal(
            JournalKind::IntentRemoved,
            delta
                .removed
                .keys()
                .chain(delta.changed.keys())
                .next()
                .copied()
                .unwrap_or(DeviceId(0)),
            self.epoch,
            0,
            Some(id.0),
            || format!("intent {} removed", id.0),
        );
        Ok(delta)
    }

    /// Bumps the epoch fence, applies an intent delta's removals and
    /// task changes (`space` is the base packet space for new nodes —
    /// `None` for removals, which never create nodes), re-announces
    /// durable state and re-converges.
    fn fence_and_apply(&mut self, delta: &IntentDelta, space: Option<&PortablePred>) {
        self.epoch += 1;
        let epoch = self.epoch;
        if self.tel.journal_on() {
            let first = delta
                .changed
                .keys()
                .chain(delta.removed.keys())
                .next()
                .copied()
                .unwrap_or(DeviceId(0));
            self.tel
                .journal(JournalKind::EpochFence, first, epoch, 0, None, || {
                    format!("fence to epoch {epoch} (intent churn)")
                });
        }
        for v in self.verifiers.values_mut() {
            v.set_epoch(epoch);
        }
        for (dev, gone) in &delta.removed {
            if let Some(v) = self.verifiers.get_mut(dev) {
                v.remove_nodes(gone);
            }
        }
        for (dev, tasks) in &delta.changed {
            let v = self.verifiers.get_mut(dev).expect("verifier built above");
            match space {
                Some(sp) => v.install_tasks(tasks.clone(), sp, &mut self.queue),
                None => v.set_tasks(tasks.clone(), &mut self.queue),
            }
        }
        // The fence dropped whatever was in flight; re-announcement
        // repairs it and feeds shared nodes' results to new upstream
        // edges.
        for (dev, v) in self.verifiers.iter_mut() {
            if !self.quarantined.contains(dev) {
                v.reannounce(&mut self.queue);
            }
        }
        self.run_to_quiescence();
    }

    /// Installs `inv` as a single anonymous intent.
    #[deprecated(note = "use install_intent / remove_intent")]
    pub fn set_tasks(&mut self, inv: &Invariant) -> Result<IntentId, PlanError> {
        self.install_intent("anonymous", inv).map(|(id, _)| id)
    }

    /// The invariant's packet space as a portable predicate.
    pub fn packet_space(&self) -> &PortablePred {
        &self.packet_space
    }
}

impl crate::event::Substrate for Session {
    fn apply_event(
        &mut self,
        ev: &crate::event::RuntimeEvent,
    ) -> Result<crate::event::EventOutcome, PlanError> {
        use crate::event::{EventOutcome, RuntimeEvent as E};
        match ev {
            E::Batch(updates) => Ok(EventOutcome {
                messages: self.apply_batch(updates),
                ..EventOutcome::default()
            }),
            E::Topology {
                event,
                base,
                invariant,
            } => Ok(EventOutcome {
                messages: self.apply_topology_event(event, base, invariant)?,
                ..EventOutcome::default()
            }),
            E::CrashRestart(_) => Err(PlanError::Unsupported(
                "the synchronous reference session has no crash/restart model".to_string(),
            )),
            E::SetBackend(_) => Err(PlanError::Unsupported(
                "the synchronous reference session cannot hot-swap backends; rebuild it"
                    .to_string(),
            )),
            E::InstallIntent { name, invariant } => {
                let (id, delta) = self.install_intent(name, invariant)?;
                Ok(EventOutcome {
                    messages: 0,
                    intent: Some(id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: self.store.is_parked(id),
                })
            }
            E::RemoveIntent(id) => {
                let delta = self.remove_intent(*id)?;
                Ok(EventOutcome {
                    messages: 0,
                    intent: Some(*id),
                    slice: Some((delta.total_nodes, delta.reused_nodes)),
                    parked: false,
                })
            }
        }
    }
}

/// Evaluates every live intent's formula at its own DPVNet sources,
/// given a way to read a *global* node's counting results (used by the
/// simulator and the threaded runner, which own their verifiers).
/// Violations carry the intent id and the intent-local source node id,
/// so a multi-intent report over the shared node table is byte-equal to
/// the concatenation of each intent's standalone report (with non-base
/// intents tagged).
pub fn evaluate_intents(
    store: &IntentStore,
    mut node_result: impl FnMut(DeviceId, NodeId) -> Vec<(PortablePred, Counts)>,
) -> Report {
    let mut violations = Vec::new();
    for intent in store.live() {
        if intent.is_degraded() {
            // The current topology cannot host this slice; its stale
            // results are reported via freshness, not as verdicts.
            continue;
        }
        let escape_idx = intent.plan.escape_idx();
        for (dev, local) in intent.plan.dpvnet.sources() {
            let global = intent.to_global[local.0 as usize];
            for (pred, counts) in node_result(*dev, global) {
                let bad = counts
                    .iter()
                    .any(|u| !intent.plan.formula.eval(u, escape_idx));
                if bad {
                    violations.push(Violation {
                        device: *dev,
                        node: *local,
                        pred,
                        kind: ViolationKind::Counting { counts },
                        intent: intent.id.0,
                    });
                }
            }
        }
    }
    Report {
        violations,
        messages: 0,
        ..Report::default()
    }
}

/// Evaluates an invariant's formula at the DPVNet sources given a way to
/// read each source node's counting results (used by the simulator and
/// the threaded runner, which own their verifiers).
pub fn evaluate_sources(
    plan: &CountingPlan,
    mut node_result: impl FnMut(DeviceId, NodeId) -> Vec<(PortablePred, Counts)>,
) -> Report {
    let escape_idx = plan.escape_idx();
    let mut violations = Vec::new();
    for (dev, node) in plan.dpvnet.sources() {
        for (pred, counts) in node_result(*dev, *node) {
            let bad = counts.iter().any(|u| !plan.formula.eval(u, escape_idx));
            if bad {
                violations.push(Violation {
                    device: *dev,
                    node: *node,
                    pred,
                    kind: ViolationKind::Counting { counts },
                    intent: 0,
                });
            }
        }
    }
    Report {
        violations,
        messages: 0,
        ..Report::default()
    }
}

/// Fills a churn-era report's freshness and quarantine fields: every
/// node of the *current* plan is `Fresh` unless its device appears in
/// `stale_devices` (the watchdog's stall map, device → epoch at stall),
/// and every entry of `unreachable` (old-plan nodes on quarantined
/// devices) is appended as `Unreachable`. Node ids are plan-relative, so
/// an `Unreachable` entry refers to the superseded plan's numbering;
/// both entries are kept when an id collides.
pub fn mark_freshness(
    r: &mut Report,
    plan: &CountingPlan,
    unreachable: &BTreeMap<NodeId, DeviceId>,
    quarantined: impl IntoIterator<Item = DeviceId>,
    stale_devices: &BTreeMap<DeviceId, u64>,
) {
    let mut fr: Vec<(NodeId, Freshness)> = plan
        .tasks
        .iter()
        .map(|t| match stale_devices.get(&t.dev) {
            Some(e) => (t.node, Freshness::Stale(*e)),
            None => (t.node, Freshness::Fresh),
        })
        .collect();
    fr.extend(unreachable.keys().map(|n| (*n, Freshness::Unreachable)));
    fr.sort_by_key(|(n, _)| *n);
    r.freshness = fr;
    r.quarantined = quarantined.into_iter().collect();
}

/// [`mark_freshness`] over an intent store's global node table: every
/// global node a non-degraded intent owns is `Fresh` unless its device
/// appears in `stale_devices`; `unreachable` entries (old-table nodes
/// stranded on quarantined devices) are `Unreachable`; a *degraded*
/// intent's last-good source nodes are `Stale(e)` at the epoch whose
/// fence degraded it (`degraded_epochs`), or `Unreachable` when they
/// sit on a quarantined device. Degraded entries refer to the
/// superseded table's numbering (like `unreachable`); both entries are
/// kept when an id collides.
pub fn mark_freshness_store(
    r: &mut Report,
    store: &IntentStore,
    unreachable: &BTreeMap<NodeId, DeviceId>,
    quarantined: impl IntoIterator<Item = DeviceId>,
    stale_devices: &BTreeMap<DeviceId, u64>,
    degraded_epochs: &BTreeMap<u64, u64>,
) {
    let q: Vec<DeviceId> = quarantined.into_iter().collect();
    let qset: BTreeSet<DeviceId> = q.iter().copied().collect();
    let mut fr: Vec<(NodeId, Freshness)> = Vec::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for intent in store.live().filter(|i| !i.is_degraded()) {
        for t in &intent.plan.tasks {
            let g = intent.to_global[t.node.0 as usize];
            if !seen.insert(g) {
                continue;
            }
            fr.push(match stale_devices.get(&t.dev) {
                Some(e) => (g, Freshness::Stale(*e)),
                None => (g, Freshness::Fresh),
            });
        }
    }
    fr.extend(unreachable.keys().map(|n| (*n, Freshness::Unreachable)));
    for intent in store.live().filter(|i| i.is_degraded()) {
        let e = degraded_epochs.get(&intent.id.0).copied().unwrap_or(0);
        for (dev, local) in intent.plan.dpvnet.sources() {
            let g = intent.to_global[local.0 as usize];
            let f = if qset.contains(dev) {
                Freshness::Unreachable
            } else {
                Freshness::Stale(e)
            };
            fr.push((g, f));
        }
    }
    fr.sort_by_key(|(n, _)| *n);
    r.freshness = fr;
    r.quarantined = q;
}

/// Journals the per-intent lifecycle transitions of one churn fence
/// (degrade / revive / unpark / give-up) and maintains the substrate's
/// intent → degradation-epoch record used for freshness attribution.
/// `StoreReplan::degraded` lists *every* currently-unplannable intent,
/// so only newly degraded ones (absent from `degraded_epochs`) get a
/// journal entry — a slice stays degraded silently across fences that
/// do not change its fate.
pub fn journal_replan_transitions(
    tel: &Telemetry,
    degraded_epochs: &mut BTreeMap<u64, u64>,
    replan: &StoreReplan,
    dev: DeviceId,
    epoch: u64,
    trace: u64,
    cause: &str,
) {
    for (id, reason) in &replan.degraded {
        if let std::collections::btree_map::Entry::Vacant(e) = degraded_epochs.entry(id.0) {
            e.insert(epoch);
            tel.journal(
                JournalKind::IntentDegraded,
                dev,
                epoch,
                trace,
                Some(id.0),
                || format!("degraded by {cause}: {reason}"),
            );
        }
    }
    for id in &replan.revived {
        degraded_epochs.remove(&id.0);
        tel.journal(
            JournalKind::IntentReplanned,
            dev,
            epoch,
            trace,
            Some(id.0),
            || format!("revived by {cause} at epoch {epoch}"),
        );
    }
    for id in &replan.unparked {
        tel.journal(
            JournalKind::IntentReplanned,
            dev,
            epoch,
            trace,
            Some(id.0),
            || format!("unparked: re-planned against epoch {epoch}"),
        );
    }
    for (id, reason) in &replan.rejected {
        tel.journal(
            JournalKind::IntentRejected,
            dev,
            epoch,
            trace,
            Some(id.0),
            || format!("parked install gave up after {MAX_INTENT_RETRIES} fences: {reason}"),
        );
    }
}

/// Verifies a network snapshot against a plan (counting or local) and
/// reports the verdict.
pub fn verify_snapshot(net: &Network, plan: &Plan) -> Report {
    match &plan.kind {
        PlanKind::Counting(_) => {
            let mut s = Session::new(net, plan);
            let n = s.run_to_quiescence();
            let mut r = s.report();
            r.messages = n;
            r
        }
        PlanKind::Local(lp) => {
            let packet_space = compile_packet_space(&net.layout, &plan.invariant.packet_space);
            let mut violations = Vec::new();
            let mut by_dev: BTreeMap<DeviceId, Vec<crate::planner::LocalContract>> =
                BTreeMap::new();
            for c in &lp.contracts {
                by_dev.entry(c.dev).or_default().push(c.clone());
            }
            for (dev, contracts) in by_dev {
                let mut checker = LocalChecker::new(
                    dev,
                    net.layout,
                    net.fib(dev).clone(),
                    contracts,
                    &packet_space,
                );
                for cv in checker.check() {
                    violations.push(contract_violation(cv));
                }
            }
            Report {
                violations,
                messages: 0,
                ..Report::default()
            }
        }
    }
}

fn contract_violation(cv: ContractViolation) -> Violation {
    Violation {
        device: cv.device,
        node: cv.node,
        pred: cv.pred,
        kind: ViolationKind::Contract {
            expected: cv.expected,
            found: cv.found,
            reason: cv.reason,
        },
        intent: 0,
    }
}
