//! The unified runtime-event API every execution substrate consumes.
//!
//! Before this module, each substrate (the synchronous [`Session`],
//! the discrete-event engine, the threaded runner and their sim /
//! distributed wrappers) grew one mutation method per feature —
//! `apply_batch`, `apply_topology_event`, `crash_restart`,
//! `set_backend`, and now the intent ops — five parallel method
//! quintuples that had to be extended in lockstep. [`RuntimeEvent`]
//! collapses them into one enum consumed by a single
//! [`Substrate::apply_event`] entry point; the old names survive as
//! thin delegating wrappers on each substrate.
//!
//! [`Session`]: crate::verify::Session

use crate::churn::TopologyEvent;
use crate::intent::IntentId;
use crate::planner::PlanError;
use crate::spec::Invariant;
use tulkun_netmodel::network::RuleUpdate;
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::DeviceId;
use tulkun_predicate::BackendKind;

/// One runtime mutation, uniform across substrates.
#[derive(Debug, Clone)]
pub enum RuntimeEvent {
    /// A burst of FIB rule updates, coalesced per device.
    Batch(Vec<RuleUpdate>),
    /// A live topology churn event. Carries the *base* (pre-churn)
    /// topology and the invariant the running base plan was compiled
    /// from — exactly the extra arguments every substrate's
    /// `apply_topology_event` took.
    Topology {
        /// The link/device up/down event.
        event: TopologyEvent,
        /// The original topology the cumulative churn applies to.
        base: Topology,
        /// The base invariant to re-plan.
        invariant: Invariant,
    },
    /// Crash one device's verification agent and restart it from its
    /// neighbors' durable state.
    CrashRestart(DeviceId),
    /// Hot-swap the predicate backend.
    SetBackend(BackendKind),
    /// Compile an invariant and install it as a new runtime intent
    /// (its DPVNet slice is deduplicated against live intents).
    InstallIntent {
        /// Human-readable intent name.
        name: String,
        /// The invariant to install.
        invariant: Invariant,
    },
    /// Remove a live intent; only nodes no surviving intent owns are
    /// uninstalled.
    RemoveIntent(IntentId),
}

/// What applying a [`RuntimeEvent`] produced, uniform across
/// substrates (each keeps richer per-substrate results on its native
/// methods).
#[derive(Debug, Clone, Copy, Default)]
pub struct EventOutcome {
    /// Messages the event caused, when the substrate counts them
    /// synchronously (0 for fire-and-forget substrates).
    pub messages: usize,
    /// The new intent's id, for [`RuntimeEvent::InstallIntent`].
    pub intent: Option<IntentId>,
    /// `(total_nodes, reused_nodes)` slice accounting for intent
    /// events — the dedup/locality evidence.
    pub slice: Option<(usize, usize)>,
    /// For [`RuntimeEvent::InstallIntent`]: the install raced a
    /// topology fence and was parked for re-planning against the next
    /// epoch instead of landing now (`intent` still carries its id).
    pub parked: bool,
}

/// The shared substrate trait: every execution substrate applies the
/// same events. Substrates reject events outside their model (e.g. the
/// synchronous reference session has no crash/restart) with
/// [`PlanError::Unsupported`] instead of silently ignoring them.
pub trait Substrate {
    /// Applies one runtime event and (for synchronous substrates) runs
    /// re-convergence.
    fn apply_event(&mut self, ev: &RuntimeEvent) -> Result<EventOutcome, PlanError>;
}
