#![warn(missing_docs)]
//! Tulkun core: the paper's contribution.
//!
//! * [`spec`] — the declarative invariant specification language (§3):
//!   `(packet_space, ingress_set, behavior, [fault_scenes])` tuples with
//!   behaviors built from `(match_op, path_exp)` pairs, plus builders for
//!   every invariant family of Table 1 and a textual parser.
//! * [`count`] — per-universe count sets with the cross-product-sum (⊗)
//!   and union (⊕) operators of §4.2 and the minimal-counting-information
//!   reductions of Proposition 1.
//! * [`dpvnet`] — DPVNet: the DAG of all valid paths (§4.1), built by
//!   multiplying path-expression DFAs with the topology, with suffix
//!   merging (state minimization), virtual sources/destinations (§4.3)
//!   and fast paths for shortest-path DAGs.
//! * [`planner`] — decomposes an invariant into per-device counting tasks
//!   or local contracts (§4.2–4.3), choosing the minimal counting
//!   information each node propagates.
//! * [`dvm`] — the distributed verification messaging protocol (§5):
//!   LEC tables, `CIBIn`/`LocCIB`/`CIBOut`, `UPDATE`/`SUBSCRIBE` messages,
//!   and the event-driven on-device verifier.
//! * [`localcheck`] — communication-free local contracts for `equal`
//!   behaviors (§4.2), generalizing Azure RCDC.
//! * [`fault`] — fault-tolerant DPVNet precomputation and online
//!   recounting (§6).
//! * [`churn`] — live topology churn: epoch-fenced incremental
//!   re-planning around link/device up/down events at runtime.
//! * [`intent`] — the runtime intent store: invariant add/remove as
//!   first-class events, per-intent DPVNet slices, counting tasks
//!   deduplicated (refcounted) across overlapping intents.
//! * [`event`] — the unified [`event::RuntimeEvent`] /
//!   [`event::Substrate`] API every execution substrate consumes.
//! * [`explain`] — the explain engine: ranked causal chains for
//!   degraded verdicts, walked out of the telemetry flight recorder.
//! * [`verify`] — an in-process driver that runs all on-device verifiers
//!   to quiescence over a network snapshot (the simulator and the threaded
//!   runner drive the same verifiers asynchronously).

pub mod churn;
pub mod count;
pub mod dpvnet;
pub mod dvm;
pub mod event;
pub mod explain;
pub mod fault;
pub mod intent;
pub mod localcheck;
pub mod multipath;
pub mod partition;
pub mod planner;
pub mod spec;
pub mod verify;
