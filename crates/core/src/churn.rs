//! Runtime topology churn: epoch-fenced incremental re-planning.
//!
//! §3's `fault_scenes` cover *statically declared* failures; this module
//! makes live topology change a first-class event. A churn event
//! ([`TopologyEvent`]) folds into a cumulative [`ChurnState`], the
//! incremental re-planner ([`replan_for_churn`]) compiles the invariant
//! against the post-churn topology and diffs the resulting per-device
//! task lists against the running plan, and the runtime applies only the
//! diff: devices with changed tasks swap them in, everything else merely
//! re-announces its durable state under the new epoch
//! ([`crate::dvm::DeviceVerifier::reannounce`]). LEC tables, BDD
//! managers and FIB state are untouched — re-planning is cheap exactly
//! because the expensive per-device state survives.
//!
//! The **epoch fence** makes this safe while messages are in flight:
//! every bump of the generation number invalidates envelopes stamped
//! with the old epoch (see [`crate::dvm::message::Envelope::epoch`]), so
//! results computed against the superseded DPVNet cannot corrupt the new
//! round; re-announcement repairs exactly the state those dropped
//! messages carried.

use crate::dpvnet::NodeId;
use crate::fault::{link_pair, subtopology, FaultScene, LinkPair};
use crate::planner::{CountingPlan, NodeTask, PlanError, Planner};
use crate::spec::Invariant;
use std::collections::{BTreeMap, BTreeSet};
use tulkun_netmodel::topology::{DeviceId, Topology};

/// One live topology change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyEvent {
    /// The link between two devices failed.
    LinkDown(DeviceId, DeviceId),
    /// A previously failed link recovered.
    LinkUp(DeviceId, DeviceId),
    /// A device died: all its links fail and it is quarantined (the
    /// runtime stops delivering to it and marks its results
    /// unreachable).
    DeviceDown(DeviceId),
    /// A quarantined device came back (the runtime reboots its verifier
    /// and replays neighbor state, as after a crash).
    DeviceUp(DeviceId),
}

impl TopologyEvent {
    /// A stable human/journal description, e.g. `"link-down d2-d3"`.
    pub fn describe(&self) -> String {
        match self {
            TopologyEvent::LinkDown(a, b) => format!("link-down d{}-d{}", a.0, b.0),
            TopologyEvent::LinkUp(a, b) => format!("link-up d{}-d{}", a.0, b.0),
            TopologyEvent::DeviceDown(d) => format!("device-down d{}", d.0),
            TopologyEvent::DeviceUp(d) => format!("device-up d{}", d.0),
        }
    }

    /// The device the event is primarily about (the first endpoint for
    /// link events) — the journal's attribution device.
    pub fn primary_device(&self) -> DeviceId {
        match self {
            TopologyEvent::LinkDown(a, _) | TopologyEvent::LinkUp(a, _) => *a,
            TopologyEvent::DeviceDown(d) | TopologyEvent::DeviceUp(d) => *d,
        }
    }
}

/// Cumulative churn: which links and devices are currently down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnState {
    down_links: BTreeSet<LinkPair>,
    down_devices: BTreeSet<DeviceId>,
}

impl ChurnState {
    /// The no-churn state.
    pub fn new() -> ChurnState {
        ChurnState::default()
    }

    /// Folds one event in; returns whether the state actually changed
    /// (a `LinkDown` of an already-down link does not).
    pub fn apply(&mut self, ev: &TopologyEvent) -> bool {
        match ev {
            TopologyEvent::LinkDown(a, b) => self.down_links.insert(link_pair(*a, *b)),
            TopologyEvent::LinkUp(a, b) => self.down_links.remove(&link_pair(*a, *b)),
            TopologyEvent::DeviceDown(d) => self.down_devices.insert(*d),
            TopologyEvent::DeviceUp(d) => self.down_devices.remove(d),
        }
    }

    /// Devices currently down (quarantined).
    pub fn down_devices(&self) -> &BTreeSet<DeviceId> {
        &self.down_devices
    }

    /// Links currently down by explicit link events (device-down links
    /// are implied, not listed here).
    pub fn down_links(&self) -> &BTreeSet<LinkPair> {
        &self.down_links
    }

    /// Is this device quarantined?
    pub fn is_down(&self, dev: DeviceId) -> bool {
        self.down_devices.contains(&dev)
    }

    /// Is any churn in effect?
    pub fn is_quiet(&self) -> bool {
        self.down_links.is_empty() && self.down_devices.is_empty()
    }

    /// The scene of failed links this state implies on `base`: explicit
    /// link failures plus every link incident to a down device.
    pub fn scene(&self, base: &Topology) -> FaultScene {
        let mut pairs: Vec<LinkPair> = self.down_links.iter().copied().collect();
        for l in base.links() {
            if self.down_devices.contains(&l.a) || self.down_devices.contains(&l.b) {
                pairs.push(link_pair(l.a, l.b));
            }
        }
        FaultScene::new(pairs)
    }

    /// The post-churn topology (device ids preserved; down devices stay
    /// present but isolated).
    pub fn apply_to(&self, base: &Topology) -> Topology {
        subtopology(base, &self.scene(base))
    }
}

/// What an incremental re-plan asks the runtime to do.
#[derive(Debug, Clone)]
pub struct ReplanDelta {
    /// The full post-churn counting plan (becomes the runtime's plan).
    pub plan: CountingPlan,
    /// The post-churn topology the plan was compiled against.
    pub topology: Topology,
    /// Per device: the new task list, present only where it differs
    /// from the old plan. These devices swap tasks and recount.
    pub changed: BTreeMap<DeviceId, Vec<NodeTask>>,
    /// Per device: nodes of the old plan no longer assigned to it.
    pub removed: BTreeMap<DeviceId, Vec<NodeId>>,
    /// Nodes of the *old* plan hosted on now-quarantined devices; their
    /// last results are reported `Unreachable`, not recomputed.
    pub unreachable: Vec<(NodeId, DeviceId)>,
    /// Nodes in the new plan.
    pub total_nodes: usize,
    /// Nodes whose task survived the re-plan verbatim (no recount).
    pub reused_nodes: usize,
}

impl ReplanDelta {
    /// Devices whose task list changed (must recount).
    pub fn changed_devices(&self) -> usize {
        self.changed.len()
    }
}

fn tasks_by_device(tasks: &[NodeTask]) -> BTreeMap<DeviceId, Vec<NodeTask>> {
    let mut by_dev: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
    for t in tasks {
        by_dev.entry(t.dev).or_default().push(t.clone());
    }
    for list in by_dev.values_mut() {
        list.sort_by_key(|t| t.node);
    }
    by_dev
}

/// Re-plans the invariant against the post-churn topology and diffs the
/// result against the running plan.
///
/// The diff is per device: a device appears in `changed` iff its sorted
/// task list differs from the old plan's (new nodes, dropped nodes, or
/// re-wired neighbor lists all count), and in `removed` with the node
/// ids it must forget. Everything else keeps its counting state and only
/// re-announces under the new epoch.
///
/// Fails with the planner's error when the post-churn topology no longer
/// supports the invariant at all (e.g. the destination is unreachable
/// from every ingress); the caller decides whether to keep verifying the
/// old epoch or surface the error.
pub fn replan_for_churn(
    base: &Topology,
    inv: &Invariant,
    old: &CountingPlan,
    churn: &ChurnState,
) -> Result<ReplanDelta, PlanError> {
    let topology = churn.apply_to(base);
    let plan = Planner::new(&topology).plan(inv)?;
    let new = plan
        .counting()
        .ok_or_else(|| PlanError::Unsupported("churn re-planning needs a counting plan".into()))?
        .clone();

    let old_by_dev = tasks_by_device(&old.tasks);
    let new_by_dev = tasks_by_device(&new.tasks);
    let mut changed = BTreeMap::new();
    let mut removed = BTreeMap::new();
    let mut unreachable = Vec::new();
    let mut reused_nodes = 0;
    let devices: BTreeSet<DeviceId> = old_by_dev
        .keys()
        .chain(new_by_dev.keys())
        .copied()
        .collect();
    for dev in devices {
        let old_tasks = old_by_dev.get(&dev);
        let new_tasks = new_by_dev.get(&dev);
        if churn.is_down(dev) {
            // Quarantined: its old nodes become unreachable; it is not
            // asked to recount (the planner assigns it nothing anyway —
            // no path crosses an isolated device).
            if let Some(old_tasks) = old_tasks {
                unreachable.extend(old_tasks.iter().map(|t| (t.node, dev)));
            }
            continue;
        }
        match (old_tasks, new_tasks) {
            (Some(o), Some(n)) if o == n => {
                reused_nodes += n.len();
            }
            (o, n) => {
                if let Some(n) = n {
                    changed.insert(dev, n.clone());
                }
                let kept: BTreeSet<NodeId> = n
                    .map(|n| n.iter().map(|t| t.node).collect())
                    .unwrap_or_default();
                let gone: Vec<NodeId> = o
                    .map(|o| {
                        o.iter()
                            .map(|t| t.node)
                            .filter(|id| !kept.contains(id))
                            .collect()
                    })
                    .unwrap_or_default();
                if !gone.is_empty() {
                    removed.insert(dev, gone);
                }
            }
        }
    }
    Ok(ReplanDelta {
        total_nodes: new.tasks.len(),
        plan: new,
        topology,
        changed,
        removed,
        unreachable,
        reused_nodes,
    })
}

/// A deterministic sequence of churn events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule(pub Vec<TopologyEvent>);

impl ChurnSchedule {
    /// Generates `len` seeded link-churn events (downs and recoveries)
    /// that always leave the invariant plannable: each candidate event
    /// is admitted only if re-planning the resulting cumulative state
    /// succeeds. Deterministic per `(seed, len)`; composes with the
    /// equally seeded message-fault profiles for chaos testing.
    pub fn seeded(base: &Topology, inv: &Invariant, seed: u64, len: usize) -> ChurnSchedule {
        // xorshift, as in `sample_scenes` — reproducible without a rand
        // dependency in core.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let all_links: Vec<LinkPair> = base.links().iter().map(|l| link_pair(l.a, l.b)).collect();
        let mut churn = ChurnState::new();
        let old = match Planner::new(base)
            .plan(inv)
            .ok()
            .and_then(|p| p.counting().cloned())
        {
            Some(cp) => cp,
            None => return ChurnSchedule(Vec::new()),
        };
        let mut events = Vec::new();
        'outer: while events.len() < len {
            // Candidates: recover any down link, or fail any up link.
            let mut cands: Vec<TopologyEvent> = churn
                .down_links()
                .iter()
                .map(|(a, b)| TopologyEvent::LinkUp(*a, *b))
                .collect();
            cands.extend(
                all_links
                    .iter()
                    .filter(|p| !churn.down_links().contains(*p))
                    .map(|(a, b)| TopologyEvent::LinkDown(*a, *b)),
            );
            // Random order; first plannable candidate wins.
            for _ in 0..cands.len() {
                let i = (next() as usize) % cands.len();
                let ev = cands.swap_remove(i);
                let mut trial = churn.clone();
                trial.apply(&ev);
                if replan_for_churn(base, inv, &old, &trial).is_ok() {
                    churn = trial;
                    events.push(ev);
                    continue 'outer;
                }
                if cands.is_empty() {
                    break;
                }
            }
            break;
        }
        ChurnSchedule(events)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{table1, PacketSpace};

    fn fig2a_topo() -> Topology {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t.add_external_prefix(d, "10.0.0.0/23".parse().unwrap());
        t
    }

    fn waypoint() -> Invariant {
        table1::waypoint(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "W", "D").unwrap()
    }

    fn base_plan(topo: &Topology, inv: &Invariant) -> CountingPlan {
        Planner::new(topo)
            .plan(inv)
            .unwrap()
            .counting()
            .unwrap()
            .clone()
    }

    #[test]
    fn no_churn_diffs_to_nothing() {
        let topo = fig2a_topo();
        let inv = waypoint();
        let old = base_plan(&topo, &inv);
        let delta = replan_for_churn(&topo, &inv, &old, &ChurnState::new()).unwrap();
        assert!(delta.changed.is_empty(), "identical plan must diff empty");
        assert!(delta.removed.is_empty());
        assert!(delta.unreachable.is_empty());
        assert_eq!(delta.reused_nodes, delta.total_nodes);
    }

    #[test]
    fn link_down_then_up_round_trips() {
        let topo = fig2a_topo();
        let inv = waypoint();
        let old = base_plan(&topo, &inv);
        let a = topo.expect_device("A");
        let b = topo.expect_device("B");
        let mut churn = ChurnState::new();
        assert!(churn.apply(&TopologyEvent::LinkDown(a, b)));
        assert!(!churn.apply(&TopologyEvent::LinkDown(b, a)), "idempotent");
        let down = replan_for_churn(&topo, &inv, &old, &churn).unwrap();
        assert!(
            !down.changed.is_empty(),
            "losing a link on valid paths must change some tasks"
        );
        assert_eq!(down.topology.num_links(), topo.num_links() - 1);
        assert!(churn.apply(&TopologyEvent::LinkUp(a, b)));
        assert!(churn.is_quiet());
        let up = replan_for_churn(&topo, &inv, &old, &churn).unwrap();
        assert!(up.changed.is_empty(), "recovery restores the exact plan");
        assert_eq!(up.reused_nodes, old.tasks.len());
    }

    #[test]
    fn device_down_isolates_and_quarantines() {
        let topo = fig2a_topo();
        let inv = waypoint();
        let old = base_plan(&topo, &inv);
        let b = topo.expect_device("B");
        let mut churn = ChurnState::new();
        churn.apply(&TopologyEvent::DeviceDown(b));
        assert!(churn.is_down(b));
        let delta = replan_for_churn(&topo, &inv, &old, &churn).unwrap();
        // B had nodes in the old plan (paths S-A-B-W-D etc. cross it).
        assert!(
            delta.unreachable.iter().any(|(_, d)| *d == b),
            "quarantined device's old nodes must be reported unreachable"
        );
        assert!(
            !delta.changed.contains_key(&b),
            "a quarantined device is never asked to recount"
        );
        assert!(delta.plan.tasks.iter().all(|t| t.dev != b));
        // All B links are gone from the post-churn topology.
        for l in delta.topology.links() {
            assert!(l.a != b && l.b != b);
        }
    }

    #[test]
    fn delta_reconstructs_the_fresh_plan() {
        // Applying (changed ∪ kept-old − removed) per device must equal
        // the fresh plan's task map exactly.
        let topo = fig2a_topo();
        let inv = waypoint();
        let old = base_plan(&topo, &inv);
        let a = topo.expect_device("A");
        let w = topo.expect_device("W");
        let mut churn = ChurnState::new();
        churn.apply(&TopologyEvent::LinkDown(a, w));
        let delta = replan_for_churn(&topo, &inv, &old, &churn).unwrap();
        let mut rebuilt = tasks_by_device(&old.tasks);
        for (dev, gone) in &delta.removed {
            if let Some(list) = rebuilt.get_mut(dev) {
                list.retain(|t| !gone.contains(&t.node));
            }
        }
        for (dev, tasks) in &delta.changed {
            rebuilt.insert(*dev, tasks.clone());
        }
        rebuilt.retain(|_, v| !v.is_empty());
        assert_eq!(rebuilt, tasks_by_device(&delta.plan.tasks));
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_plannable() {
        let topo = fig2a_topo();
        let inv = waypoint();
        let s1 = ChurnSchedule::seeded(&topo, &inv, 7, 6);
        let s2 = ChurnSchedule::seeded(&topo, &inv, 7, 6);
        assert_eq!(s1, s2, "same seed, same schedule");
        assert_eq!(s1.len(), 6);
        let s3 = ChurnSchedule::seeded(&topo, &inv, 23, 6);
        assert_ne!(s1, s3, "different seeds should diverge on fig2a");
        // Every prefix of the schedule leaves the invariant plannable.
        let old = base_plan(&topo, &inv);
        let mut churn = ChurnState::new();
        for ev in &s1.0 {
            churn.apply(ev);
            replan_for_churn(&topo, &inv, &old, &churn).unwrap();
        }
    }
}
