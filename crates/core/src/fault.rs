//! Fault-tolerant verification (§6): precomputed fault-tolerant DPVNets
//! and online recounting with minimal planner involvement.
//!
//! The planner expands an invariant's `fault_scenes` into concrete
//! scenes, computes the union of valid paths over all scenes (iterating
//! scenes in ascending failure count and reusing path sets when
//! Proposition 2 applies), and labels every DPVNet edge and acceptance
//! flag with the scenes it is valid in. When a scene happens, verifiers
//! switch to the corresponding task view and recount — the planner is
//! contacted only for unspecified scenes.
//!
//! Besides *data-plane* faults (failed links), this module also models
//! *management-plane* faults: [`FaultProfile`] describes a lossy
//! best-effort channel between verifiers (drop, duplicate, reorder,
//! delay) plus the retransmission parameters the DVM reliability layer
//! ([`crate::dvm::reliable`]) uses to mask it, and [`FaultStats`]
//! carries the injection/recovery counters every runtime substrate
//! surfaces.

use crate::dpvnet::{self, DpvNet, DpvNetError, NodeId, ValidPath};
use crate::planner::{CountingPlan, NodeTask, PlanError};
use crate::spec::{FaultSpec, Invariant, PathExpr};
use std::collections::{BTreeMap, HashMap, HashSet};
use tulkun_netmodel::topology::{DeviceId, Topology};

/// Describes the behaviour of a lossy management network between
/// device verifiers, plus the retransmission policy that masks it.
///
/// All randomness is drawn from one seeded stream, so a profile plus a
/// seed fully determines a run: the CI fault matrix exercises fixed
/// `(seed, drop_rate)` grids and asserts byte-identical [`Report`]s.
///
/// [`Report`]: crate::verify::Report
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed of the ChaCha stream all fault decisions are drawn from.
    pub seed: u64,
    /// Probability that a freshly sent data envelope is dropped.
    pub drop_rate: f64,
    /// Probability that a data envelope is delivered twice.
    pub dup_rate: f64,
    /// Probability that a data envelope is held back and released only
    /// after a later send (an explicit order inversion).
    pub reorder_rate: f64,
    /// Probability that a data envelope is delayed by up to
    /// [`FaultProfile::max_delay_ns`] extra nanoseconds.
    pub delay_rate: f64,
    /// Upper bound of the injected extra delay.
    pub max_delay_ns: u64,
    /// Initial retransmission timeout of the at-least-once layer.
    pub rto_ns: u64,
    /// Cap on the exponential-backoff exponent (timeout never exceeds
    /// `rto_ns << max_backoff_exp`).
    pub max_backoff_exp: u32,
    /// After this many retransmissions of one envelope, further copies
    /// bypass the fault injector — the channel is lossy but *fair*, so
    /// persistent retransmission eventually succeeds; this bounds the
    /// simulated run deterministically.
    pub force_after_attempts: u32,
}

impl FaultProfile {
    /// A fault-free profile (the reliability layer still runs: every
    /// envelope is sequenced and acked, nothing is ever lost).
    pub fn none(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ns: 0,
            rto_ns: 1_000_000,
            max_backoff_exp: 8,
            force_after_attempts: 16,
        }
    }

    /// Pure message loss at the given rate (applies to data and acks).
    pub fn loss(seed: u64, rate: f64) -> FaultProfile {
        FaultProfile {
            drop_rate: rate,
            ..FaultProfile::none(seed)
        }
    }

    /// Everything at once: loss, duplication, reordering and delay —
    /// the adversarial profile of the CI fault matrix.
    pub fn chaos(seed: u64) -> FaultProfile {
        FaultProfile {
            drop_rate: 0.05,
            dup_rate: 0.05,
            reorder_rate: 0.10,
            delay_rate: 0.10,
            max_delay_ns: 50_000,
            ..FaultProfile::none(seed)
        }
    }

    /// Does this profile inject no faults at all?
    pub fn is_quiet(&self) -> bool {
        self.drop_rate <= 0.0
            && self.dup_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.delay_rate <= 0.0
    }
}

/// Injection and recovery counters of one faulty channel, surfaced
/// through the runtime layer's `RuntimeStats` so the overhead harnesses
/// can report the cost of verification under loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data envelopes dropped by the injector.
    pub drops: u64,
    /// Acks dropped by the injector.
    pub ack_drops: u64,
    /// Duplicate data copies injected.
    pub dups: u64,
    /// Envelopes held back to invert delivery order.
    pub reorders: u64,
    /// Envelopes given extra delay.
    pub delays: u64,
    /// Retransmissions performed by the at-least-once layer.
    pub retransmits: u64,
    /// Bytes spent on retransmissions.
    pub retransmit_bytes: u64,
    /// Retransmissions forced past the injector after the attempt cap.
    pub forced: u64,
    /// Envelopes discarded by receiver-side duplicate suppression.
    pub dup_suppressed: u64,
    /// Acks delivered to the sender window.
    pub acks: u64,
    /// Bytes spent on acks.
    pub ack_bytes: u64,
    /// Sends parked (window at cap) plus arrivals refused (reorder
    /// buffer at cap) by the bounded reliability layer's backpressure.
    pub backpressure: u64,
}

/// A failed link named by its (canonically ordered) endpoint devices —
/// stable across subtopologies, unlike `LinkId`.
pub type LinkPair = (DeviceId, DeviceId);

/// Canonicalizes a device pair.
pub fn link_pair(a: DeviceId, b: DeviceId) -> LinkPair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One fault scene: a sorted set of failed links.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultScene(pub Vec<LinkPair>);

impl FaultScene {
    /// The no-failure scene.
    pub fn none() -> FaultScene {
        FaultScene(Vec::new())
    }

    /// Builds a scene, canonicalizing and sorting the pairs.
    pub fn new(pairs: impl IntoIterator<Item = LinkPair>) -> FaultScene {
        let mut v: Vec<LinkPair> = pairs.into_iter().map(|(a, b)| link_pair(a, b)).collect();
        v.sort();
        v.dedup();
        FaultScene(v)
    }

    /// Number of failed links.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the no-failure scene?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Is `other` a subset of this scene?
    pub fn contains_scene(&self, other: &FaultScene) -> bool {
        other.0.iter().all(|p| self.0.contains(p))
    }
}

/// Expands a [`FaultSpec`] into concrete scenes. Scene 0 is always the
/// no-failure scene. `AnyK` enumerates all combinations; an error is
/// returned if that exceeds `cap` (sample with [`sample_scenes`]
/// instead).
pub fn expand_fault_spec(
    topo: &Topology,
    spec: &FaultSpec,
    cap: usize,
) -> Result<Vec<FaultScene>, PlanError> {
    let mut scenes = vec![FaultScene::none()];
    match spec {
        FaultSpec::None => {}
        FaultSpec::Scenes(list) => {
            for scene in list {
                let mut pairs = Vec::new();
                for (a, b) in scene {
                    let a = topo
                        .device(a)
                        .ok_or_else(|| PlanError::UnknownDevice(a.clone()))?;
                    let b = topo
                        .device(b)
                        .ok_or_else(|| PlanError::UnknownDevice(b.clone()))?;
                    pairs.push(link_pair(a, b));
                }
                scenes.push(FaultScene::new(pairs));
            }
        }
        FaultSpec::AnyK(k) => {
            let mut links: Vec<LinkPair> =
                topo.links().iter().map(|l| link_pair(l.a, l.b)).collect();
            links.sort();
            links.dedup();
            let mut current: Vec<FaultScene> = vec![FaultScene::none()];
            for _ in 0..*k {
                let mut next = Vec::new();
                for scene in &current {
                    let start = scene
                        .0
                        .last()
                        .map(|last| links.iter().position(|l| l > last).unwrap_or(links.len()))
                        .unwrap_or(0);
                    for &l in &links[start..] {
                        let mut pairs = scene.0.clone();
                        pairs.push(l);
                        next.push(FaultScene(pairs));
                    }
                }
                scenes.extend(next.iter().cloned());
                current = next;
                if scenes.len() > cap {
                    return Err(PlanError::Unsupported(format!(
                        "fault spec expands to more than {cap} scenes; sample instead"
                    )));
                }
            }
        }
    }
    scenes.sort_by_key(|s| (s.len(), s.0.clone()));
    scenes.dedup();
    Ok(scenes)
}

/// Samples `n` random scenes with 1..=k failed links (plus the
/// no-failure scene), weighted toward fewer failures like real WAN
/// failure statistics.
pub fn sample_scenes(topo: &Topology, k: u32, n: usize, seed: u64) -> Vec<FaultScene> {
    // Simple xorshift for reproducibility without a rand dependency here.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let links: Vec<LinkPair> = topo.links().iter().map(|l| link_pair(l.a, l.b)).collect();
    let mut scenes = vec![FaultScene::none()];
    let mut seen: HashSet<FaultScene> = HashSet::new();
    while scenes.len() < n + 1 && seen.len() < n * 4 {
        // Sizes 1..=k weighted 1/size (single failures dominate).
        let mut size = 1u32;
        let r = next() % 100;
        if k >= 2 && r >= 60 {
            size = 2;
        }
        if k >= 3 && r >= 85 {
            size = 3;
        }
        let mut pairs = Vec::new();
        for _ in 0..size {
            pairs.push(links[(next() as usize) % links.len()]);
        }
        let scene = FaultScene::new(pairs);
        if scene.is_empty() || !seen.insert(scene.clone()) {
            continue;
        }
        // Keep the network connected so reachability stays meaningful.
        let down: Vec<_> = scene
            .0
            .iter()
            .filter_map(|(a, b)| topo.link_between(*a, *b))
            .collect();
        if !topo.connected_without(&down) {
            continue;
        }
        scenes.push(scene);
    }
    scenes
}

/// A copy of the topology with the given links removed (device ids are
/// preserved).
pub fn subtopology(topo: &Topology, down: &FaultScene) -> Topology {
    let mut t = Topology::new();
    for d in topo.devices() {
        t.add_device(topo.name(d));
    }
    for l in topo.links() {
        if down.0.contains(&link_pair(l.a, l.b)) {
            continue;
        }
        t.add_link(l.a, l.b, l.latency_ns);
    }
    for (d, p) in topo.external_map() {
        t.add_external_prefix(d, p);
    }
    t
}

/// A bitmask over scene indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SceneMask(Vec<u64>);

impl SceneMask {
    /// All-zero mask for `n` scenes.
    pub fn empty(n: usize) -> SceneMask {
        SceneMask(vec![0; n.div_ceil(64)])
    }

    /// Sets scene `i`.
    pub fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Is scene `i` set?
    pub fn get(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }

    /// Union in place.
    pub fn or_assign(&mut self, other: &SceneMask) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// The fault-tolerant DPVNet: the union DAG plus per-scene validity.
#[derive(Debug, Clone)]
pub struct FtDpvNet {
    /// Union DAG (accept flags = valid in *some* scene).
    pub dpvnet: DpvNet,
    /// The pre-specified scenes (index 0 = no failure).
    pub scenes: Vec<FaultScene>,
    /// Scenes in which each edge lies on a valid path.
    pub edge_scenes: HashMap<(NodeId, NodeId), SceneMask>,
    /// Per node, per expression: scenes in which a valid path ends here.
    pub accept_scenes: Vec<Vec<SceneMask>>,
    /// Scene indices with no valid path at all (recorded as intolerable;
    /// the paper reports these to the operator).
    pub intolerable: Vec<usize>,
    /// How many scenes were recomputed from scratch vs reused via
    /// Proposition 2.
    pub reused_scenes: usize,
}

impl FtDpvNet {
    /// Finds the scene matching a set of failed links. `None` means the
    /// scene was not pre-specified (report to the planner).
    pub fn scene_index(&self, failed: &FaultScene) -> Option<usize> {
        self.scenes.iter().position(|s| s == failed)
    }

    /// The task view for one scene: per node, only the edges and
    /// acceptance flags valid in that scene.
    pub fn scene_tasks(&self, scene: usize) -> Vec<NodeTask> {
        self.dpvnet
            .iter()
            .map(|(id, n)| {
                let downstream: Vec<(NodeId, DeviceId)> = n
                    .out
                    .iter()
                    .filter(|&&o| self.edge_scenes[&(id, o)].get(scene))
                    .map(|&o| (o, self.dpvnet.node(o).dev))
                    .collect();
                let upstream: Vec<(NodeId, DeviceId)> = n
                    .inn
                    .iter()
                    .filter(|&&i| self.edge_scenes[&(i, id)].get(scene))
                    .map(|&i| (i, self.dpvnet.node(i).dev))
                    .collect();
                let accept: Vec<bool> = self.accept_scenes[id.idx()]
                    .iter()
                    .map(|m| m.get(scene))
                    .collect();
                NodeTask {
                    node: id,
                    dev: n.dev,
                    downstream,
                    upstream,
                    accept,
                }
            })
            .collect()
    }
}

/// Builds the fault-tolerant DPVNet for an invariant's path expressions
/// over the given scenes (§6's iterative computation).
pub fn build_ft_dpvnet(
    topo: &Topology,
    ingress: &[DeviceId],
    exprs: &[PathExpr],
    scenes: &[FaultScene],
    path_cap: usize,
) -> Result<FtDpvNet, DpvNetError> {
    assert!(
        !scenes.is_empty() && scenes[0].is_empty(),
        "scene 0 must be the base"
    );
    let symbolic = exprs.iter().any(PathExpr::has_symbolic_filter);

    // Base path set and the topology edges it uses.
    let base_paths = dpvnet::enumerate_valid_paths(topo, ingress, exprs, path_cap)?;
    let mut used: HashSet<LinkPair> = HashSet::new();
    for p in &base_paths {
        for w in p.devices.windows(2) {
            used.insert(link_pair(w[0], w[1]));
        }
    }
    // Endpoints whose shortest distances the symbolic filters depend on.
    let endpoints: Vec<(DeviceId, DeviceId)> = {
        let mut v: Vec<(DeviceId, DeviceId)> = base_paths
            .iter()
            .filter_map(|p| Some((*p.devices.first()?, *p.devices.last()?)))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let base_dist: BTreeMap<DeviceId, Vec<u32>> = ingress
        .iter()
        .map(|&s| (s, topo.bfs_hops(s, &[])))
        .collect();

    // Per-scene path sets (Proposition 2: reuse when nothing relevant
    // changed).
    let mut per_scene: Vec<Vec<ValidPath>> = Vec::with_capacity(scenes.len());
    let mut intolerable = Vec::new();
    let mut reused = 0usize;
    for (i, scene) in scenes.iter().enumerate() {
        let paths = if i == 0 {
            base_paths.clone()
        } else {
            let touches_used = scene.0.iter().any(|p| used.contains(p));
            let sub = subtopology(topo, scene);
            let dist_unchanged = !symbolic
                || endpoints
                    .iter()
                    .all(|(s, d)| sub.bfs_hops(*s, &[])[d.idx()] == base_dist[s][d.idx()]);
            if !touches_used && dist_unchanged {
                reused += 1;
                base_paths.clone()
            } else {
                dpvnet::enumerate_valid_paths(&sub, ingress, exprs, path_cap)?
            }
        };
        if paths.is_empty() {
            intolerable.push(i);
        }
        per_scene.push(paths);
    }

    // Union trie with per-scene labels.
    let dim = exprs.len();
    let n_scenes = scenes.len();
    struct TNode {
        dev: DeviceId,
        children: Vec<(DeviceId, usize)>,
        accept: Vec<SceneMask>,
        /// Scenes in which the edge from the parent into this node is on
        /// a valid path.
        edge_mask: SceneMask,
    }
    let mk_accept = |n: usize| (0..dim).map(|_| SceneMask::empty(n)).collect::<Vec<_>>();
    let mut trie: Vec<TNode> = vec![TNode {
        dev: DeviceId(u32::MAX),
        children: Vec::new(),
        accept: mk_accept(n_scenes),
        edge_mask: SceneMask::empty(n_scenes),
    }];
    for (si, paths) in per_scene.iter().enumerate() {
        for p in paths {
            let mut cur = 0usize;
            for &d in &p.devices {
                cur = match trie[cur].children.iter().find(|(cd, _)| *cd == d) {
                    Some(&(_, idx)) => idx,
                    None => {
                        let idx = trie.len();
                        trie.push(TNode {
                            dev: d,
                            children: Vec::new(),
                            accept: mk_accept(n_scenes),
                            edge_mask: SceneMask::empty(n_scenes),
                        });
                        trie[cur].children.push((d, idx));
                        idx
                    }
                };
                trie[cur].edge_mask.set(si);
            }
            for (e, &a) in p.accept.iter().enumerate() {
                if a {
                    trie[cur].accept[e].set(si);
                }
            }
        }
    }

    // Bottom-up hash-consing with masks in the signature.
    type Sig = (DeviceId, Vec<SceneMask>, Vec<(NodeId, SceneMask)>);
    let mut canon_of: Vec<Option<NodeId>> = vec![None; trie.len()];
    let mut sig_map: HashMap<Sig, NodeId> = HashMap::new();
    // Final node data (converted to a DpvNet at the end).
    struct FNode {
        dev: DeviceId,
        out: Vec<(NodeId, SceneMask)>,
        accept_any: Vec<bool>,
        accept_scenes: Vec<SceneMask>,
    }
    let mut fnodes: Vec<FNode> = Vec::new();

    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((t, expanded)) = stack.pop() {
        if !expanded {
            stack.push((t, true));
            for &(_, c) in &trie[t].children {
                stack.push((c, false));
            }
            continue;
        }
        if t == 0 {
            continue;
        }
        let mut kids: Vec<(NodeId, SceneMask)> = Vec::new();
        for &(_, c) in &trie[t].children {
            let id = canon_of[c].unwrap();
            let mask = trie[c].edge_mask.clone();
            match kids.iter_mut().find(|(k, _)| *k == id) {
                Some((_, m)) => m.or_assign(&mask),
                None => kids.push((id, mask)),
            }
        }
        kids.sort_by_key(|(k, _)| *k);
        let sig: Sig = (trie[t].dev, trie[t].accept.clone(), kids.clone());
        let id = match sig_map.get(&sig) {
            Some(&id) => id,
            None => {
                let id = NodeId(fnodes.len() as u32);
                fnodes.push(FNode {
                    dev: trie[t].dev,
                    out: kids,
                    accept_any: trie[t]
                        .accept
                        .iter()
                        .map(|m| m.0.iter().any(|&w| w != 0))
                        .collect(),
                    accept_scenes: trie[t].accept.clone(),
                });
                sig_map.insert(sig, id);
                id
            }
        };
        canon_of[t] = Some(id);
    }

    // Assemble the DpvNet + side tables.
    let mut edge_scenes: HashMap<(NodeId, NodeId), SceneMask> = HashMap::new();
    let mut accept_scenes: Vec<Vec<SceneMask>> = Vec::with_capacity(fnodes.len());
    let mut nodes: Vec<crate::dpvnet::DpvNode> = Vec::with_capacity(fnodes.len());
    let mut label_count: HashMap<DeviceId, u32> = HashMap::new();
    for (i, f) in fnodes.iter().enumerate() {
        let c = label_count.entry(f.dev).or_insert(0);
        *c += 1;
        nodes.push(crate::dpvnet::DpvNode {
            dev: f.dev,
            out: f.out.iter().map(|(k, _)| *k).collect(),
            inn: Vec::new(),
            accept: f.accept_any.clone(),
            label: format!("{}{}", topo.name(f.dev), c),
        });
        for (k, m) in &f.out {
            edge_scenes.insert((NodeId(i as u32), *k), m.clone());
        }
        accept_scenes.push(f.accept_scenes.clone());
    }
    for i in 0..nodes.len() {
        let outs = nodes[i].out.clone();
        for o in outs {
            nodes[o.idx()].inn.push(NodeId(i as u32));
        }
    }
    for n in &mut nodes {
        n.inn.sort();
        n.inn.dedup();
    }
    let mut sources: Vec<(DeviceId, NodeId)> = trie[0]
        .children
        .iter()
        .filter_map(|&(d, c)| canon_of[c].map(|id| (d, id)))
        .collect();
    sources.sort();
    sources.dedup();
    let dpvnet = DpvNet::from_parts(nodes, sources, dim);

    Ok(FtDpvNet {
        dpvnet,
        scenes: scenes.to_vec(),
        edge_scenes,
        accept_scenes,
        intolerable,
        reused_scenes: reused,
    })
}

/// Builds a fault-tolerant counting plan for an invariant: the union
/// DPVNet with scene-0 tasks plus the scene table.
pub fn plan_fault_tolerant(
    topo: &Topology,
    inv: &Invariant,
    scene_cap: usize,
    path_cap: usize,
) -> Result<(CountingPlan, FtDpvNet), PlanError> {
    let scenes = expand_fault_spec(topo, &inv.fault_scenes, scene_cap)?;
    let ingress: Vec<DeviceId> = inv
        .ingress
        .iter()
        .map(|n| {
            topo.device(n)
                .ok_or_else(|| PlanError::UnknownDevice(n.clone()))
        })
        .collect::<Result<_, _>>()?;
    let exprs: Vec<PathExpr> = inv.behavior.path_exprs().into_iter().cloned().collect();
    let ft =
        build_ft_dpvnet(topo, &ingress, &exprs, &scenes, path_cap).map_err(PlanError::DpvNet)?;

    // Compile the behavior like the regular planner does.
    let base = crate::planner::Planner::with_options(
        topo,
        crate::planner::PlannerOptions {
            skip_consistency_check: true,
            ..Default::default()
        },
    )
    .plan(&Invariant {
        fault_scenes: FaultSpec::None,
        ..inv.clone()
    })?;
    let Some(cp) = base.counting() else {
        return Err(PlanError::Unsupported(
            "fault tolerance requires a counting behavior".into(),
        ));
    };
    let mut plan = cp.clone();
    plan.dpvnet = ft.dpvnet.clone();
    plan.tasks = ft.scene_tasks(0);
    Ok((plan, ft))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PathExpr;

    fn fig2a_topo() -> Topology {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t
    }

    #[test]
    fn expand_any_two() {
        let topo = fig2a_topo(); // 6 links
        let scenes = expand_fault_spec(&topo, &crate::spec::FaultSpec::AnyK(2), 1000).unwrap();
        // 1 + 6 + C(6,2) = 1 + 6 + 15 = 22.
        assert_eq!(scenes.len(), 22);
        assert!(scenes[0].is_empty());
        assert!(scenes.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn expand_cap_enforced() {
        let topo = fig2a_topo();
        assert!(expand_fault_spec(&topo, &crate::spec::FaultSpec::AnyK(3), 10).is_err());
    }

    #[test]
    fn subtopology_removes_links() {
        let topo = fig2a_topo();
        let a = topo.device("A").unwrap();
        let b = topo.device("B").unwrap();
        let scene = FaultScene::new([(a, b)]);
        let sub = subtopology(&topo, &scene);
        assert_eq!(sub.num_links(), 5);
        assert!(sub.link_between(a, b).is_none());
        assert_eq!(sub.num_devices(), topo.num_devices());
    }

    #[test]
    fn scene_masks() {
        let mut m = SceneMask::empty(130);
        m.set(0);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(128));
        let mut m2 = SceneMask::empty(130);
        m2.set(5);
        m2.or_assign(&m);
        assert!(m2.get(5) && m2.get(129));
    }

    #[test]
    fn ft_dpvnet_matches_figure_8_shape() {
        // Fig. 8: (<= shortest+1) reachability S→D in Fig. 2a under
        // 2-link failures. Base shortest = 3, so base paths have ≤ 4
        // hops; under failures the shortest can grow and longer paths
        // become valid.
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let pe = PathExpr::parse("S .* D")
            .unwrap()
            .loop_free()
            .shortest_plus(1);
        let scenes = expand_fault_spec(&topo, &crate::spec::FaultSpec::AnyK(2), 1000).unwrap();
        let ft = build_ft_dpvnet(&topo, &[s], std::slice::from_ref(&pe), &scenes, 100_000).unwrap();

        // Scene 0 view reproduces the failure-free DPVNet's path count.
        let base = DpvNet::build(&topo, &[s], std::slice::from_ref(&pe)).unwrap();
        let view0 = ft.scene_tasks(0);
        let srcs: Vec<usize> = ft.dpvnet.sources().iter().map(|(_, n)| n.idx()).collect();
        let paths0 = count_paths(&view0, &srcs);
        assert_eq!(paths0, base.num_paths());

        // The union has at least as many paths as the base.
        assert!(ft.dpvnet.num_paths() >= base.num_paths());

        // Scenes that disconnect S from D are intolerable.
        let sa = link_pair(s, topo.device("A").unwrap());
        let cut = ft.scenes.iter().position(|sc| sc.0 == vec![sa]).unwrap();
        assert!(ft.intolerable.contains(&cut));

        // Some scenes were reused via Proposition 2 (those not touching
        // used links with unchanged shortest distances) — in this dense
        // little topology every link is used, so just sanity-check the
        // counter is consistent.
        assert!(ft.reused_scenes <= ft.scenes.len());
    }

    #[test]
    fn scene_view_drops_failed_paths() {
        let topo = fig2a_topo();
        let s = topo.device("S").unwrap();
        let b = topo.device("B").unwrap();
        let d = topo.device("D").unwrap();
        let pe = PathExpr::parse("S .* D")
            .unwrap()
            .loop_free()
            .shortest_plus(1);
        let scenes = expand_fault_spec(&topo, &crate::spec::FaultSpec::AnyK(1), 1000).unwrap();
        let ft = build_ft_dpvnet(&topo, &[s], &[pe], &scenes, 100_000).unwrap();
        // Scene where link B–D fails: no valid path uses B–D.
        let idx = ft.scene_index(&FaultScene::new([(b, d)])).unwrap();
        let tasks = ft.scene_tasks(idx);
        for t in &tasks {
            if ft.dpvnet.node(t.node).dev == b {
                assert!(
                    t.downstream.iter().all(|(_, dev)| *dev != d),
                    "B must not point at D in this scene"
                );
            }
        }
        // Unknown scenes are reported as None.
        let w = topo.device("W").unwrap();
        assert!(ft
            .scene_index(&FaultScene::new([(b, d), (w, d), (s, w)]))
            .is_none());
    }

    /// Counts source→accept paths in a task view, starting from the
    /// given source node indices.
    fn count_paths(tasks: &[NodeTask], sources: &[usize]) -> f64 {
        let n = tasks.len();
        let mut memo = vec![-1.0f64; n];
        fn rec(tasks: &[NodeTask], i: usize, memo: &mut Vec<f64>) -> f64 {
            if memo[i] >= 0.0 {
                return memo[i];
            }
            let mut c = if tasks[i].accept.iter().any(|&a| a) {
                1.0
            } else {
                0.0
            };
            for (o, _) in &tasks[i].downstream {
                c += rec(tasks, o.idx(), memo);
            }
            memo[i] = c;
            c
        }
        sources.iter().map(|&i| rec(tasks, i, &mut memo)).sum()
    }
}
