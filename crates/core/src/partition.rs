//! Divide-and-conquer verification for very large path sets (§7).
//!
//! For invariants whose valid path set is too large for one DPVNet, the
//! paper proposes dividing the network into partitions abstracted as
//! "one big switch" each, constructing the DPVNet on the abstract
//! network, and running intra-/inter-partition verification. The same
//! mechanism powers incremental deployment (§7): each partition can be
//! verified by one off-device instance.
//!
//! This module implements that scheme for reachability invariants
//! (`src .* dst`, `exist >= 1`), and makes the combination **sound and
//! complete** with respect to flat verification:
//!
//! * [`Partitioning`] — groups devices into connected regions
//!   (operator-provided, or [`Partitioning::by_regions`]).
//! * [`plan_hierarchical`] — builds, per partition, a subnetwork where
//!   every *foreign neighbor* device is replaced by a virtual egress
//!   that delivers everything, plus one *intra task* per entry border:
//!   a single counting session from the entry whose path expressions
//!   track, per packet universe, whether the packets reach the
//!   destination inside the partition and/or which foreign entries
//!   they are handed over to.
//! * [`verify_hierarchical`] — runs the intra tasks (independently —
//!   each partition is its own verification domain) and combines the
//!   per-universe handover predicates with a least fixed point over the
//!   entry graph: a universe is delivered from entry `e` iff, under
//!   every nondeterministic forwarding outcome, it reaches the
//!   destination inside `e`'s partition or is handed to a foreign
//!   entry from which it is (recursively) delivered. The least fixed
//!   point makes cross-partition forwarding loops fail naturally, and
//!   detours that leave a partition and re-enter it later are followed
//!   instead of being miscounted as losses.
//!
//! Why completeness needs the fixed point: real FIB paths do not
//! respect region boundaries — a shortest path toward the destination
//! region may cut through a third region or leave the destination
//! region and come back. A per-partition check that requires packets
//! to stay inside the partition until the next hop on an abstract
//! shortest-path DAG rejects such networks even though the invariant
//! holds; following the observed handovers entry-by-entry accepts
//! exactly the networks flat verification accepts.

use crate::count::{CountExpr, Counts};
use crate::planner::{PlanError, Planner, PlannerOptions};
use crate::spec::{Behavior, Invariant, PacketSpace, PathExpr};
use crate::verify::Session;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tulkun_bdd::serial;
use tulkun_bdd::{BddManager, Pred};
use tulkun_netmodel::fib::{Action, Fib, NextHop, Rule};
use tulkun_netmodel::network::Network;
use tulkun_netmodel::topology::{DeviceId, Topology};

/// A partition of the device set into named groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    groups: Vec<Vec<DeviceId>>,
    /// Device → group index.
    of: Vec<usize>,
}

impl Partitioning {
    /// Builds a partitioning from explicit groups (must cover every
    /// device exactly once).
    pub fn new(topo: &Topology, groups: Vec<Vec<DeviceId>>) -> Result<Partitioning, PlanError> {
        let n = topo.num_devices();
        let mut of = vec![usize::MAX; n];
        for (gi, g) in groups.iter().enumerate() {
            for d in g {
                if of[d.idx()] != usize::MAX {
                    return Err(PlanError::Unsupported(format!(
                        "device {} in two partitions",
                        topo.name(*d)
                    )));
                }
                of[d.idx()] = gi;
            }
        }
        if of.contains(&usize::MAX) {
            return Err(PlanError::Unsupported(
                "partitioning does not cover all devices".into(),
            ));
        }
        Ok(Partitioning { groups, of })
    }

    /// Grows `k` connected regions by parallel BFS from spread-out
    /// seeds.
    pub fn by_regions(topo: &Topology, k: usize) -> Partitioning {
        let n = topo.num_devices();
        let k = k.clamp(1, n);
        // Seeds: greedy farthest-point sampling.
        let mut seeds = vec![DeviceId(0)];
        while seeds.len() < k {
            let mut best = (0u32, DeviceId(0));
            for d in topo.devices() {
                let mind = seeds
                    .iter()
                    .map(|s| topo.bfs_hops(*s, &[])[d.idx()])
                    .min()
                    .unwrap_or(0);
                if mind != u32::MAX && mind > best.0 {
                    best = (mind, d);
                }
            }
            if best.0 == 0 {
                break;
            }
            seeds.push(best.1);
        }
        // Multi-source BFS assignment.
        let mut of = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        for (gi, s) in seeds.iter().enumerate() {
            of[s.idx()] = gi;
            queue.push_back(*s);
        }
        while let Some(d) = queue.pop_front() {
            for &(nb, _) in topo.neighbors(d) {
                if of[nb.idx()] == usize::MAX {
                    of[nb.idx()] = of[d.idx()];
                    queue.push_back(nb);
                }
            }
        }
        // Unreached devices (disconnected): own group 0.
        for g in of.iter_mut() {
            if *g == usize::MAX {
                *g = 0;
            }
        }
        let mut groups = vec![Vec::new(); seeds.len()];
        for d in topo.devices() {
            groups[of[d.idx()]].push(d);
        }
        Partitioning { groups, of }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there is a single group.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group index of a device.
    pub fn group_of(&self, d: DeviceId) -> usize {
        self.of[d.idx()]
    }

    /// Devices of one group.
    pub fn group(&self, gi: usize) -> &[DeviceId] {
        &self.groups[gi]
    }
}

/// Where one of an intra task's path expressions leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressTarget {
    /// The concrete destination inside this partition.
    Destination,
    /// A handover: the foreign entry device (full-network id) on the
    /// other end of a cut link.
    Entry(DeviceId),
}

/// One partition's abstracted subnetwork.
#[derive(Debug, Clone)]
pub struct GroupSubnet {
    /// Partition devices plus one virtual egress per foreign neighbor.
    pub subnet: Network,
    /// Full-network device → subnetwork device, for partition members.
    pub dev_map: BTreeMap<DeviceId, DeviceId>,
    /// Foreign neighbor (full-network id) → its virtual egress device.
    pub egress: BTreeMap<DeviceId, DeviceId>,
}

/// One intra-partition counting session: packets entering the
/// partition at `entry` are traced to the destination and to every
/// virtual egress, in one session with one path expression per target.
#[derive(Debug, Clone)]
pub struct IntraTask {
    /// The partition index.
    pub group: usize,
    /// The entry device (full-network id); also the source partition's
    /// ingress.
    pub entry: DeviceId,
    /// The multi-target sub-invariant verified on the group subnet.
    pub invariant: Invariant,
    /// Targets, index-aligned with the invariant's path expressions
    /// (and thus with outcome-vector components).
    pub targets: Vec<EgressTarget>,
}

/// The hierarchical plan: per-group subnetworks plus intra tasks keyed
/// by entry device.
#[derive(Debug)]
pub struct HierarchicalPlan {
    /// The device grouping.
    pub partitioning: Partitioning,
    /// Undirected group adjacency `(min, max)` — for display.
    pub abstract_edges: Vec<(usize, usize)>,
    /// The source device's partition.
    pub src_group: usize,
    /// The destination device's partition.
    pub dst_group: usize,
    /// The source device.
    pub src: DeviceId,
    /// The destination device.
    pub dst: DeviceId,
    /// The invariant's packet space.
    pub packet_space: PacketSpace,
    /// One abstracted subnetwork per group.
    pub group_subnets: Vec<GroupSubnet>,
    /// All intra-partition sessions.
    pub tasks: Vec<IntraTask>,
}

/// Plans a reachability invariant hierarchically. Supports
/// single-source `exist >= 1` behaviors with an unfiltered
/// `src .* dst` expression (`loop_free` is fine: a cross-partition
/// walk that reaches the destination always contains a loop-free
/// path).
pub fn plan_hierarchical(
    net: &Network,
    inv: &Invariant,
    partitioning: Partitioning,
) -> Result<HierarchicalPlan, PlanError> {
    let topo = &net.topology;
    let (src, dst) = extract_reachability(inv, topo)?;
    let sg = partitioning.group_of(src);
    let dg = partitioning.group_of(dst);

    // Group adjacency (display) and entry borders: every endpoint of a
    // cut link is an entry of its own group.
    let mut abstract_edges = BTreeSet::new();
    let mut entries: BTreeSet<DeviceId> = BTreeSet::new();
    for l in topo.links() {
        let (ga, gb) = (partitioning.group_of(l.a), partitioning.group_of(l.b));
        if ga != gb {
            abstract_edges.insert((ga.min(gb), ga.max(gb)));
            entries.insert(l.a);
            entries.insert(l.b);
        }
    }
    entries.insert(src);

    let group_subnets: Vec<GroupSubnet> = (0..partitioning.len())
        .map(|g| make_group_subnet(net, &partitioning, g))
        .collect();

    let mut tasks = Vec::new();
    for &entry in &entries {
        let g = partitioning.group_of(entry);
        let task = make_intra_task(topo, inv, &group_subnets[g], g, entry, dst)?;
        match task {
            Some(t) => tasks.push(t),
            None if entry == src => {
                return Err(PlanError::Unsupported(
                    "source partition has no egress and no destination".into(),
                ))
            }
            None => {}
        }
    }
    Ok(HierarchicalPlan {
        partitioning,
        abstract_edges: abstract_edges.into_iter().collect(),
        src_group: sg,
        dst_group: dg,
        src,
        dst,
        packet_space: inv.packet_space.clone(),
        group_subnets,
        tasks,
    })
}

/// The hierarchical verdict.
#[derive(Debug, Clone)]
pub struct HierarchicalReport {
    /// Does the invariant hold across partitions?
    pub holds: bool,
    /// Used entries from which some in-scope packets are not
    /// delivered, as `(group, entry)`. The source appears here when
    /// the invariant fails.
    pub failed: Vec<(usize, DeviceId)>,
    /// Intra sessions run (each is an independent verification
    /// domain).
    pub sessions: usize,
}

/// Runs every intra task and combines the per-universe handover
/// predicates with a least fixed point over the entry graph.
pub fn verify_hierarchical(hp: &HierarchicalPlan) -> HierarchicalReport {
    let layout = hp.group_subnets[hp.src_group].subnet.layout;
    let mut m = BddManager::new(layout.num_vars());
    let space = hp.packet_space.compile(&mut m, &layout);

    // Run each intra session and import its per-universe results into
    // the shared manager.
    struct EntryResult {
        group: usize,
        targets: Vec<EgressTarget>,
        universes: Vec<(Pred, Counts)>,
    }
    let mut results: BTreeMap<DeviceId, EntryResult> = BTreeMap::new();
    for t in &hp.tasks {
        let gs = &hp.group_subnets[t.group];
        let planner = Planner::with_options(
            &gs.subnet.topology,
            PlannerOptions {
                skip_consistency_check: true,
                ..Default::default()
            },
        );
        let mut universes = Vec::new();
        if let Ok(plan) = planner.plan(&t.invariant) {
            let mut session = Session::new(&gs.subnet, &plan);
            session.run_to_quiescence();
            let sub_entry = gs.dev_map[&t.entry];
            let sources: Vec<_> = plan_sources(&plan, sub_entry);
            for node in sources {
                if let Some(v) = session.verifier_mut(sub_entry) {
                    for (pred, counts) in v.node_result(node, None) {
                        if let Ok(p) = serial::import(&mut m, &pred) {
                            universes.push((p, counts));
                        }
                    }
                }
            }
        }
        // A task whose plan fails (e.g. path explosion) keeps an empty
        // universe list: nothing is delivered from it — conservative.
        results.insert(
            t.entry,
            EntryResult {
                group: t.group,
                targets: t.targets.clone(),
                universes,
            },
        );
    }

    // Least fixed point: delivered(e) = set of packets that, from
    // entry e, reach the destination under every forwarding outcome —
    // directly or through recursively-delivered handovers.
    let mut delivered: BTreeMap<DeviceId, Pred> =
        results.keys().map(|&e| (e, Pred::FALSE)).collect();
    let cap = 2 * results.len() + 2;
    for _ in 0..cap {
        let mut changed = false;
        for (&e, res) in &results {
            let mut acc = Pred::FALSE;
            for (pred, counts) in &res.universes {
                // AND over nondeterministic outcomes; OR over the
                // handovers each outcome can use.
                let mut univ_ok = Pred::TRUE;
                for v in counts.iter() {
                    let mut out_ok = Pred::FALSE;
                    for (j, tgt) in res.targets.iter().enumerate() {
                        if v.get(j).copied().unwrap_or(0) == 0 {
                            continue;
                        }
                        match tgt {
                            EgressTarget::Destination => out_ok = Pred::TRUE,
                            EgressTarget::Entry(y) => {
                                let dy = delivered.get(y).copied().unwrap_or(Pred::FALSE);
                                out_ok = m.or(out_ok, dy);
                            }
                        }
                        if out_ok == Pred::TRUE {
                            break;
                        }
                    }
                    univ_ok = m.and(univ_ok, out_ok);
                    if univ_ok == Pred::FALSE {
                        break;
                    }
                }
                let good = m.and(*pred, univ_ok);
                acc = m.or(acc, good);
            }
            acc = m.and(acc, space);
            if acc != delivered[&e] {
                delivered.insert(e, acc);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Used entries: reachable from the source in the handover graph,
    // restricted to handovers some in-scope universe actually takes.
    let mut used: BTreeSet<DeviceId> = BTreeSet::new();
    let mut q = VecDeque::from([hp.src]);
    used.insert(hp.src);
    while let Some(e) = q.pop_front() {
        let Some(res) = results.get(&e) else { continue };
        for (pred, counts) in &res.universes {
            if m.and(*pred, space) == Pred::FALSE {
                continue;
            }
            for v in counts.iter() {
                for (j, tgt) in res.targets.iter().enumerate() {
                    if v.get(j).copied().unwrap_or(0) == 0 {
                        continue;
                    }
                    if let EgressTarget::Entry(y) = tgt {
                        if used.insert(*y) {
                            q.push_back(*y);
                        }
                    }
                }
            }
        }
    }

    let src_ok = delivered.get(&hp.src).copied().unwrap_or(Pred::FALSE);
    let holds = m.implies(space, src_ok);
    let mut failed = Vec::new();
    if !holds {
        for (&e, res) in &results {
            if !used.contains(&e) {
                continue;
            }
            if !m.implies(space, delivered[&e]) {
                failed.push((res.group, e));
            }
        }
    }
    HierarchicalReport {
        holds,
        failed,
        sessions: hp.tasks.len(),
    }
}

/// Source DPVNet nodes of `plan` rooted at `dev`.
fn plan_sources(plan: &crate::planner::Plan, dev: DeviceId) -> Vec<crate::dpvnet::NodeId> {
    match &plan.kind {
        crate::planner::PlanKind::Counting(cp) => cp
            .dpvnet
            .sources()
            .iter()
            .filter(|(d, _)| *d == dev)
            .map(|(_, n)| *n)
            .collect(),
        crate::planner::PlanKind::Local(_) => Vec::new(),
    }
}

/// Extracts `(src, dst)` from a supported reachability invariant.
fn extract_reachability(
    inv: &Invariant,
    topo: &Topology,
) -> Result<(DeviceId, DeviceId), PlanError> {
    let Behavior::Exist { count, path } = &inv.behavior else {
        return Err(PlanError::Unsupported(
            "hierarchical planning supports single `exist` reachability".into(),
        ));
    };
    if *count != CountExpr::Ge(1) {
        return Err(PlanError::Unsupported(
            "hierarchical planning supports `exist >= 1` (path counts do not compose across partitions)"
                .into(),
        ));
    }
    if !path.filters.is_empty() {
        return Err(PlanError::Unsupported(
            "hierarchical planning does not support length filters (lengths do not compose across partitions)"
                .into(),
        ));
    }
    if inv.ingress.len() != 1 {
        return Err(PlanError::Unsupported(
            "hierarchical planning needs one ingress".into(),
        ));
    }
    let devs = path.regex.referenced_devices();
    if devs.len() != 2 {
        return Err(PlanError::Unsupported(
            "expected a `src .* dst` expression".into(),
        ));
    }
    let src = topo
        .device(&inv.ingress[0])
        .ok_or_else(|| PlanError::UnknownDevice(inv.ingress[0].clone()))?;
    let dst_name = devs.iter().find(|d| **d != inv.ingress[0]).unwrap();
    let dst = topo
        .device(dst_name)
        .ok_or_else(|| PlanError::UnknownDevice(dst_name.to_string()))?;
    Ok((src, dst))
}

/// Builds one group's subnetwork: partition devices plus one virtual
/// egress per foreign neighbor device (so the reached egress identifies
/// the exact remote entry), each delivering everything it receives.
fn make_group_subnet(net: &Network, partitioning: &Partitioning, group: usize) -> GroupSubnet {
    let topo = &net.topology;
    let members: BTreeSet<DeviceId> = partitioning.group(group).iter().copied().collect();

    let mut sub = Topology::new();
    let mut dev_map: BTreeMap<DeviceId, DeviceId> = BTreeMap::new();
    for &d in &members {
        dev_map.insert(d, sub.add_device(topo.name(d)));
    }
    let mut egress: BTreeMap<DeviceId, DeviceId> = BTreeMap::new();
    for l in topo.links() {
        let (ga, gb) = (partitioning.group_of(l.a), partitioning.group_of(l.b));
        if ga == group && gb == group {
            sub.add_link(dev_map[&l.a], dev_map[&l.b], l.latency_ns);
        } else if ga == group || gb == group {
            let (inside, foreign) = if ga == group { (l.a, l.b) } else { (l.b, l.a) };
            let v = *egress
                .entry(foreign)
                .or_insert_with(|| sub.add_device(format!("__to_{}", topo.name(foreign))));
            if sub.link_between(dev_map[&inside], v).is_none() {
                sub.add_link(dev_map[&inside], v, l.latency_ns);
            }
        }
    }

    // FIBs: members keep their rules with foreign next hops remapped to
    // the matching virtual egress; egresses deliver everything.
    let mut subnet = Network::new(sub);
    for &d in &members {
        let mut fib = Fib::new();
        for rule in net.fib(d).rules() {
            let action = remap_action(&rule.action, &members, &dev_map, &egress);
            fib.insert(Rule {
                priority: rule.priority,
                matches: rule.matches,
                action,
            });
        }
        *subnet.fib_mut(dev_map[&d]) = fib;
    }
    for &v in egress.values() {
        subnet.fib_mut(v).insert(Rule {
            priority: 0,
            matches: tulkun_netmodel::fib::MatchSpec::dst(tulkun_netmodel::IpPrefix::new(0, 0)),
            action: Action::deliver(),
        });
    }
    GroupSubnet {
        subnet,
        dev_map,
        egress,
    }
}

/// Builds the intra task for one entry: a single session whose path
/// expressions track the destination (when it lives in this group) and
/// every virtual egress. Returns `None` when the group has no targets
/// at all (an isolated group without the destination).
fn make_intra_task(
    topo: &Topology,
    inv: &Invariant,
    gs: &GroupSubnet,
    group: usize,
    entry: DeviceId,
    dst: DeviceId,
) -> Result<Option<IntraTask>, PlanError> {
    let entry_name = gs.subnet.topology.name(gs.dev_map[&entry]).to_string();
    let mut targets = Vec::new();
    let mut target_names = Vec::new();
    if let Some(&sub_dst) = gs.dev_map.get(&dst) {
        targets.push(EgressTarget::Destination);
        target_names.push(gs.subnet.topology.name(sub_dst).to_string());
    }
    for (&foreign, &v) in &gs.egress {
        targets.push(EgressTarget::Entry(foreign));
        target_names.push(gs.subnet.topology.name(v).to_string());
    }
    if targets.is_empty() {
        return Ok(None);
    }

    let mut behavior: Option<Behavior> = None;
    for name in &target_names {
        // When the entry IS the destination, the delivering path is the
        // single-device path: `entry .* entry` would demand length >= 2.
        let text = if name == &entry_name {
            entry_name.clone()
        } else {
            format!("{entry_name} .* {name}")
        };
        let pe = PathExpr::parse(&text)
            .map_err(|e| PlanError::Unsupported(e.to_string()))?
            .loop_free();
        let b = Behavior::exist(CountExpr::ge(1), pe);
        behavior = Some(match behavior {
            None => b,
            Some(prev) => Behavior::Or(Box::new(prev), Box::new(b)),
        });
    }
    let invariant = Invariant::builder()
        .name(format!(
            "intra[{group}] {entry_name} -> {{{}}}",
            target_names.join(", ")
        ))
        .packet_space(inv.packet_space.clone())
        .ingress([entry_name])
        .behavior(behavior.expect("at least one target"))
        .build()
        .map_err(|e| PlanError::Unsupported(e.to_string()))?;
    let _ = topo; // names already resolved through the subnet
    Ok(Some(IntraTask {
        group,
        entry,
        invariant,
        targets,
    }))
}

fn remap_action(
    action: &Action,
    members: &BTreeSet<DeviceId>,
    dev_map: &BTreeMap<DeviceId, DeviceId>,
    egress: &BTreeMap<DeviceId, DeviceId>,
) -> Action {
    match action {
        Action::Drop => Action::Drop,
        Action::Forward {
            mode,
            next_hops,
            rewrite,
        } => {
            let mut hops: Vec<NextHop> = Vec::new();
            for nh in next_hops {
                match nh {
                    NextHop::External => hops.push(NextHop::External),
                    NextHop::Device(d) => {
                        if members.contains(d) {
                            hops.push(NextHop::Device(dev_map[d]));
                        } else if let Some(v) = egress.get(d) {
                            if !hops.contains(&NextHop::Device(*v)) {
                                hops.push(NextHop::Device(*v));
                            }
                        }
                        // Hops to non-neighbors vanish (impossible for
                        // topology-consistent FIBs).
                    }
                }
            }
            if hops.is_empty() {
                Action::Drop
            } else {
                Action::Forward {
                    mode: *mode,
                    next_hops: hops,
                    rewrite: *rewrite,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_snapshot;
    use tulkun_netmodel::routing::{generate_fibs, RoutingOptions};

    /// Two triangles joined by two parallel cross links:
    /// (a0,a1,a2) — (b0,b1,b2), src=a0, dst=b2.
    fn two_cluster_net() -> Network {
        let mut t = Topology::new();
        let a: Vec<DeviceId> = (0..3).map(|i| t.add_device(format!("a{i}"))).collect();
        let b: Vec<DeviceId> = (0..3).map(|i| t.add_device(format!("b{i}"))).collect();
        for &(x, y) in &[(0, 1), (1, 2), (0, 2)] {
            t.add_link(a[x], a[y], 1000);
            t.add_link(b[x], b[y], 1000);
        }
        t.add_link(a[1], b[0], 1000);
        t.add_link(a[2], b[1], 1000);
        t.add_external_prefix(b[2], "10.0.0.0/24".parse().unwrap());
        let fibs = generate_fibs(&t, &RoutingOptions::default());
        let mut net = Network::new(t);
        net.fibs = fibs;
        net
    }

    fn reach_inv() -> Invariant {
        Invariant::builder()
            .name("a0 -> b2")
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["a0"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("a0 .* b2").unwrap().loop_free(),
            ))
            .build()
            .unwrap()
    }

    fn cluster_partitioning(net: &Network) -> Partitioning {
        let t = &net.topology;
        let ga: Vec<DeviceId> = t
            .devices()
            .filter(|d| t.name(*d).starts_with('a'))
            .collect();
        let gb: Vec<DeviceId> = t
            .devices()
            .filter(|d| t.name(*d).starts_with('b'))
            .collect();
        Partitioning::new(t, vec![ga, gb]).unwrap()
    }

    #[test]
    fn partitioning_by_regions_covers_everything() {
        let net = two_cluster_net();
        let p = Partitioning::by_regions(&net.topology, 2);
        assert_eq!(p.len(), 2);
        let total: usize = (0..p.len()).map(|g| p.group(g).len()).sum();
        assert_eq!(total, net.topology.num_devices());
    }

    #[test]
    fn hierarchical_verification_holds_on_clean_network() {
        let net = two_cluster_net();
        let hp = plan_hierarchical(&net, &reach_inv(), cluster_partitioning(&net)).unwrap();
        assert_eq!(hp.abstract_edges, vec![(0, 1)]);
        assert!(hp.tasks.len() >= 2, "intra tasks for both partitions");
        let report = verify_hierarchical(&hp);
        assert!(report.holds, "failed: {:?}", report.failed);
    }

    #[test]
    fn hierarchical_detects_partition_internal_blackhole() {
        let mut net = two_cluster_net();
        // Blackhole the prefix inside the destination partition (b0 and
        // b1 both drop): no entry of group 1 can reach b2.
        let p: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
        for name in ["b0", "b1"] {
            let d = net.topology.device(name).unwrap();
            net.fib_mut(d).insert(Rule {
                priority: 99,
                matches: tulkun_netmodel::fib::MatchSpec::dst(p),
                action: Action::Drop,
            });
        }
        let hp = plan_hierarchical(&net, &reach_inv(), cluster_partitioning(&net)).unwrap();
        let report = verify_hierarchical(&hp);
        assert!(!report.holds);
        assert!(report.failed.iter().any(|(g, _)| *g == 1));
    }

    #[test]
    fn hierarchical_detects_cross_border_misrouting() {
        let mut net = two_cluster_net();
        // Make the a-side route everything back toward a0 (a loop inside
        // partition 0): partition 0 can no longer hand packets to 1.
        let p: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
        let a1 = net.topology.device("a1").unwrap();
        let a2 = net.topology.device("a2").unwrap();
        let a0 = net.topology.device("a0").unwrap();
        for d in [a1, a2] {
            net.fib_mut(d).insert(Rule {
                priority: 99,
                matches: tulkun_netmodel::fib::MatchSpec::dst(p),
                action: Action::fwd(a0),
            });
        }
        net.fib_mut(a0).insert(Rule {
            priority: 99,
            matches: tulkun_netmodel::fib::MatchSpec::dst(p),
            action: Action::fwd(a1),
        });
        let hp = plan_hierarchical(&net, &reach_inv(), cluster_partitioning(&net)).unwrap();
        let report = verify_hierarchical(&hp);
        assert!(!report.holds);
        assert!(report.failed.iter().any(|(g, e)| *g == 0 && *e == a0));
    }

    #[test]
    fn detour_through_foreign_region_is_followed() {
        // A path chain a0–a1–b0–b1–a2–c: partition {a0,a1,a2} vs
        // {b0,b1,c...}? Build a line where the only route from a0 to the
        // destination leaves partition 0, crosses partition 1, and
        // re-enters partition 0 before exiting to the destination's
        // partition. A region-locked scheme rejects this; the handover
        // fixed point must accept it.
        let mut t = Topology::new();
        let a0 = t.add_device("a0");
        let b0 = t.add_device("b0");
        let a1 = t.add_device("a1");
        let c0 = t.add_device("c0");
        t.add_link(a0, b0, 1000);
        t.add_link(b0, a1, 1000);
        t.add_link(a1, c0, 1000);
        t.add_external_prefix(c0, "10.0.0.0/24".parse().unwrap());
        let fibs = generate_fibs(&t, &RoutingOptions::default());
        let mut net = Network::new(t);
        net.fibs = fibs;
        // Partition: {a0, a1} / {b0} / {c0} — the a0→c0 path is
        // a0, b0, a1, c0: leaves group 0 and comes back.
        let part =
            Partitioning::new(&net.topology, vec![vec![a0, a1], vec![b0], vec![c0]]).unwrap();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["a0"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("a0 .* c0").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let flat = verify_snapshot(&net, &Planner::new(&net.topology).plan(&inv).unwrap());
        assert!(flat.holds(), "premise: flat verification holds");
        let hp = plan_hierarchical(&net, &inv, part).unwrap();
        let report = verify_hierarchical(&hp);
        assert!(report.holds, "failed: {:?}", report.failed);
    }

    #[test]
    fn cross_partition_loop_fails_the_fixed_point() {
        // a0 → b0 → a1 → b1 → a1 ... : rules that bounce the prefix
        // between partitions forever must not verify (least fixed
        // point, not greatest).
        let mut t = Topology::new();
        let a0 = t.add_device("a0");
        let b0 = t.add_device("b0");
        let a1 = t.add_device("a1");
        let b1 = t.add_device("b1");
        let c0 = t.add_device("c0");
        t.add_link(a0, b0, 1000);
        t.add_link(b0, a1, 1000);
        t.add_link(a1, b1, 1000);
        t.add_link(b1, c0, 1000);
        t.add_external_prefix(c0, "10.0.0.0/24".parse().unwrap());
        let p: tulkun_netmodel::IpPrefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::new(t);
        for (d, nh) in [(a0, b0), (b0, a1), (a1, b1), (b1, a1)] {
            net.fib_mut(d).insert(Rule {
                priority: 10,
                matches: tulkun_netmodel::fib::MatchSpec::dst(p),
                action: Action::fwd(nh),
            });
        }
        let part =
            Partitioning::new(&net.topology, vec![vec![a0, a1], vec![b0, b1], vec![c0]]).unwrap();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["a0"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("a0 .* c0").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let hp = plan_hierarchical(&net, &inv, part).unwrap();
        let report = verify_hierarchical(&hp);
        assert!(
            !report.holds,
            "a forwarding loop across partitions must fail"
        );
    }

    #[test]
    fn rejects_unsupported_shapes() {
        let net = two_cluster_net();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::All)
            .ingress(["a0", "a1"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("a0 .* b2").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        assert!(plan_hierarchical(&net, &inv, cluster_partitioning(&net)).is_err());
        // Length filters do not compose across partitions.
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["a0"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("a0 .* b2")
                    .unwrap()
                    .loop_free()
                    .shortest_plus(1),
            ))
            .build()
            .unwrap();
        assert!(plan_hierarchical(&net, &inv, cluster_partitioning(&net)).is_err());
        // Path counts do not compose across partitions.
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["a0"])
            .behavior(Behavior::exist(
                CountExpr::ge(2),
                PathExpr::parse("a0 .* b2").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        assert!(plan_hierarchical(&net, &inv, cluster_partitioning(&net)).is_err());
    }

    /// The whole point of the rewrite: hierarchical must agree with
    /// flat verification on random networks and random partitionings.
    #[test]
    fn hierarchical_agrees_with_flat_on_random_nets() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..12 {
            let n = rng.gen_range(6..14);
            let mut t = Topology::new();
            let devs: Vec<DeviceId> = (0..n).map(|i| t.add_device(format!("r{i}"))).collect();
            // Random connected graph: a ring plus chords.
            for i in 0..n {
                t.add_link(devs[i], devs[(i + 1) % n], 1000);
            }
            for _ in 0..n / 2 {
                let (x, y) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if x != y && t.link_between(devs[x], devs[y]).is_none() {
                    t.add_link(devs[x], devs[y], 1000);
                }
            }
            let dst = devs[rng.gen_range(0..n)];
            t.add_external_prefix(dst, "10.1.0.0/24".parse().unwrap());
            let fibs = generate_fibs(&t, &RoutingOptions::default());
            let mut net = Network::new(t);
            net.fibs = fibs;
            // Randomly break a third of the trials.
            if trial % 3 == 0 {
                let victim = devs[rng.gen_range(0..n)];
                if victim != dst {
                    net.fib_mut(victim).insert(Rule {
                        priority: 99,
                        matches: tulkun_netmodel::fib::MatchSpec::dst(
                            "10.1.0.0/24".parse().unwrap(),
                        ),
                        action: Action::Drop,
                    });
                }
            }
            let src = devs.iter().copied().find(|d| *d != dst).unwrap();
            let inv = Invariant::builder()
                .packet_space(PacketSpace::dst_prefix("10.1.0.0/24"))
                .ingress([net.topology.name(src)])
                .behavior(Behavior::exist(
                    CountExpr::ge(1),
                    PathExpr::parse(&format!(
                        "{} .* {}",
                        net.topology.name(src),
                        net.topology.name(dst)
                    ))
                    .unwrap()
                    .loop_free(),
                ))
                .build()
                .unwrap();
            let flat = verify_snapshot(&net, &Planner::new(&net.topology).plan(&inv).unwrap());
            let k = rng.gen_range(2..5);
            let part = Partitioning::by_regions(&net.topology, k);
            let hp = plan_hierarchical(&net, &inv, part).unwrap();
            let hier = verify_hierarchical(&hp);
            assert_eq!(
                flat.holds(),
                hier.holds,
                "trial {trial}: flat={} hier={} (k={k}, n={n})",
                flat.holds(),
                hier.holds
            );
        }
    }
}
