//! The runtime intent store: invariant add/remove as first-class
//! events, with per-intent DPVNet slices deduplicated across intents.
//!
//! Production networks carry many concurrent reachability intents that
//! come and go independently; each compiles to its own DPVNet touching
//! only a slice of the network. The store keeps every installed
//! intent's plan in its *intent-local* node ids and maintains one
//! *global* node table shared by all of them:
//!
//! * **Slicing** — installing an intent only produces tasks for the
//!   devices its DPVNet actually touches ([`IntentDelta::changed`]);
//!   the rest of the network is untouched (the `ReplanDelta`-style
//!   `total_nodes`/`reused_nodes` counters evidence this).
//! * **Dedup** — structurally identical nodes of different intents
//!   (same packet-space context, device, accept flags and downstream
//!   cone) are hash-consed onto one global node, so two intents sharing
//!   a node pay for its counting once. Ownership is refcounted
//!   ([`GlobalNode`]'s owner and per-upstream-edge intent sets):
//!   removing an intent only uninstalls what no surviving intent needs.
//! * **Epoch interaction** — the store is pure bookkeeping; substrates
//!   apply an [`IntentDelta`] under the PR-5 epoch fence (bump, apply
//!   tasks, re-announce), so in-flight CIB messages from a superseded
//!   intent set can never corrupt the new fixpoint.
//!
//! Soundness of sharing: a node's counting results depend only on its
//! downstream cone (accept flags + structure), its device's FIB, and
//! its base packet space. The interning key covers all three — the
//! packet-space *context* is part of the key, so nodes of intents with
//! different packet spaces never merge — hence a shared node computes
//! exactly what each owning intent's standalone plan would.

use crate::count::ReduceMode;
use crate::dpvnet::NodeId;
use crate::planner::{CountingPlan, NodeTask, PlanError};
use crate::spec::{Invariant, PacketSpace};
use std::collections::{BTreeMap, BTreeSet};
use tulkun_netmodel::DeviceId;

/// Identifier of one installed intent. Id 0 is the *base* intent: the
/// plan the substrate was constructed with (legacy single-plan
/// sessions are exactly "a store holding only intent 0").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntentId(pub u64);

impl IntentId {
    /// The base intent: the invariant the substrate was constructed
    /// with. It anchors the session and cannot be removed.
    pub const BASE: IntentId = IntentId(0);
}

impl std::fmt::Display for IntentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The counting profile every intent of one store must share: the
/// on-device verifiers carry a single outcome-vector dimension and
/// reduction mode for all hosted nodes, so intents with a different
/// shape are rejected at install time instead of corrupting counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntentProfile {
    /// Number of path expressions (outcome-vector components).
    pub n_exprs: usize,
    /// Whether the escape component is tracked.
    pub track_escapes: bool,
    /// Minimal-counting-information reduction mode.
    pub reduce: ReduceMode,
}

impl IntentProfile {
    fn of(plan: &CountingPlan) -> IntentProfile {
        IntentProfile {
            n_exprs: plan.exprs.len(),
            track_escapes: plan.track_escapes,
            reduce: plan.reduce,
        }
    }
}

/// One installed intent: its own counting plan (intent-local node ids)
/// plus the mapping onto the store's global node table.
#[derive(Debug, Clone)]
pub struct InstalledIntent {
    /// The intent's id.
    pub id: IntentId,
    /// Human-readable name (daemon protocol, status lines).
    pub name: String,
    /// The invariant, when known. The base intent of a store built
    /// straight from a counting plan has none.
    pub invariant: Option<Invariant>,
    /// The intent's counting plan, in intent-local node ids — exactly
    /// what a standalone session for this invariant would run.
    pub plan: CountingPlan,
    /// Intent-local node id (as index) → global node id.
    pub to_global: Vec<NodeId>,
    ctx: usize,
}

impl InstalledIntent {
    /// Index of the intent's packet-space context in its store (nodes
    /// only ever merge within one context).
    pub fn context(&self) -> usize {
        self.ctx
    }

    /// The distinct global nodes of this intent's slice.
    pub fn global_nodes(&self) -> BTreeSet<NodeId> {
        self.to_global.iter().copied().collect()
    }

    /// The devices this intent's slice touches.
    pub fn devices(&self) -> BTreeSet<DeviceId> {
        self.plan.tasks.iter().map(|t| t.dev).collect()
    }
}

/// The structural part of a [`SigKey`]: device, accept vector, sorted
/// downstream edges. Used to count same-signature duplicates while
/// seeding.
type NodeSig = (DeviceId, Vec<bool>, Vec<(NodeId, DeviceId)>);

/// Hash-consing key of a global node. `children` are *global* ids, so
/// a node's identity is exact (its whole downstream cone is pinned by
/// construction); `occurrence` separates structurally identical
/// duplicates *within* one intent so a standalone plan's node
/// multiplicity is preserved.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SigKey {
    ctx: usize,
    dev: DeviceId,
    accept: Vec<bool>,
    children: Vec<(NodeId, DeviceId)>,
    occurrence: u32,
}

/// One node of the global table, refcounted by owning intents.
#[derive(Debug, Clone)]
struct GlobalNode {
    dev: DeviceId,
    accept: Vec<bool>,
    /// Downstream edges (global child ids), fixed for the node's
    /// lifetime — part of its hash-consed identity.
    downstream: Vec<(NodeId, DeviceId)>,
    /// Upstream edges → the intents contributing each. An edge dies
    /// when its last contributor is removed.
    upstream: BTreeMap<(NodeId, DeviceId), BTreeSet<u64>>,
    /// Intents that installed this node.
    owners: BTreeSet<u64>,
    key: SigKey,
}

/// What a substrate must apply after an install/remove: per-device
/// task changes and node removals (global ids), plus the slice-reuse
/// accounting that evidences slicing locality.
#[derive(Debug, Clone, Default)]
pub struct IntentDelta {
    /// Tasks to install or re-task, per device (global node ids).
    pub changed: BTreeMap<DeviceId, Vec<NodeTask>>,
    /// Nodes to drop, per device.
    pub removed: BTreeMap<DeviceId, Vec<NodeId>>,
    /// Base packet space for *new* nodes (the installing intent's);
    /// `None` for removals (removals never create nodes).
    pub space: Option<PacketSpace>,
    /// Distinct global nodes in the intent's slice.
    pub total_nodes: usize,
    /// Slice nodes shared with previously installed intents.
    pub reused_nodes: usize,
}

impl IntentDelta {
    /// Devices this delta touches (re-plan locality evidence).
    pub fn touched_devices(&self) -> BTreeSet<DeviceId> {
        self.changed
            .keys()
            .chain(self.removed.keys())
            .copied()
            .collect()
    }
}

/// The `IntentId`-keyed intent store (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct IntentStore {
    profile: Option<IntentProfile>,
    contexts: Vec<PacketSpace>,
    nodes: BTreeMap<NodeId, GlobalNode>,
    intern: BTreeMap<SigKey, NodeId>,
    intents: BTreeMap<u64, InstalledIntent>,
    next_node: u32,
    next_intent: u64,
}

impl IntentStore {
    /// An empty store (no base intent).
    pub fn new() -> IntentStore {
        IntentStore::default()
    }

    /// A store seeded with the *base* intent (id 0) under an
    /// **identity** local↔global node mapping, so a legacy single-plan
    /// substrate behaves byte-identically to before the store existed.
    pub fn with_base(
        plan: CountingPlan,
        space: PacketSpace,
        invariant: Option<Invariant>,
    ) -> IntentStore {
        let mut store = IntentStore::new();
        store.seed_base(plan, space, invariant);
        store
    }

    /// Replaces the store's contents with a fresh base intent (used
    /// after a topology churn re-plan, which is only supported while
    /// the base intent is the sole live intent).
    pub fn rebase(&mut self, plan: CountingPlan, space: PacketSpace, invariant: Option<Invariant>) {
        *self = IntentStore::new();
        self.seed_base(plan, space, invariant);
    }

    fn seed_base(&mut self, plan: CountingPlan, space: PacketSpace, invariant: Option<Invariant>) {
        assert!(self.intents.is_empty(), "base intent must be seeded first");
        self.profile = Some(IntentProfile::of(&plan));
        self.contexts.push(space);
        let by_local = local_tasks(&plan);
        let order = topo_order(&by_local);
        let n_local = by_local.len();
        let mut occ: BTreeMap<NodeSig, u32> = BTreeMap::new();
        for ln in order {
            let t = &by_local[&ln];
            // Identity mapping: the base intent's local ids ARE the
            // global ids.
            let children = sorted_edges(t.downstream.iter().map(|(n, d)| (*n, *d)));
            let sig = (t.dev, t.accept.clone(), children.clone());
            let o = occ.entry(sig).or_insert(0);
            let key = SigKey {
                ctx: 0,
                dev: t.dev,
                accept: t.accept.clone(),
                children: children.clone(),
                occurrence: *o,
            };
            *o += 1;
            self.intern.insert(key.clone(), ln);
            self.nodes.insert(
                ln,
                GlobalNode {
                    dev: t.dev,
                    accept: t.accept.clone(),
                    downstream: children,
                    upstream: BTreeMap::new(),
                    owners: BTreeSet::from([0u64]),
                    key,
                },
            );
            self.next_node = self.next_node.max(ln.0 + 1);
        }
        for t in by_local.values() {
            for (cl, _) in &t.downstream {
                self.nodes
                    .get_mut(cl)
                    .expect("downstream node exists")
                    .upstream
                    .entry((t.node, t.dev))
                    .or_default()
                    .insert(0);
            }
        }
        let to_global: Vec<NodeId> = (0..n_local as u32).map(NodeId).collect();
        self.intents.insert(
            0,
            InstalledIntent {
                id: IntentId(0),
                name: "base".to_string(),
                invariant,
                plan,
                to_global,
                ctx: 0,
            },
        );
        self.next_intent = 1;
    }

    /// Installs an intent: interns its DPVNet slice into the global
    /// table (children-first, so sharing with existing cones is found
    /// bottom-up) and returns the per-device delta a substrate must
    /// apply under an epoch bump. Pass `id = None` to allocate the
    /// next id; an explicit id is for deterministic replay (hot
    /// backend swap) and must be unused.
    pub fn install(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        invariant: Option<Invariant>,
        plan: CountingPlan,
        space: PacketSpace,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        let profile = IntentProfile::of(&plan);
        match self.profile {
            None => self.profile = Some(profile),
            Some(p) if p == profile => {}
            Some(p) => {
                return Err(PlanError::Unsupported(format!(
                    "intent {name:?} has counting profile {profile:?}, \
                     but this session runs {p:?} (one outcome-vector \
                     shape per session)"
                )));
            }
        }
        let id = match id {
            Some(i) => {
                if self.intents.contains_key(&i.0) {
                    return Err(PlanError::Unsupported(format!(
                        "intent id {i} is already installed"
                    )));
                }
                self.next_intent = self.next_intent.max(i.0 + 1);
                i
            }
            None => {
                let i = IntentId(self.next_intent);
                self.next_intent += 1;
                i
            }
        };
        let ctx = match self.contexts.iter().position(|c| *c == space) {
            Some(i) => i,
            None => {
                self.contexts.push(space.clone());
                self.contexts.len() - 1
            }
        };

        let by_local = local_tasks(&plan);
        let order = topo_order(&by_local);
        let n_local = by_local.len();
        let mut to_global = vec![NodeId(u32::MAX); n_local];
        let mut occ: BTreeMap<SigKey, u32> = BTreeMap::new();
        let mut reused = 0usize;
        let mut fresh: BTreeSet<NodeId> = BTreeSet::new();
        for ln in order {
            let t = &by_local[&ln];
            let children = sorted_edges(
                t.downstream
                    .iter()
                    .map(|(n, d)| (to_global[n.0 as usize], *d)),
            );
            let mut key = SigKey {
                ctx,
                dev: t.dev,
                accept: t.accept.clone(),
                children: children.clone(),
                occurrence: 0,
            };
            // Nth structurally identical duplicate within this intent
            // claims the Nth matching global node.
            let o = occ.entry(key.clone()).or_insert(0);
            key.occurrence = *o;
            *o += 1;
            let g = match self.intern.get(&key) {
                Some(&g) => {
                    reused += 1;
                    self.nodes.get_mut(&g).unwrap().owners.insert(id.0);
                    g
                }
                None => {
                    let g = NodeId(self.next_node);
                    self.next_node += 1;
                    self.intern.insert(key.clone(), g);
                    self.nodes.insert(
                        g,
                        GlobalNode {
                            dev: t.dev,
                            accept: t.accept.clone(),
                            downstream: children,
                            upstream: BTreeMap::new(),
                            owners: BTreeSet::from([id.0]),
                            key,
                        },
                    );
                    fresh.insert(g);
                    g
                }
            };
            to_global[ln.0 as usize] = g;
        }

        // Contribute upstream edges; a grown edge set means the child
        // must be re-tasked so it announces along the new edge.
        let mut retask: BTreeSet<NodeId> = fresh.clone();
        for t in by_local.values() {
            let pg = to_global[t.node.0 as usize];
            let pdev = t.dev;
            for (cl, _) in &t.downstream {
                let cg = to_global[cl.0 as usize];
                let node = self.nodes.get_mut(&cg).expect("child exists");
                let edge = node.upstream.entry((pg, pdev)).or_default();
                if edge.is_empty() {
                    retask.insert(cg);
                }
                edge.insert(id.0);
            }
        }

        let mut delta = IntentDelta {
            space: Some(self.contexts[ctx].clone()),
            total_nodes: to_global.iter().collect::<BTreeSet<_>>().len(),
            reused_nodes: reused,
            ..IntentDelta::default()
        };
        for g in retask {
            let task = self.global_task(g);
            delta.changed.entry(task.dev).or_default().push(task);
        }
        self.intents.insert(
            id.0,
            InstalledIntent {
                id,
                name: name.to_string(),
                invariant,
                plan,
                to_global,
                ctx,
            },
        );
        Ok((id, delta))
    }

    /// Removes an intent: drops its ownership refs, removes nodes no
    /// surviving intent owns, shrinks upstream edge sets, and returns
    /// the delta a substrate must apply under an epoch bump.
    pub fn remove(&mut self, id: IntentId) -> Result<IntentDelta, PlanError> {
        if id == IntentId::BASE {
            return Err(PlanError::Unsupported(
                "the base intent anchors the session and cannot be removed".into(),
            ));
        }
        let Some(intent) = self.intents.remove(&id.0) else {
            return Err(PlanError::Unsupported(format!(
                "intent {id} is not installed"
            )));
        };
        let by_local = local_tasks(&intent.plan);
        // Withdraw this intent's upstream-edge contributions.
        let mut shrunk: BTreeSet<NodeId> = BTreeSet::new();
        for t in by_local.values() {
            let pg = intent.to_global[t.node.0 as usize];
            let pdev = t.dev;
            for (cl, _) in &t.downstream {
                let cg = intent.to_global[cl.0 as usize];
                let node = self.nodes.get_mut(&cg).expect("child exists");
                if let Some(refs) = node.upstream.get_mut(&(pg, pdev)) {
                    refs.remove(&id.0);
                    if refs.is_empty() {
                        node.upstream.remove(&(pg, pdev));
                        shrunk.insert(cg);
                    }
                }
            }
        }
        // Drop ownership; sweep nodes nobody owns anymore.
        let mut delta = IntentDelta::default();
        for g in intent.global_nodes() {
            let node = self.nodes.get_mut(&g).expect("owned node exists");
            node.owners.remove(&id.0);
            if node.owners.is_empty() {
                let node = self.nodes.remove(&g).unwrap();
                self.intern.remove(&node.key);
                shrunk.remove(&g);
                delta.removed.entry(node.dev).or_default().push(g);
            }
        }
        for g in shrunk {
            let task = self.global_task(g);
            delta.changed.entry(task.dev).or_default().push(task);
        }
        delta.total_nodes = intent.to_global.iter().collect::<BTreeSet<_>>().len();
        delta.reused_nodes =
            delta.total_nodes - delta.removed.values().map(Vec::len).sum::<usize>();
        Ok(delta)
    }

    /// The current [`NodeTask`] of one global node (global ids, sorted
    /// edges).
    fn global_task(&self, g: NodeId) -> NodeTask {
        let node = &self.nodes[&g];
        NodeTask {
            node: g,
            dev: node.dev,
            downstream: node.downstream.clone(),
            upstream: node.upstream.keys().copied().collect(),
            accept: node.accept.clone(),
        }
    }

    /// Live intents, in id order.
    pub fn live(&self) -> impl Iterator<Item = &InstalledIntent> {
        self.intents.values()
    }

    /// One live intent.
    pub fn get(&self, id: IntentId) -> Option<&InstalledIntent> {
        self.intents.get(&id.0)
    }

    /// Number of live intents.
    pub fn len(&self) -> usize {
        self.intents.len()
    }

    /// Whether no intent is installed.
    pub fn is_empty(&self) -> bool {
        self.intents.is_empty()
    }

    /// Whether the base intent (id 0) is the *only* live intent — the
    /// precondition for legacy whole-plan operations (topology churn
    /// re-planning is not yet intent-aware).
    pub fn only_base(&self) -> bool {
        self.intents.len() == 1 && self.intents.contains_key(&0)
    }

    /// Number of distinct global nodes currently installed.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every installed node's current task (global ids) — the union
    /// task table across intents, deduplicated.
    pub fn global_tasks(&self) -> Vec<NodeTask> {
        self.nodes.keys().map(|g| self.global_task(*g)).collect()
    }

    /// The devices currently hosting at least one node.
    pub fn devices(&self) -> BTreeSet<DeviceId> {
        self.nodes.values().map(|n| n.dev).collect()
    }

    /// The id the next `install(None, ..)` will allocate (ids are
    /// never reused, so this only ever grows).
    pub fn next_intent_id(&self) -> u64 {
        self.next_intent
    }

    /// How many intents own the given global node (dedup evidence).
    pub fn owner_count(&self, g: NodeId) -> usize {
        self.nodes.get(&g).map_or(0, |n| n.owners.len())
    }
}

/// Tasks of one plan keyed by their local node id.
fn local_tasks(plan: &CountingPlan) -> BTreeMap<NodeId, &NodeTask> {
    plan.tasks.iter().map(|t| (t.node, t)).collect()
}

/// Children-first deterministic order: iterative DFS post-order from
/// every node in ascending id, following downstream edges.
fn topo_order(by_local: &BTreeMap<NodeId, &NodeTask>) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(by_local.len());
    let mut done: BTreeSet<NodeId> = BTreeSet::new();
    for &root in by_local.keys() {
        if done.contains(&root) {
            continue;
        }
        // (node, next child index) stack.
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some((n, i)) = stack.pop() {
            let t = &by_local[&n];
            if let Some((c, _)) = t.downstream.get(i) {
                stack.push((n, i + 1));
                if !done.contains(c) && by_local.contains_key(c) {
                    stack.push((*c, 0));
                }
            } else if done.insert(n) {
                out.push(n);
            }
        }
    }
    out
}

fn sorted_edges(it: impl Iterator<Item = (NodeId, DeviceId)>) -> Vec<(NodeId, DeviceId)> {
    let mut v: Vec<(NodeId, DeviceId)> = it.collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::CountExpr;
    use crate::planner::Planner;
    use crate::spec::{Behavior, PacketSpace, PathExpr};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
    use tulkun_netmodel::network::Network;
    use tulkun_netmodel::topology::Topology;
    use tulkun_netmodel::IpPrefix;

    fn pfx(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// The Figure 2a network (S → A → {B, W} → D).
    fn fig2a_network() -> Network {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t.add_external_prefix(d, pfx("10.0.0.0/23"));
        let mut net = Network::new(t);
        net.fib_mut(s).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(a),
        });
        net.fib_mut(a).insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd_all([b, w]),
        });
        net.fib_mut(b).insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(d),
        });
        net.fib_mut(w).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(d),
        });
        net.fib_mut(d).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::deliver(),
        });
        net
    }

    fn plan_for(net: &Network, expr: &str) -> (Invariant, CountingPlan) {
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress([expr.split_whitespace().next().unwrap()])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse(expr).unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (inv, cp)
    }

    /// Overlapping intents share tasks; removal keeps shared tasks
    /// alive (the dedup-refcount contract of the intent store).
    #[test]
    fn dedup_refcounts_shared_tasks() {
        let net = fig2a_network();
        let (inv_a, cp_a) = plan_for(&net, "S .* D");
        let (inv_b, cp_b) = plan_for(&net, "A .* D");
        let mut store = IntentStore::with_base(
            cp_a.clone(),
            inv_a.packet_space.clone(),
            Some(inv_a.clone()),
        );
        let before = store.node_count();
        let (id_b, delta_b) = store
            .install(
                None,
                "b",
                Some(inv_b.clone()),
                cp_b.clone(),
                inv_b.packet_space.clone(),
            )
            .unwrap();
        assert!(
            delta_b.reused_nodes > 0,
            "S.*D and A.*D share the suffix cone toward D: {delta_b:?}"
        );
        assert_eq!(
            store.node_count(),
            before + delta_b.total_nodes - delta_b.reused_nodes
        );
        // A shared node is owned by both intents...
        let b = store.get(id_b).unwrap();
        let shared: Vec<NodeId> = b
            .global_nodes()
            .into_iter()
            .filter(|g| store.owner_count(*g) == 2)
            .collect();
        assert_eq!(shared.len(), delta_b.reused_nodes);
        // ...and removing one intent keeps every shared node alive.
        let delta_rm = store.remove(id_b).unwrap();
        for g in &shared {
            assert_eq!(store.owner_count(*g), 1, "shared node {g:?} must survive");
        }
        let removed: usize = delta_rm.removed.values().map(Vec::len).sum();
        assert_eq!(removed, delta_b.total_nodes - delta_b.reused_nodes);
        assert_eq!(store.node_count(), before);
        assert!(store.only_base());
    }

    /// Installing the same invariant twice is a full interning hit.
    #[test]
    fn duplicate_intent_is_fully_shared() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* W .* D");
        let mut store =
            IntentStore::with_base(cp.clone(), inv.packet_space.clone(), Some(inv.clone()));
        let (id, delta) = store
            .install(
                None,
                "dup",
                Some(inv.clone()),
                cp.clone(),
                inv.packet_space.clone(),
            )
            .unwrap();
        assert_eq!(delta.total_nodes, delta.reused_nodes, "{delta:?}");
        assert!(delta.removed.is_empty());
        let before = store.node_count();
        let delta_rm = store.remove(id).unwrap();
        assert!(delta_rm.removed.is_empty(), "{delta_rm:?}");
        assert_eq!(store.node_count(), before);
    }

    /// Intents with a different packet space never merge nodes.
    #[test]
    fn contexts_keep_packet_spaces_apart() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* D");
        let other = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let ocp = Planner::new(&net.topology)
            .plan(&other)
            .unwrap()
            .counting()
            .unwrap()
            .clone();
        let mut store = IntentStore::with_base(cp, inv.packet_space.clone(), Some(inv.clone()));
        let (_, delta) = store
            .install(
                None,
                "other-space",
                Some(other.clone()),
                ocp,
                other.packet_space.clone(),
            )
            .unwrap();
        assert_eq!(delta.reused_nodes, 0, "{delta:?}");
    }

    /// A mismatched counting profile is rejected, not mis-counted.
    #[test]
    fn profile_mismatch_rejected() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* D");
        let covered = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::covered(
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let ccp = Planner::new(&net.topology)
            .plan(&covered)
            .unwrap()
            .counting()
            .unwrap()
            .clone();
        let mut store = IntentStore::with_base(cp, inv.packet_space.clone(), Some(inv));
        if IntentProfile::of(&store.get(IntentId(0)).unwrap().plan) != IntentProfile::of(&ccp) {
            let err = store.install(
                None,
                "covered",
                Some(covered.clone()),
                ccp,
                covered.packet_space.clone(),
            );
            assert!(err.is_err());
        }
    }
}
