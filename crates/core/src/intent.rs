//! The runtime intent store: invariant add/remove as first-class
//! events, with per-intent DPVNet slices deduplicated across intents.
//!
//! Production networks carry many concurrent reachability intents that
//! come and go independently; each compiles to its own DPVNet touching
//! only a slice of the network. The store keeps every installed
//! intent's plan in its *intent-local* node ids and maintains one
//! *global* node table shared by all of them:
//!
//! * **Slicing** — installing an intent only produces tasks for the
//!   devices its DPVNet actually touches ([`IntentDelta::changed`]);
//!   the rest of the network is untouched (the `ReplanDelta`-style
//!   `total_nodes`/`reused_nodes` counters evidence this).
//! * **Dedup** — structurally identical nodes of different intents
//!   (same packet-space context, device, accept flags and downstream
//!   cone) are hash-consed onto one global node, so two intents sharing
//!   a node pay for its counting once. Ownership is refcounted
//!   ([`GlobalNode`]'s owner and per-upstream-edge intent sets):
//!   removing an intent only uninstalls what no surviving intent needs.
//! * **Epoch interaction** — the store is pure bookkeeping; substrates
//!   apply an [`IntentDelta`] under the PR-5 epoch fence (bump, apply
//!   tasks, re-announce), so in-flight CIB messages from a superseded
//!   intent set can never corrupt the new fixpoint.
//!
//! Soundness of sharing: a node's counting results depend only on its
//! downstream cone (accept flags + structure), its device's FIB, and
//! its base packet space. The interning key covers all three — the
//! packet-space *context* is part of the key, so nodes of intents with
//! different packet spaces never merge — hence a shared node computes
//! exactly what each owning intent's standalone plan would.

use crate::churn::ChurnState;
use crate::count::ReduceMode;
use crate::dpvnet::NodeId;
use crate::planner::{CountingPlan, NodeTask, PlanError, Planner};
use crate::spec::{Invariant, PacketSpace};
use std::collections::{BTreeMap, BTreeSet};
use tulkun_netmodel::topology::Topology;
use tulkun_netmodel::DeviceId;

/// Identifier of one installed intent. Id 0 is the *base* intent: the
/// plan the substrate was constructed with (legacy single-plan
/// sessions are exactly "a store holding only intent 0").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntentId(pub u64);

impl IntentId {
    /// The base intent: the invariant the substrate was constructed
    /// with. It anchors the session and cannot be removed.
    pub const BASE: IntentId = IntentId(0);
}

impl std::fmt::Display for IntentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The counting profile every intent of one store must share: the
/// on-device verifiers carry a single outcome-vector dimension and
/// reduction mode for all hosted nodes, so intents with a different
/// shape are rejected at install time instead of corrupting counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntentProfile {
    /// Number of path expressions (outcome-vector components).
    pub n_exprs: usize,
    /// Whether the escape component is tracked.
    pub track_escapes: bool,
    /// Minimal-counting-information reduction mode.
    pub reduce: ReduceMode,
}

impl IntentProfile {
    fn of(plan: &CountingPlan) -> IntentProfile {
        IntentProfile {
            n_exprs: plan.exprs.len(),
            track_escapes: plan.track_escapes,
            reduce: plan.reduce,
        }
    }
}

/// One installed intent: its own counting plan (intent-local node ids)
/// plus the mapping onto the store's global node table.
#[derive(Debug, Clone)]
pub struct InstalledIntent {
    /// The intent's id.
    pub id: IntentId,
    /// Human-readable name (daemon protocol, status lines).
    pub name: String,
    /// The invariant, when known. The base intent of a store built
    /// straight from a counting plan has none.
    pub invariant: Option<Invariant>,
    /// The intent's counting plan, in intent-local node ids — exactly
    /// what a standalone session for this invariant would run.
    pub plan: CountingPlan,
    /// Intent-local node id (as index) → global node id.
    pub to_global: Vec<NodeId>,
    ctx: usize,
    degraded: bool,
}

impl InstalledIntent {
    /// Index of the intent's packet-space context in its store (nodes
    /// only ever merge within one context).
    pub fn context(&self) -> usize {
        self.ctx
    }

    /// Whether the intent is *degraded*: the current post-churn
    /// topology cannot host its slice (e.g. its ingress is isolated),
    /// so it owns no global nodes and is excluded from evaluation
    /// until a later churn event makes it plannable again. Its `plan`
    /// and `to_global` are the last good (pre-degradation) ones.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The distinct global nodes of this intent's slice.
    pub fn global_nodes(&self) -> BTreeSet<NodeId> {
        self.to_global.iter().copied().collect()
    }

    /// The devices this intent's slice touches.
    pub fn devices(&self) -> BTreeSet<DeviceId> {
        self.plan.tasks.iter().map(|t| t.dev).collect()
    }
}

/// The structural part of a [`SigKey`]: device, accept vector, sorted
/// downstream edges. Used to count same-signature duplicates while
/// seeding.
type NodeSig = (DeviceId, Vec<bool>, Vec<(NodeId, DeviceId)>);

/// Hash-consing key of a global node. `children` are *global* ids, so
/// a node's identity is exact (its whole downstream cone is pinned by
/// construction); `occurrence` separates structurally identical
/// duplicates *within* one intent so a standalone plan's node
/// multiplicity is preserved.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SigKey {
    ctx: usize,
    dev: DeviceId,
    accept: Vec<bool>,
    children: Vec<(NodeId, DeviceId)>,
    occurrence: u32,
}

/// One node of the global table, refcounted by owning intents.
#[derive(Debug, Clone)]
struct GlobalNode {
    dev: DeviceId,
    accept: Vec<bool>,
    /// Downstream edges (global child ids), fixed for the node's
    /// lifetime — part of its hash-consed identity.
    downstream: Vec<(NodeId, DeviceId)>,
    /// Upstream edges → the intents contributing each. An edge dies
    /// when its last contributor is removed.
    upstream: BTreeMap<(NodeId, DeviceId), BTreeSet<u64>>,
    /// Intents that installed this node.
    owners: BTreeSet<u64>,
    key: SigKey,
}

/// What a substrate must apply after an install/remove: per-device
/// task changes and node removals (global ids), plus the slice-reuse
/// accounting that evidences slicing locality.
#[derive(Debug, Clone, Default)]
pub struct IntentDelta {
    /// Tasks to install or re-task, per device (global node ids).
    pub changed: BTreeMap<DeviceId, Vec<NodeTask>>,
    /// Nodes to drop, per device.
    pub removed: BTreeMap<DeviceId, Vec<NodeId>>,
    /// Base packet space for *new* nodes (the installing intent's);
    /// `None` for removals (removals never create nodes).
    pub space: Option<PacketSpace>,
    /// Distinct global nodes in the intent's slice.
    pub total_nodes: usize,
    /// Slice nodes shared with previously installed intents.
    pub reused_nodes: usize,
}

impl IntentDelta {
    /// Devices this delta touches (re-plan locality evidence).
    pub fn touched_devices(&self) -> BTreeSet<DeviceId> {
        self.changed
            .keys()
            .chain(self.removed.keys())
            .copied()
            .collect()
    }
}

/// How many churn fences a parked install may ride before it is
/// rejected with a journaled, explainable error instead of waiting
/// forever (see [`PendingIntent`]).
pub const MAX_INTENT_RETRIES: u32 = 3;

/// An install that raced a topology fence: its invariant could not be
/// planned against the *current* effective topology, so it waits in
/// the store's pending queue and is deterministically re-planned on
/// every subsequent fence. Its [`IntentId`] is allocated at park time,
/// so replicas that make the same park decisions agree on ids.
#[derive(Debug, Clone)]
pub struct PendingIntent {
    /// The id the intent will carry once it lands.
    pub id: IntentId,
    /// Human-readable name (daemon protocol, status lines).
    pub name: String,
    /// The invariant to plan once the topology allows it.
    pub invariant: Invariant,
    /// Failed re-plan attempts so far; at [`MAX_INTENT_RETRIES`] the
    /// intent is rejected instead of retried.
    pub retries: u32,
}

/// One per-device task group of a [`StoreReplan`]. Groups carry the
/// packet-space context their *new* nodes must be seeded with:
/// `ctx: None` means every node in the group already exists on the
/// device (pure re-task — apply with `set_tasks`); `ctx: Some(i)`
/// means the group introduces nodes of context `i` (apply with
/// `install_tasks` under [`IntentStore::context_space`]). Groups for
/// one device are ordered `None` first, then contexts ascending.
#[derive(Debug, Clone)]
pub struct ReplanTaskGroup {
    /// Packet-space context index for new nodes; `None` for re-tasks.
    pub ctx: Option<usize>,
    /// The tasks, sorted by global node id.
    pub tasks: Vec<NodeTask>,
}

/// What [`IntentStore::replan_all_for_churn`] asks a substrate to
/// apply under one epoch fence, plus the per-intent lifecycle
/// transitions the fence caused (for journaling and gauges).
#[derive(Debug, Clone)]
pub struct StoreReplan {
    /// The post-churn topology every surviving slice was planned
    /// against.
    pub topology: Topology,
    /// Per device: task groups to apply (see [`ReplanTaskGroup`]).
    /// Devices whose hosted nodes all survived verbatim are absent —
    /// unaffected slices ship zero tasks.
    pub changed: BTreeMap<DeviceId, Vec<ReplanTaskGroup>>,
    /// Per device: nodes of the old table no longer present.
    pub removed: BTreeMap<DeviceId, Vec<NodeId>>,
    /// Nodes of the *old* table hosted on now-quarantined devices;
    /// their last results are reported `Unreachable`, not recomputed.
    pub unreachable: Vec<(NodeId, DeviceId)>,
    /// Intents whose slice cannot be planned on the new topology, with
    /// the planner's reason. Includes intents that were already
    /// degraded and still fail; substrates diff against their own
    /// records to journal only fresh transitions.
    pub degraded: Vec<(IntentId, String)>,
    /// Previously degraded intents that planned again this fence.
    pub revived: Vec<IntentId>,
    /// Parked installs that landed this fence (now live intents).
    pub unparked: Vec<IntentId>,
    /// Parked installs that exhausted [`MAX_INTENT_RETRIES`], with the
    /// last planner error; they are dropped from the queue.
    pub rejected: Vec<(IntentId, String)>,
    /// Nodes in the rebuilt global table.
    pub total_nodes: usize,
    /// Nodes whose id *and* task survived the re-plan verbatim (no
    /// recount, no re-task — only a re-announce under the new epoch).
    pub reused_nodes: usize,
}

/// The `IntentId`-keyed intent store (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct IntentStore {
    profile: Option<IntentProfile>,
    contexts: Vec<PacketSpace>,
    nodes: BTreeMap<NodeId, GlobalNode>,
    intern: BTreeMap<SigKey, NodeId>,
    intents: BTreeMap<u64, InstalledIntent>,
    parked: BTreeMap<u64, PendingIntent>,
    next_node: u32,
    next_intent: u64,
}

impl IntentStore {
    /// An empty store (no base intent).
    pub fn new() -> IntentStore {
        IntentStore::default()
    }

    /// A store seeded with the *base* intent (id 0) under an
    /// **identity** local↔global node mapping, so a legacy single-plan
    /// substrate behaves byte-identically to before the store existed.
    pub fn with_base(
        plan: CountingPlan,
        space: PacketSpace,
        invariant: Option<Invariant>,
    ) -> IntentStore {
        let mut store = IntentStore::new();
        store.seed_base(plan, space, invariant);
        store
    }

    /// Replaces the store's contents with a fresh base intent (used
    /// after a topology churn re-plan, which is only supported while
    /// the base intent is the sole live intent).
    pub fn rebase(&mut self, plan: CountingPlan, space: PacketSpace, invariant: Option<Invariant>) {
        *self = IntentStore::new();
        self.seed_base(plan, space, invariant);
    }

    fn seed_base(&mut self, plan: CountingPlan, space: PacketSpace, invariant: Option<Invariant>) {
        assert!(self.intents.is_empty(), "base intent must be seeded first");
        self.profile = Some(IntentProfile::of(&plan));
        self.contexts.push(space);
        let by_local = local_tasks(&plan);
        let order = topo_order(&by_local);
        let n_local = by_local.len();
        let mut occ: BTreeMap<NodeSig, u32> = BTreeMap::new();
        for ln in order {
            let t = &by_local[&ln];
            // Identity mapping: the base intent's local ids ARE the
            // global ids.
            let children = sorted_edges(t.downstream.iter().map(|(n, d)| (*n, *d)));
            let sig = (t.dev, t.accept.clone(), children.clone());
            let o = occ.entry(sig).or_insert(0);
            let key = SigKey {
                ctx: 0,
                dev: t.dev,
                accept: t.accept.clone(),
                children: children.clone(),
                occurrence: *o,
            };
            *o += 1;
            self.intern.insert(key.clone(), ln);
            self.nodes.insert(
                ln,
                GlobalNode {
                    dev: t.dev,
                    accept: t.accept.clone(),
                    downstream: children,
                    upstream: BTreeMap::new(),
                    owners: BTreeSet::from([0u64]),
                    key,
                },
            );
            self.next_node = self.next_node.max(ln.0 + 1);
        }
        for t in by_local.values() {
            for (cl, _) in &t.downstream {
                self.nodes
                    .get_mut(cl)
                    .expect("downstream node exists")
                    .upstream
                    .entry((t.node, t.dev))
                    .or_default()
                    .insert(0);
            }
        }
        let to_global: Vec<NodeId> = (0..n_local as u32).map(NodeId).collect();
        self.intents.insert(
            0,
            InstalledIntent {
                id: IntentId(0),
                name: "base".to_string(),
                invariant,
                plan,
                to_global,
                ctx: 0,
                degraded: false,
            },
        );
        self.next_intent = 1;
    }

    /// Installs an intent: interns its DPVNet slice into the global
    /// table (children-first, so sharing with existing cones is found
    /// bottom-up) and returns the per-device delta a substrate must
    /// apply under an epoch bump. Pass `id = None` to allocate the
    /// next id; an explicit id is for deterministic replay (hot
    /// backend swap) and must be unused.
    pub fn install(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        invariant: Option<Invariant>,
        plan: CountingPlan,
        space: PacketSpace,
    ) -> Result<(IntentId, IntentDelta), PlanError> {
        let profile = IntentProfile::of(&plan);
        match self.profile {
            None => self.profile = Some(profile),
            Some(p) if p == profile => {}
            Some(p) => {
                return Err(PlanError::Unsupported(format!(
                    "intent {name:?} has counting profile {profile:?}, \
                     but this session runs {p:?} (one outcome-vector \
                     shape per session)"
                )));
            }
        }
        let id = match id {
            Some(i) => {
                if self.intents.contains_key(&i.0) || self.parked.contains_key(&i.0) {
                    return Err(PlanError::Unsupported(format!(
                        "intent id {i} is already installed"
                    )));
                }
                self.next_intent = self.next_intent.max(i.0 + 1);
                i
            }
            None => {
                let i = IntentId(self.next_intent);
                self.next_intent += 1;
                i
            }
        };
        let ctx = match self.contexts.iter().position(|c| *c == space) {
            Some(i) => i,
            None => {
                self.contexts.push(space.clone());
                self.contexts.len() - 1
            }
        };

        let by_local = local_tasks(&plan);
        let order = topo_order(&by_local);
        let n_local = by_local.len();
        let mut to_global = vec![NodeId(u32::MAX); n_local];
        let mut occ: BTreeMap<SigKey, u32> = BTreeMap::new();
        let mut reused = 0usize;
        let mut fresh: BTreeSet<NodeId> = BTreeSet::new();
        for ln in order {
            let t = &by_local[&ln];
            let children = sorted_edges(
                t.downstream
                    .iter()
                    .map(|(n, d)| (to_global[n.0 as usize], *d)),
            );
            let mut key = SigKey {
                ctx,
                dev: t.dev,
                accept: t.accept.clone(),
                children: children.clone(),
                occurrence: 0,
            };
            // Nth structurally identical duplicate within this intent
            // claims the Nth matching global node.
            let o = occ.entry(key.clone()).or_insert(0);
            key.occurrence = *o;
            *o += 1;
            let g = match self.intern.get(&key) {
                Some(&g) => {
                    reused += 1;
                    self.nodes.get_mut(&g).unwrap().owners.insert(id.0);
                    g
                }
                None => {
                    let g = NodeId(self.next_node);
                    self.next_node += 1;
                    self.intern.insert(key.clone(), g);
                    self.nodes.insert(
                        g,
                        GlobalNode {
                            dev: t.dev,
                            accept: t.accept.clone(),
                            downstream: children,
                            upstream: BTreeMap::new(),
                            owners: BTreeSet::from([id.0]),
                            key,
                        },
                    );
                    fresh.insert(g);
                    g
                }
            };
            to_global[ln.0 as usize] = g;
        }

        // Contribute upstream edges; a grown edge set means the child
        // must be re-tasked so it announces along the new edge.
        let mut retask: BTreeSet<NodeId> = fresh.clone();
        for t in by_local.values() {
            let pg = to_global[t.node.0 as usize];
            let pdev = t.dev;
            for (cl, _) in &t.downstream {
                let cg = to_global[cl.0 as usize];
                let node = self.nodes.get_mut(&cg).expect("child exists");
                let edge = node.upstream.entry((pg, pdev)).or_default();
                if edge.is_empty() {
                    retask.insert(cg);
                }
                edge.insert(id.0);
            }
        }

        let mut delta = IntentDelta {
            space: Some(self.contexts[ctx].clone()),
            total_nodes: to_global.iter().collect::<BTreeSet<_>>().len(),
            reused_nodes: reused,
            ..IntentDelta::default()
        };
        for g in retask {
            let task = self.global_task(g);
            delta.changed.entry(task.dev).or_default().push(task);
        }
        self.intents.insert(
            id.0,
            InstalledIntent {
                id,
                name: name.to_string(),
                invariant,
                plan,
                to_global,
                ctx,
                degraded: false,
            },
        );
        Ok((id, delta))
    }

    /// Removes an intent: drops its ownership refs, removes nodes no
    /// surviving intent owns, shrinks upstream edge sets, and returns
    /// the delta a substrate must apply under an epoch bump.
    pub fn remove(&mut self, id: IntentId) -> Result<IntentDelta, PlanError> {
        if id == IntentId::BASE {
            return Err(PlanError::Unsupported(
                "the base intent anchors the session and cannot be removed".into(),
            ));
        }
        // A parked install can be cancelled before it ever lands: the
        // pending-queue entry is drained and no device hosts anything
        // for it, so the delta is empty (no `Unsupported` mid-fence).
        if self.parked.remove(&id.0).is_some() {
            return Ok(IntentDelta::default());
        }
        let Some(intent) = self.intents.remove(&id.0) else {
            return Err(PlanError::Unsupported(format!(
                "intent {id} is not installed"
            )));
        };
        if intent.degraded {
            // A degraded intent owns no nodes in the current global
            // table (its slice was not re-planned in); dropping the
            // record is the whole removal.
            return Ok(IntentDelta::default());
        }
        let by_local = local_tasks(&intent.plan);
        // Withdraw this intent's upstream-edge contributions.
        let mut shrunk: BTreeSet<NodeId> = BTreeSet::new();
        for t in by_local.values() {
            let pg = intent.to_global[t.node.0 as usize];
            let pdev = t.dev;
            for (cl, _) in &t.downstream {
                let cg = intent.to_global[cl.0 as usize];
                let node = self.nodes.get_mut(&cg).expect("child exists");
                if let Some(refs) = node.upstream.get_mut(&(pg, pdev)) {
                    refs.remove(&id.0);
                    if refs.is_empty() {
                        node.upstream.remove(&(pg, pdev));
                        shrunk.insert(cg);
                    }
                }
            }
        }
        // Drop ownership; sweep nodes nobody owns anymore.
        let mut delta = IntentDelta::default();
        for g in intent.global_nodes() {
            let node = self.nodes.get_mut(&g).expect("owned node exists");
            node.owners.remove(&id.0);
            if node.owners.is_empty() {
                let node = self.nodes.remove(&g).unwrap();
                self.intern.remove(&node.key);
                shrunk.remove(&g);
                delta.removed.entry(node.dev).or_default().push(g);
            }
        }
        for g in shrunk {
            let task = self.global_task(g);
            delta.changed.entry(task.dev).or_default().push(task);
        }
        delta.total_nodes = intent.to_global.iter().collect::<BTreeSet<_>>().len();
        delta.reused_nodes =
            delta.total_nodes - delta.removed.values().map(Vec::len).sum::<usize>();
        Ok(delta)
    }

    /// The current [`NodeTask`] of one global node (global ids, sorted
    /// edges).
    fn global_task(&self, g: NodeId) -> NodeTask {
        let node = &self.nodes[&g];
        NodeTask {
            node: g,
            dev: node.dev,
            downstream: node.downstream.clone(),
            upstream: node.upstream.keys().copied().collect(),
            accept: node.accept.clone(),
        }
    }

    /// Live intents, in id order.
    pub fn live(&self) -> impl Iterator<Item = &InstalledIntent> {
        self.intents.values()
    }

    /// One live intent.
    pub fn get(&self, id: IntentId) -> Option<&InstalledIntent> {
        self.intents.get(&id.0)
    }

    /// Number of live intents.
    pub fn len(&self) -> usize {
        self.intents.len()
    }

    /// Whether no intent is installed.
    pub fn is_empty(&self) -> bool {
        self.intents.is_empty()
    }

    /// Whether the base intent (id 0) is the *only* live intent.
    /// Topology churn no longer requires this
    /// ([`replan_all_for_churn`](Self::replan_all_for_churn) re-plans
    /// every live slice); it remains the fast-path predicate for
    /// whole-plan shortcuts that skip per-intent accounting.
    pub fn only_base(&self) -> bool {
        self.intents.len() == 1 && self.intents.contains_key(&0)
    }

    /// Number of distinct global nodes currently installed.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every installed node's current task (global ids) — the union
    /// task table across intents, deduplicated.
    pub fn global_tasks(&self) -> Vec<NodeTask> {
        self.nodes.keys().map(|g| self.global_task(*g)).collect()
    }

    /// The devices currently hosting at least one node.
    pub fn devices(&self) -> BTreeSet<DeviceId> {
        self.nodes.values().map(|n| n.dev).collect()
    }

    /// The id the next `install(None, ..)` will allocate (ids are
    /// never reused, so this only ever grows).
    pub fn next_intent_id(&self) -> u64 {
        self.next_intent
    }

    /// How many intents own the given global node (dedup evidence).
    pub fn owner_count(&self, g: NodeId) -> usize {
        self.nodes.get(&g).map_or(0, |n| n.owners.len())
    }

    /// Parks an install that raced a topology fence: allocates the
    /// intent's id now (so replicas agree on ids) and queues it for
    /// re-planning on the next fence (see [`PendingIntent`]). An
    /// explicit id is for deterministic replay and must be unused.
    pub fn park(
        &mut self,
        id: Option<IntentId>,
        name: &str,
        invariant: Invariant,
    ) -> Result<IntentId, PlanError> {
        let id = match id {
            Some(i) => {
                if self.intents.contains_key(&i.0) || self.parked.contains_key(&i.0) {
                    return Err(PlanError::Unsupported(format!(
                        "intent id {i} is already installed"
                    )));
                }
                self.next_intent = self.next_intent.max(i.0 + 1);
                i
            }
            None => {
                let i = IntentId(self.next_intent);
                self.next_intent += 1;
                i
            }
        };
        self.parked.insert(
            id.0,
            PendingIntent {
                id,
                name: name.to_string(),
                invariant,
                retries: 0,
            },
        );
        Ok(id)
    }

    /// Parked installs, in id order.
    pub fn parked(&self) -> impl Iterator<Item = &PendingIntent> {
        self.parked.values()
    }

    /// Number of parked installs.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Whether this id is waiting in the pending queue.
    pub fn is_parked(&self, id: IntentId) -> bool {
        self.parked.contains_key(&id.0)
    }

    /// Live intents currently degraded (see
    /// [`InstalledIntent::is_degraded`]), in id order.
    pub fn degraded_ids(&self) -> Vec<IntentId> {
        self.intents
            .values()
            .filter(|i| i.degraded)
            .map(|i| i.id)
            .collect()
    }

    /// Number of live-but-degraded intents.
    pub fn degraded_count(&self) -> usize {
        self.intents.values().filter(|i| i.degraded).count()
    }

    /// The base intent's counting plan (`None` only for an empty
    /// store). After a churn fence this is the post-churn base plan.
    pub fn base_plan(&self) -> Option<&CountingPlan> {
        self.intents.get(&0).map(|i| &i.plan)
    }

    /// The packet space of one interning context (see
    /// [`ReplanTaskGroup::ctx`]).
    pub fn context_space(&self, ctx: usize) -> &PacketSpace {
        &self.contexts[ctx]
    }

    /// Re-plans **every** live intent slice against the post-churn
    /// topology under one shared fence, rebuilds the global node table
    /// with stable ids for unchanged cones, retries parked installs,
    /// and returns the per-device diff plus the intent lifecycle
    /// transitions.
    ///
    /// * The **base** intent failing to plan rejects the whole event
    ///   (`Err`, store untouched) — the session keeps verifying the
    ///   old epoch, exactly like the single-intent re-planner.
    /// * Any **other** intent failing degrades that intent only: it
    ///   stays installed but owns no nodes and is skipped by
    ///   evaluation until a later fence revives it.
    /// * **Parked** installs are re-planned; successes land as live
    ///   intents (`unparked`), failures burn one retry, and at
    ///   [`MAX_INTENT_RETRIES`] they are dropped (`rejected`).
    ///
    /// Id stability: a rebuilt node whose hash-consing key (context,
    /// device, accept vector, global downstream cone) matches a
    /// pre-churn node keeps that node's id. By bottom-up induction the
    /// whole unchanged cone keeps its exact ids *and* tasks, so it
    /// appears in neither `changed` nor `removed` — unaffected slices
    /// ship zero tasks and only re-announce under the new epoch.
    ///
    /// `taskable` restricts which devices plans may task (substrates
    /// with a fixed thread-per-device set pass their roster; lazily
    /// building substrates pass `None`). A base plan tasking an
    /// unlisted device is an error; any other intent degrades.
    pub fn replan_all_for_churn(
        &mut self,
        base: &Topology,
        base_inv: Option<&Invariant>,
        churn: &ChurnState,
        taskable: Option<&BTreeSet<DeviceId>>,
    ) -> Result<StoreReplan, PlanError> {
        let topology = churn.apply_to(base);

        // Phase 1: plan every live intent (degraded ones included, so
        // recovery revives them). Nothing is committed until the base
        // plan is known good.
        let mut new_plans: BTreeMap<u64, CountingPlan> = BTreeMap::new();
        let mut degraded: Vec<(IntentId, String)> = Vec::new();
        for intent in self.intents.values() {
            let inv = match intent.invariant.as_ref() {
                Some(inv) => inv,
                None if intent.id == IntentId::BASE => match base_inv {
                    Some(inv) => inv,
                    None => {
                        return Err(PlanError::Unsupported(
                            "base intent has no invariant to re-plan under churn".into(),
                        ))
                    }
                },
                None => {
                    degraded.push((
                        intent.id,
                        "no invariant recorded; cannot re-plan".to_string(),
                    ));
                    continue;
                }
            };
            match plan_intent_on(&topology, inv, churn, taskable) {
                Ok(cp) => {
                    new_plans.insert(intent.id.0, cp);
                }
                Err(e) if intent.id == IntentId::BASE => return Err(e),
                Err(e) => degraded.push((intent.id, e.to_string())),
            }
        }

        // Phase 2: retry parked installs against the new topology.
        let mut unpark_plans: Vec<(PendingIntent, CountingPlan)> = Vec::new();
        let mut rejected: Vec<(IntentId, String)> = Vec::new();
        let mut still_parked: BTreeMap<u64, PendingIntent> = BTreeMap::new();
        for (pid, mut p) in std::mem::take(&mut self.parked) {
            let attempt = plan_intent_on(&topology, &p.invariant, churn, taskable).and_then(|cp| {
                let profile = IntentProfile::of(&cp);
                match self.profile {
                    Some(pr) if pr != profile => Err(PlanError::Unsupported(format!(
                        "intent {:?} has counting profile {profile:?}, \
                         but this session runs {pr:?}",
                        p.name
                    ))),
                    _ => Ok(cp),
                }
            });
            match attempt {
                Ok(cp) => unpark_plans.push((p, cp)),
                Err(e) => {
                    p.retries += 1;
                    if p.retries >= MAX_INTENT_RETRIES {
                        rejected.push((
                            p.id,
                            format!(
                                "parked intent exhausted {MAX_INTENT_RETRIES} \
                                 re-plan attempts; last error: {e}"
                            ),
                        ));
                    } else {
                        still_parked.insert(pid, p);
                    }
                }
            }
        }
        self.parked = still_parked;

        // Phase 3: snapshot the old table and rebuild from scratch,
        // claiming old ids wherever the hash-consing key survives.
        let old_tasks: BTreeMap<NodeId, NodeTask> = self
            .nodes
            .keys()
            .map(|g| (*g, self.global_task(*g)))
            .collect();
        let old_intern = std::mem::take(&mut self.intern);
        self.nodes.clear();

        let degraded_now: BTreeSet<u64> = degraded.iter().map(|(i, _)| i.0).collect();
        let mut revived: Vec<IntentId> = Vec::new();
        let ids: Vec<u64> = self.intents.keys().copied().collect();
        for id in ids {
            if degraded_now.contains(&id) {
                self.intents.get_mut(&id).unwrap().degraded = true;
                continue;
            }
            let cp = new_plans.remove(&id).expect("planned in phase 1");
            let ctx = self.intents[&id].ctx;
            let to_global = self.rebuild_intern(id, &cp, ctx, &old_intern);
            let it = self.intents.get_mut(&id).unwrap();
            it.plan = cp;
            it.to_global = to_global;
            if it.degraded {
                it.degraded = false;
                revived.push(IntentId(id));
            }
        }
        let mut unparked: Vec<IntentId> = Vec::new();
        for (p, cp) in unpark_plans {
            if self.profile.is_none() {
                self.profile = Some(IntentProfile::of(&cp));
            }
            let space = p.invariant.packet_space.clone();
            let ctx = match self.contexts.iter().position(|c| *c == space) {
                Some(i) => i,
                None => {
                    self.contexts.push(space);
                    self.contexts.len() - 1
                }
            };
            let to_global = self.rebuild_intern(p.id.0, &cp, ctx, &old_intern);
            self.intents.insert(
                p.id.0,
                InstalledIntent {
                    id: p.id,
                    name: p.name,
                    invariant: Some(p.invariant),
                    plan: cp,
                    to_global,
                    ctx,
                    degraded: false,
                },
            );
            unparked.push(p.id);
        }

        // Phase 4: diff old table vs new. Down devices' old nodes are
        // unreachable (never removed — the planner tasks them with
        // nothing and a later DeviceUp wipes the verifier anyway).
        let mut removed: BTreeMap<DeviceId, Vec<NodeId>> = BTreeMap::new();
        let mut unreachable: Vec<(NodeId, DeviceId)> = Vec::new();
        for (g, old) in &old_tasks {
            if churn.is_down(old.dev) {
                unreachable.push((*g, old.dev));
            } else if !self.nodes.contains_key(g) {
                removed.entry(old.dev).or_default().push(*g);
            }
        }
        for list in removed.values_mut() {
            list.sort();
        }
        let mut reused_nodes = 0usize;
        let mut retask: BTreeMap<DeviceId, Vec<NodeTask>> = BTreeMap::new();
        let mut fresh: BTreeMap<DeviceId, BTreeMap<usize, Vec<NodeTask>>> = BTreeMap::new();
        for (g, node) in &self.nodes {
            let task = self.global_task(*g);
            match old_tasks.get(g) {
                Some(old) if *old == task => reused_nodes += 1,
                Some(_) => retask.entry(node.dev).or_default().push(task),
                None => fresh
                    .entry(node.dev)
                    .or_default()
                    .entry(node.key.ctx)
                    .or_default()
                    .push(task),
            }
        }
        let mut changed: BTreeMap<DeviceId, Vec<ReplanTaskGroup>> = BTreeMap::new();
        for (dev, mut tasks) in retask {
            tasks.sort_by_key(|t| t.node);
            changed
                .entry(dev)
                .or_default()
                .push(ReplanTaskGroup { ctx: None, tasks });
        }
        for (dev, by_ctx) in fresh {
            for (ctx, mut tasks) in by_ctx {
                tasks.sort_by_key(|t| t.node);
                changed.entry(dev).or_default().push(ReplanTaskGroup {
                    ctx: Some(ctx),
                    tasks,
                });
            }
        }
        Ok(StoreReplan {
            total_nodes: self.nodes.len(),
            topology,
            changed,
            removed,
            unreachable,
            degraded,
            revived,
            unparked,
            rejected,
            reused_nodes,
        })
    }

    /// Interns one plan into the (rebuilding) global table, claiming
    /// pre-churn ids via `old_intern` when the key is unchanged (see
    /// [`IntentStore::replan_all_for_churn`]). Same interning
    /// discipline as [`IntentStore::install`].
    fn rebuild_intern(
        &mut self,
        id: u64,
        plan: &CountingPlan,
        ctx: usize,
        old_intern: &BTreeMap<SigKey, NodeId>,
    ) -> Vec<NodeId> {
        let by_local = local_tasks(plan);
        let order = topo_order(&by_local);
        let mut to_global = vec![NodeId(u32::MAX); by_local.len()];
        let mut occ: BTreeMap<SigKey, u32> = BTreeMap::new();
        for ln in order {
            let t = &by_local[&ln];
            let children = sorted_edges(
                t.downstream
                    .iter()
                    .map(|(n, d)| (to_global[n.0 as usize], *d)),
            );
            let mut key = SigKey {
                ctx,
                dev: t.dev,
                accept: t.accept.clone(),
                children: children.clone(),
                occurrence: 0,
            };
            let o = occ.entry(key.clone()).or_insert(0);
            key.occurrence = *o;
            *o += 1;
            let g = match self.intern.get(&key) {
                Some(&g) => {
                    self.nodes.get_mut(&g).unwrap().owners.insert(id);
                    g
                }
                None => {
                    let g = old_intern.get(&key).copied().unwrap_or_else(|| {
                        let g = NodeId(self.next_node);
                        self.next_node += 1;
                        g
                    });
                    self.intern.insert(key.clone(), g);
                    self.nodes.insert(
                        g,
                        GlobalNode {
                            dev: t.dev,
                            accept: t.accept.clone(),
                            downstream: children,
                            upstream: BTreeMap::new(),
                            owners: BTreeSet::from([id]),
                            key,
                        },
                    );
                    g
                }
            };
            to_global[ln.0 as usize] = g;
        }
        for t in by_local.values() {
            let pg = to_global[t.node.0 as usize];
            for (cl, _) in &t.downstream {
                let cg = to_global[cl.0 as usize];
                self.nodes
                    .get_mut(&cg)
                    .expect("child exists")
                    .upstream
                    .entry((pg, t.dev))
                    .or_default()
                    .insert(id);
            }
        }
        to_global
    }
}

/// Plans one invariant against a (post-churn) topology, returning its
/// counting plan. Rejects plans that task a quarantined device (the
/// device is down — nothing can run there; e.g. an intent whose
/// ingress is the isolated device still "plans" onto it) and, with
/// `taskable`, plans that task a device outside the roster (fixed
/// thread-per-device substrates cannot grow verifiers after spawn).
/// Substrates use this for installs racing an active fence: an `Err`
/// here means "park it", not "reject it".
pub fn plan_intent_on(
    topology: &Topology,
    inv: &Invariant,
    churn: &ChurnState,
    taskable: Option<&BTreeSet<DeviceId>>,
) -> Result<CountingPlan, PlanError> {
    let plan = Planner::new(topology).plan(inv)?;
    let cp = plan
        .counting()
        .ok_or_else(|| PlanError::Unsupported("churn re-planning needs a counting plan".into()))?
        .clone();
    if cp.tasks.is_empty() {
        // No DPVNet node materialized (e.g. the ingress is isolated):
        // there is nothing to count anywhere, which would report the
        // invariant as vacuously holding. Degrade instead.
        return Err(PlanError::Unsupported(
            "slice has no DPVNet nodes on the current topology".into(),
        ));
    }
    for t in &cp.tasks {
        if churn.is_down(t.dev) {
            return Err(PlanError::Unsupported(format!(
                "slice tasks quarantined device d{}",
                t.dev.0
            )));
        }
        if let Some(ok) = taskable {
            if !ok.contains(&t.dev) {
                return Err(PlanError::Unsupported(format!(
                    "plan tasks device d{} but this substrate has no verifier \
                     for it (spawn with all_devices)",
                    t.dev.0
                )));
            }
        }
    }
    Ok(cp)
}

/// Tasks of one plan keyed by their local node id.
fn local_tasks(plan: &CountingPlan) -> BTreeMap<NodeId, &NodeTask> {
    plan.tasks.iter().map(|t| (t.node, t)).collect()
}

/// Children-first deterministic order: iterative DFS post-order from
/// every node in ascending id, following downstream edges.
fn topo_order(by_local: &BTreeMap<NodeId, &NodeTask>) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(by_local.len());
    let mut done: BTreeSet<NodeId> = BTreeSet::new();
    for &root in by_local.keys() {
        if done.contains(&root) {
            continue;
        }
        // (node, next child index) stack.
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some((n, i)) = stack.pop() {
            let t = &by_local[&n];
            if let Some((c, _)) = t.downstream.get(i) {
                stack.push((n, i + 1));
                if !done.contains(c) && by_local.contains_key(c) {
                    stack.push((*c, 0));
                }
            } else if done.insert(n) {
                out.push(n);
            }
        }
    }
    out
}

fn sorted_edges(it: impl Iterator<Item = (NodeId, DeviceId)>) -> Vec<(NodeId, DeviceId)> {
    let mut v: Vec<(NodeId, DeviceId)> = it.collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::CountExpr;
    use crate::planner::Planner;
    use crate::spec::{Behavior, PacketSpace, PathExpr};
    use tulkun_netmodel::fib::{Action, MatchSpec, Rule};
    use tulkun_netmodel::network::Network;
    use tulkun_netmodel::topology::Topology;
    use tulkun_netmodel::IpPrefix;

    fn pfx(s: &str) -> IpPrefix {
        s.parse().unwrap()
    }

    /// The Figure 2a network (S → A → {B, W} → D).
    fn fig2a_network() -> Network {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t.add_external_prefix(d, pfx("10.0.0.0/23"));
        let mut net = Network::new(t);
        net.fib_mut(s).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(a),
        });
        net.fib_mut(a).insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd_all([b, w]),
        });
        net.fib_mut(b).insert(Rule {
            priority: 10,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(d),
        });
        net.fib_mut(w).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::fwd(d),
        });
        net.fib_mut(d).insert(Rule {
            priority: 23,
            matches: MatchSpec::dst(pfx("10.0.0.0/23")),
            action: Action::deliver(),
        });
        net
    }

    fn plan_for(net: &Network, expr: &str) -> (Invariant, CountingPlan) {
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress([expr.split_whitespace().next().unwrap()])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse(expr).unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&net.topology).plan(&inv).unwrap();
        let cp = plan.counting().unwrap().clone();
        (inv, cp)
    }

    /// Overlapping intents share tasks; removal keeps shared tasks
    /// alive (the dedup-refcount contract of the intent store).
    #[test]
    fn dedup_refcounts_shared_tasks() {
        let net = fig2a_network();
        let (inv_a, cp_a) = plan_for(&net, "S .* D");
        let (inv_b, cp_b) = plan_for(&net, "A .* D");
        let mut store = IntentStore::with_base(
            cp_a.clone(),
            inv_a.packet_space.clone(),
            Some(inv_a.clone()),
        );
        let before = store.node_count();
        let (id_b, delta_b) = store
            .install(
                None,
                "b",
                Some(inv_b.clone()),
                cp_b.clone(),
                inv_b.packet_space.clone(),
            )
            .unwrap();
        assert!(
            delta_b.reused_nodes > 0,
            "S.*D and A.*D share the suffix cone toward D: {delta_b:?}"
        );
        assert_eq!(
            store.node_count(),
            before + delta_b.total_nodes - delta_b.reused_nodes
        );
        // A shared node is owned by both intents...
        let b = store.get(id_b).unwrap();
        let shared: Vec<NodeId> = b
            .global_nodes()
            .into_iter()
            .filter(|g| store.owner_count(*g) == 2)
            .collect();
        assert_eq!(shared.len(), delta_b.reused_nodes);
        // ...and removing one intent keeps every shared node alive.
        let delta_rm = store.remove(id_b).unwrap();
        for g in &shared {
            assert_eq!(store.owner_count(*g), 1, "shared node {g:?} must survive");
        }
        let removed: usize = delta_rm.removed.values().map(Vec::len).sum();
        assert_eq!(removed, delta_b.total_nodes - delta_b.reused_nodes);
        assert_eq!(store.node_count(), before);
        assert!(store.only_base());
    }

    /// Installing the same invariant twice is a full interning hit.
    #[test]
    fn duplicate_intent_is_fully_shared() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* W .* D");
        let mut store =
            IntentStore::with_base(cp.clone(), inv.packet_space.clone(), Some(inv.clone()));
        let (id, delta) = store
            .install(
                None,
                "dup",
                Some(inv.clone()),
                cp.clone(),
                inv.packet_space.clone(),
            )
            .unwrap();
        assert_eq!(delta.total_nodes, delta.reused_nodes, "{delta:?}");
        assert!(delta.removed.is_empty());
        let before = store.node_count();
        let delta_rm = store.remove(id).unwrap();
        assert!(delta_rm.removed.is_empty(), "{delta_rm:?}");
        assert_eq!(store.node_count(), before);
    }

    /// Intents with a different packet space never merge nodes.
    #[test]
    fn contexts_keep_packet_spaces_apart() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* D");
        let other = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/24"))
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let ocp = Planner::new(&net.topology)
            .plan(&other)
            .unwrap()
            .counting()
            .unwrap()
            .clone();
        let mut store = IntentStore::with_base(cp, inv.packet_space.clone(), Some(inv.clone()));
        let (_, delta) = store
            .install(
                None,
                "other-space",
                Some(other.clone()),
                ocp,
                other.packet_space.clone(),
            )
            .unwrap();
        assert_eq!(delta.reused_nodes, 0, "{delta:?}");
    }

    /// A mismatched counting profile is rejected, not mis-counted.
    #[test]
    fn profile_mismatch_rejected() {
        let net = fig2a_network();
        let (inv, cp) = plan_for(&net, "S .* D");
        let covered = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::covered(
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let ccp = Planner::new(&net.topology)
            .plan(&covered)
            .unwrap()
            .counting()
            .unwrap()
            .clone();
        let mut store = IntentStore::with_base(cp, inv.packet_space.clone(), Some(inv));
        if IntentProfile::of(&store.get(IntentId(0)).unwrap().plan) != IntentProfile::of(&ccp) {
            let err = store.install(
                None,
                "covered",
                Some(covered.clone()),
                ccp,
                covered.packet_space.clone(),
            );
            assert!(err.is_err());
        }
    }

    use crate::churn::{ChurnState, TopologyEvent};

    fn two_intent_store(net: &Network) -> (IntentStore, IntentId) {
        let (inv_a, cp_a) = plan_for(net, "S .* D");
        let (inv_b, cp_b) = plan_for(net, "A .* D");
        let mut store =
            IntentStore::with_base(cp_a, inv_a.packet_space.clone(), Some(inv_a.clone()));
        let (id_b, _) = store
            .install(
                None,
                "b",
                Some(inv_b.clone()),
                cp_b,
                inv_b.packet_space.clone(),
            )
            .unwrap();
        (store, id_b)
    }

    /// A fence with no effective topology change must rebuild the
    /// table onto the exact same ids and ship zero tasks — the "my
    /// slice is unaffected" guarantee.
    #[test]
    fn quiet_replan_is_idempotent() {
        let net = fig2a_network();
        let (mut store, id_b) = two_intent_store(&net);
        let before_base = store.get(IntentId::BASE).unwrap().to_global.clone();
        let before_b = store.get(id_b).unwrap().to_global.clone();
        let nodes_before = store.node_count();
        let r = store
            .replan_all_for_churn(&net.topology, None, &ChurnState::new(), None)
            .unwrap();
        assert!(
            r.changed.is_empty(),
            "unchanged plan must diff empty: {r:?}"
        );
        assert!(r.removed.is_empty());
        assert!(r.unreachable.is_empty() && r.degraded.is_empty());
        assert_eq!(r.reused_nodes, r.total_nodes);
        assert_eq!(store.node_count(), nodes_before);
        assert_eq!(store.get(IntentId::BASE).unwrap().to_global, before_base);
        assert_eq!(store.get(id_b).unwrap().to_global, before_b);
    }

    /// An intent whose ingress goes down degrades (stays installed,
    /// owns no nodes) instead of poisoning the store, and revives on
    /// recovery.
    #[test]
    fn unplannable_intent_degrades_then_revives() {
        let net = fig2a_network();
        let (inv_s, cp_s) = plan_for(&net, "S .* D");
        let (inv_b, cp_b) = plan_for(&net, "B .* D");
        let mut store =
            IntentStore::with_base(cp_s, inv_s.packet_space.clone(), Some(inv_s.clone()));
        let (id_b, _) = store
            .install(
                None,
                "from-b",
                Some(inv_b.clone()),
                cp_b,
                inv_b.packet_space.clone(),
            )
            .unwrap();
        let b = net.topology.expect_device("B");
        let mut churn = ChurnState::new();
        churn.apply(&TopologyEvent::DeviceDown(b));
        let r = store
            .replan_all_for_churn(&net.topology, None, &churn, None)
            .unwrap();
        assert_eq!(r.degraded.len(), 1, "{r:?}");
        assert_eq!(r.degraded[0].0, id_b);
        assert!(store.get(id_b).unwrap().is_degraded());
        assert_eq!(store.degraded_count(), 1);
        // The degraded slice owns nothing in the rebuilt table.
        assert!(store.nodes.values().all(|n| !n.owners.contains(&id_b.0)));
        // The base intent still verifies (S→A→W→D survives B's loss).
        assert!(!store.get(IntentId::BASE).unwrap().is_degraded());
        // Recovery re-plans the degraded slice back in.
        churn.apply(&TopologyEvent::DeviceUp(b));
        let r = store
            .replan_all_for_churn(&net.topology, None, &churn, None)
            .unwrap();
        assert_eq!(r.revived, vec![id_b], "{r:?}");
        assert!(!store.get(id_b).unwrap().is_degraded());
        assert_eq!(store.degraded_count(), 0);
    }

    /// Parked installs land on the first fence that makes them
    /// plannable; hopeless ones are rejected after the retry cap.
    #[test]
    fn parked_intent_unparks_or_rejects() {
        let net = fig2a_network();
        let (inv_s, cp_s) = plan_for(&net, "S .* D");
        let mut store =
            IntentStore::with_base(cp_s, inv_s.packet_space.clone(), Some(inv_s.clone()));
        let (inv_a, _) = plan_for(&net, "A .* D");
        let id = store.park(None, "from-a", inv_a).unwrap();
        assert!(store.is_parked(id));
        let r = store
            .replan_all_for_churn(&net.topology, None, &ChurnState::new(), None)
            .unwrap();
        assert_eq!(r.unparked, vec![id], "{r:?}");
        assert!(!store.is_parked(id));
        assert!(!store.get(id).unwrap().is_degraded());
        // A never-plannable park burns its retries and is rejected.
        let (inv_b, _) = plan_for(&net, "B .* D");
        let hopeless = store.park(None, "from-b", inv_b).unwrap();
        let b = net.topology.expect_device("B");
        let mut churn = ChurnState::new();
        churn.apply(&TopologyEvent::DeviceDown(b));
        for round in 1..=MAX_INTENT_RETRIES {
            let r = store
                .replan_all_for_churn(&net.topology, None, &churn, None)
                .unwrap();
            if round < MAX_INTENT_RETRIES {
                assert!(store.is_parked(hopeless), "round {round}: {r:?}");
                assert!(r.rejected.is_empty());
            } else {
                assert!(!store.is_parked(hopeless));
                assert_eq!(r.rejected.len(), 1);
                assert_eq!(r.rejected[0].0, hopeless);
            }
        }
        assert!(store.get(hopeless).is_none(), "rejected, never installed");
    }

    /// Satellite regression: `remove` during an in-flight fence drains
    /// the pending-queue entry instead of returning `Unsupported`.
    #[test]
    fn remove_drains_parked_entry() {
        let net = fig2a_network();
        let (inv_s, cp_s) = plan_for(&net, "S .* D");
        let mut store =
            IntentStore::with_base(cp_s, inv_s.packet_space.clone(), Some(inv_s.clone()));
        let (inv_a, _) = plan_for(&net, "A .* D");
        let id = store.park(None, "from-a", inv_a).unwrap();
        let delta = store.remove(id).expect("drain, not Unsupported");
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
        assert_eq!(store.parked_count(), 0);
        // The drained park never resurrects on the next fence.
        let r = store
            .replan_all_for_churn(&net.topology, None, &ChurnState::new(), None)
            .unwrap();
        assert!(r.unparked.is_empty());
        assert!(store.get(id).is_none());
    }

    /// Removing a degraded intent is a pure bookkeeping drop (it owns
    /// no nodes), and the store stays consistent afterwards.
    #[test]
    fn remove_degraded_intent_is_clean() {
        let net = fig2a_network();
        let (inv_s, cp_s) = plan_for(&net, "S .* D");
        let (inv_b, cp_b) = plan_for(&net, "B .* D");
        let mut store =
            IntentStore::with_base(cp_s, inv_s.packet_space.clone(), Some(inv_s.clone()));
        let (id_b, _) = store
            .install(
                None,
                "from-b",
                Some(inv_b.clone()),
                cp_b,
                inv_b.packet_space.clone(),
            )
            .unwrap();
        let b = net.topology.expect_device("B");
        let mut churn = ChurnState::new();
        churn.apply(&TopologyEvent::DeviceDown(b));
        store
            .replan_all_for_churn(&net.topology, None, &churn, None)
            .unwrap();
        assert!(store.get(id_b).unwrap().is_degraded());
        let delta = store.remove(id_b).unwrap();
        assert!(delta.changed.is_empty() && delta.removed.is_empty());
        assert!(store.get(id_b).is_none());
        store
            .replan_all_for_churn(&net.topology, None, &churn, None)
            .unwrap();
        assert!(store.only_base());
    }
}
