//! The verification planner (§4): compiles an invariant against a
//! topology into either distributed counting tasks on a DPVNet or
//! communication-free local contracts (`equal` behaviors).

use crate::count::{CountExpr, ReduceMode};
use crate::dpvnet::{DpvNet, DpvNetError, NodeId};
use crate::spec::{Behavior, FilterOp, Invariant, LengthBound, PathExpr};
use std::fmt;
use tulkun_automata::{Dfa, Regex};
use tulkun_netmodel::topology::{DeviceId, Topology};

/// The behavior formula compiled to indices into the plan's expression
/// list, evaluated per universe on the final outcome vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Count of expression `expr` satisfies `count`.
    Exist {
        /// Index into the plan's expression list.
        expr: usize,
        /// The count expression to satisfy.
        count: CountExpr,
    },
    /// No trace escapes the valid path set (the escape component is 0).
    Covered,
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Evaluates on one universe's outcome vector. With an escape
    /// component, it is the last element of `v`.
    pub fn eval(&self, v: &[u32], escape_idx: Option<usize>) -> bool {
        match self {
            Formula::Exist { expr, count } => count.satisfied(v[*expr]),
            Formula::Covered => v[escape_idx.expect("escape component missing")] == 0,
            Formula::Not(f) => !f.eval(v, escape_idx),
            Formula::And(a, b) => a.eval(v, escape_idx) && b.eval(v, escape_idx),
            Formula::Or(a, b) => a.eval(v, escape_idx) || b.eval(v, escape_idx),
        }
    }

    /// Is the formula a single positive `exist` (so Proposition 1
    /// reductions apply)?
    pub fn single_positive_exist(&self) -> Option<CountExpr> {
        match self {
            Formula::Exist { count, .. } => Some(*count),
            _ => None,
        }
    }
}

/// The counting task assigned to one DPVNet node, shipped to its device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTask {
    /// The DPVNet node.
    pub node: NodeId,
    /// The device it runs on.
    pub dev: DeviceId,
    /// Downstream neighbors `(node, device)` whose results feed this task.
    pub downstream: Vec<(NodeId, DeviceId)>,
    /// Upstream neighbors to send results to.
    pub upstream: Vec<(NodeId, DeviceId)>,
    /// Per path expression: valid paths end here.
    pub accept: Vec<bool>,
}

/// A distributed-counting plan.
#[derive(Debug, Clone)]
pub struct CountingPlan {
    /// The DAG of valid paths.
    pub dpvnet: DpvNet,
    /// The invariant's path expressions (outcome-vector components).
    pub exprs: Vec<PathExpr>,
    /// The behavior formula over those components.
    pub formula: Formula,
    /// Whether an escape component is tracked (any `covered` in the
    /// behavior): outcome vectors get one extra trailing element counting
    /// traces that leave the valid path set.
    pub track_escapes: bool,
    /// Minimal counting information nodes propagate (Proposition 1).
    pub reduce: ReduceMode,
    /// Per DPVNet node (indexed by `NodeId`).
    pub tasks: Vec<NodeTask>,
}

impl CountingPlan {
    /// Vector dimension of outcome vectors (expressions + escape).
    pub fn vec_dim(&self) -> usize {
        self.exprs.len() + usize::from(self.track_escapes)
    }

    /// Index of the escape component, if tracked.
    pub fn escape_idx(&self) -> Option<usize> {
        self.track_escapes.then_some(self.exprs.len())
    }
}

/// One local contract (the `equal` operator, §4.2): the device of `node`
/// must forward the packet space to exactly `required_next_hops`, and
/// deliver externally iff `must_deliver`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalContract {
    /// The DPVNet node of the contract.
    pub node: NodeId,
    /// The device that must honor it.
    pub dev: DeviceId,
    /// Exactly these devices must be in the forwarding group.
    pub required_next_hops: Vec<DeviceId>,
    /// Must the device deliver externally (destination nodes)?
    pub must_deliver: bool,
}

/// A local-contract plan (communication-free; the minimal counting
/// information of every node is the empty set).
#[derive(Debug, Clone)]
pub struct LocalPlan {
    /// The valid-path DAG the contracts were derived from.
    pub dpvnet: DpvNet,
    /// One contract per (node, device).
    pub contracts: Vec<LocalContract>,
}

/// A compiled plan.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Distributed counting over a DPVNet.
    Counting(CountingPlan),
    /// Communication-free local contracts (`equal`).
    Local(LocalPlan),
}

/// A plan for one invariant.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The invariant being verified.
    pub invariant: Invariant,
    /// How it is verified.
    pub kind: PlanKind,
}

impl Plan {
    /// The counting plan, if this is one.
    pub fn counting(&self) -> Option<&CountingPlan> {
        match &self.kind {
            PlanKind::Counting(c) => Some(c),
            PlanKind::Local(_) => None,
        }
    }

    /// The local plan, if this is one.
    pub fn local(&self) -> Option<&LocalPlan> {
        match &self.kind {
            PlanKind::Local(l) => Some(l),
            PlanKind::Counting(_) => None,
        }
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A referenced device does not exist in the topology.
    UnknownDevice(String),
    /// DPVNet construction failed.
    DpvNet(DpvNetError),
    /// §3 convenience check: the packet space's destination prefixes are
    /// not announced by any destination device of the path expressions.
    InconsistentDestination {
        /// The packet-space prefix nobody announces.
        prefix: String,
        /// The destination devices checked.
        destinations: Vec<String>,
    },
    /// The invariant shape is not supported by this planner.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownDevice(d) => write!(f, "unknown device {d:?}"),
            PlanError::DpvNet(e) => write!(f, "{e}"),
            PlanError::InconsistentDestination {
                prefix,
                destinations,
            } => write!(
                f,
                "packet space {prefix} is not announced at any path destination {destinations:?}"
            ),
            PlanError::Unsupported(s) => write!(f, "unsupported invariant: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<DpvNetError> for PlanError {
    fn from(e: DpvNetError) -> Self {
        PlanError::DpvNet(e)
    }
}

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Path-enumeration safety cap.
    pub path_cap: usize,
    /// Use the `(device, slack)` fast path for `src .* dst (<= shortest+k)`
    /// reachability when the topology has at least this many devices.
    pub slack_fastpath_devices: usize,
    /// Skip the §3 destination-consistency check (useful when the
    /// topology carries no external-port map).
    pub skip_consistency_check: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            path_cap: crate::dpvnet::DEFAULT_PATH_CAP,
            slack_fastpath_devices: 200,
            skip_consistency_check: false,
        }
    }
}

/// The verification planner.
pub struct Planner<'a> {
    topo: &'a Topology,
    opts: PlannerOptions,
}

impl<'a> Planner<'a> {
    /// A planner over a topology with default options.
    pub fn new(topo: &'a Topology) -> Self {
        Planner {
            topo,
            opts: PlannerOptions::default(),
        }
    }

    /// A planner with explicit options.
    pub fn with_options(topo: &'a Topology, opts: PlannerOptions) -> Self {
        Planner { topo, opts }
    }

    /// Compiles an invariant into a plan.
    pub fn plan(&self, inv: &Invariant) -> Result<Plan, PlanError> {
        let ingress = self.resolve_devices(&inv.ingress)?;
        self.validate_regex_devices(inv)?;
        if !self.opts.skip_consistency_check {
            self.consistency_check(inv)?;
        }
        let kind = if inv.behavior.has_equal() {
            PlanKind::Local(self.plan_local(inv, &ingress)?)
        } else {
            PlanKind::Counting(self.plan_counting(inv, &ingress)?)
        };
        Ok(Plan {
            invariant: inv.clone(),
            kind,
        })
    }

    fn resolve_devices(&self, names: &[String]) -> Result<Vec<DeviceId>, PlanError> {
        names
            .iter()
            .map(|n| {
                self.topo
                    .device(n)
                    .ok_or_else(|| PlanError::UnknownDevice(n.clone()))
            })
            .collect()
    }

    fn validate_regex_devices(&self, inv: &Invariant) -> Result<(), PlanError> {
        for pe in inv.behavior.path_exprs() {
            for d in pe.regex.referenced_devices() {
                if self.topo.device(d).is_none() {
                    return Err(PlanError::UnknownDevice(d.to_string()));
                }
            }
        }
        Ok(())
    }

    /// §3 convenience check: destination IPs of the packet space must be
    /// reachable via external ports of the path expressions' destination
    /// devices. Only enforced when the topology has an external-port map.
    fn consistency_check(&self, inv: &Invariant) -> Result<(), PlanError> {
        let prefixes = inv.packet_space.positive_dst_prefixes();
        if prefixes.is_empty() || self.topo.external_map().next().is_none() {
            return Ok(());
        }
        let mut dests: Vec<DeviceId> = Vec::new();
        for pe in inv.behavior.path_exprs() {
            dests.extend(self.destination_devices(&pe.regex));
        }
        dests.sort();
        dests.dedup();
        if dests.is_empty() {
            return Ok(());
        }
        for p in prefixes {
            let announced = dests.iter().any(|d| {
                self.topo
                    .external_prefixes(*d)
                    .iter()
                    .any(|ep| ep.overlaps(&p))
            });
            if !announced {
                return Err(PlanError::InconsistentDestination {
                    prefix: p.to_string(),
                    destinations: dests
                        .iter()
                        .map(|d| self.topo.name(*d).to_string())
                        .collect(),
                });
            }
        }
        Ok(())
    }

    /// Devices on which a path matching `regex` can end: symbols `s`
    /// with `δ(q, s) ∈ F` for some state `q`.
    pub fn destination_devices(&self, regex: &Regex) -> Vec<DeviceId> {
        let alphabet: Vec<String> = self
            .topo
            .devices()
            .map(|d| self.topo.name(d).to_string())
            .collect();
        let dfa = Dfa::compile(regex, &alphabet);
        let mut out = Vec::new();
        for sym in 0..alphabet.len() {
            let ends = (0..dfa.num_states() as u32).any(|q| dfa.is_accepting(dfa.step(q, sym)));
            if ends {
                out.push(DeviceId(sym as u32));
            }
        }
        out
    }

    fn plan_counting(
        &self,
        inv: &Invariant,
        ingress: &[DeviceId],
    ) -> Result<CountingPlan, PlanError> {
        let exprs: Vec<PathExpr> = inv.behavior.path_exprs().into_iter().cloned().collect();
        let (formula, track_escapes) = compile_formula(&inv.behavior, &exprs)?;

        let dpvnet = match self.try_slack_fastpath(&exprs, ingress) {
            Some(net) => net,
            None => DpvNet::build_with_cap(self.topo, ingress, &exprs, self.opts.path_cap)?,
        };

        let reduce = if exprs.len() == 1 && !track_escapes {
            formula
                .single_positive_exist()
                .map(|c| c.reduce_mode())
                .unwrap_or(ReduceMode::None)
        } else {
            ReduceMode::None
        };

        let tasks = make_tasks(&dpvnet);
        Ok(CountingPlan {
            dpvnet,
            exprs,
            formula,
            track_escapes,
            reduce,
            tasks,
        })
    }

    /// Detects `src .* dst` with a single `<= shortest+k` filter on large
    /// topologies and builds the `(device, slack)` DAG instead of
    /// enumerating paths.
    fn try_slack_fastpath(&self, exprs: &[PathExpr], ingress: &[DeviceId]) -> Option<DpvNet> {
        if exprs.len() != 1
            || ingress.len() != 1
            || self.topo.num_devices() < self.opts.slack_fastpath_devices
        {
            return None;
        }
        let pe = &exprs[0];
        let (src, dst) = match_src_any_dst(&pe.regex)?;
        let k = match pe.filters.as_slice() {
            [f] if f.op == FilterOp::Le => match f.bound {
                LengthBound::ShortestPlus(k) if k >= 0 => k as u32,
                _ => return None,
            },
            _ => return None,
        };
        let src = self.topo.device(&src)?;
        let dst = self.topo.device(&dst)?;
        if ingress != [src] {
            return None;
        }
        Some(DpvNet::slack_dag(self.topo, src, dst, k))
    }

    fn plan_local(&self, inv: &Invariant, ingress: &[DeviceId]) -> Result<LocalPlan, PlanError> {
        let Behavior::Equal { path } = &inv.behavior else {
            return Err(PlanError::Unsupported(
                "`equal` must be the entire behavior".into(),
            ));
        };
        // Fast path: `src .* dst (== shortest)` or `.* dst (== shortest)`
        // → the shortest-path DAG.
        let fast_dst = match_src_any_dst(&path.regex)
            .map(|(_, dst)| dst)
            .or_else(|| match_any_dst(&path.regex));
        let dpvnet = match (fast_dst, path.filters.as_slice()) {
            (Some(dst), [f]) if f.op == FilterOp::Eq && f.bound == LengthBound::ShortestPlus(0) => {
                let dst = self
                    .topo
                    .device(&dst)
                    .ok_or(PlanError::UnknownDevice(dst))?;
                DpvNet::shortest_path_dag(self.topo, dst, &[])
            }
            _ => DpvNet::build_with_cap(
                self.topo,
                ingress,
                std::slice::from_ref(path),
                self.opts.path_cap,
            )?,
        };
        // Keep only nodes on ingress→destination paths.
        let keep = reachable_from_sources(&dpvnet, ingress);
        let mut contracts = Vec::new();
        for (id, n) in dpvnet.iter() {
            if !keep[id.idx()] {
                continue;
            }
            let mut req: Vec<DeviceId> = n.out.iter().map(|o| dpvnet.node(*o).dev).collect();
            req.sort();
            req.dedup();
            contracts.push(LocalContract {
                node: id,
                dev: n.dev,
                required_next_hops: req,
                must_deliver: n.is_accepting(),
            });
        }
        Ok(LocalPlan { dpvnet, contracts })
    }
}

fn reachable_from_sources(net: &DpvNet, ingress: &[DeviceId]) -> Vec<bool> {
    let mut keep = vec![false; net.num_nodes()];
    let mut stack: Vec<NodeId> = net
        .sources()
        .iter()
        .filter(|(d, _)| ingress.contains(d))
        .map(|(_, s)| *s)
        .collect();
    for &s in &stack {
        keep[s.idx()] = true;
    }
    while let Some(id) = stack.pop() {
        for &o in &net.node(id).out {
            if !keep[o.idx()] {
                keep[o.idx()] = true;
                stack.push(o);
            }
        }
    }
    keep
}

/// Builds per-node tasks from a DPVNet.
pub fn make_tasks(net: &DpvNet) -> Vec<NodeTask> {
    net.iter()
        .map(|(id, n)| NodeTask {
            node: id,
            dev: n.dev,
            downstream: n.out.iter().map(|&o| (o, net.node(o).dev)).collect(),
            upstream: n.inn.iter().map(|&i| (i, net.node(i).dev)).collect(),
            accept: n.accept.clone(),
        })
        .collect()
}

/// Does the regex have the shape `src .* dst`?
fn match_src_any_dst(re: &Regex) -> Option<(String, String)> {
    use tulkun_automata::ast::SymClass;
    // seq(dev(src), star(any), dev(dst)) associates as
    // Concat(Concat(src, star), dst).
    if let Regex::Concat(ab, c) = re {
        if let Regex::Concat(a, b) = &**ab {
            if let (
                Regex::Sym(SymClass::One(src)),
                Regex::Star(inner),
                Regex::Sym(SymClass::One(dst)),
            ) = (&**a, &**b, &**c)
            {
                if matches!(&**inner, Regex::Sym(SymClass::Any)) {
                    return Some((src.clone(), dst.clone()));
                }
            }
        }
    }
    None
}

/// Does the regex have the shape `.* dst` (any source)?
fn match_any_dst(re: &Regex) -> Option<String> {
    use tulkun_automata::ast::SymClass;
    if let Regex::Concat(a, b) = re {
        if let (Regex::Star(inner), Regex::Sym(SymClass::One(dst))) = (&**a, &**b) {
            if matches!(&**inner, Regex::Sym(SymClass::Any)) {
                return Some(dst.clone());
            }
        }
    }
    None
}

fn compile_formula(b: &Behavior, exprs: &[PathExpr]) -> Result<(Formula, bool), PlanError> {
    let mut track = false;
    let f = compile_rec(b, exprs, &mut track)?;
    Ok((f, track))
}

fn compile_rec(b: &Behavior, exprs: &[PathExpr], track: &mut bool) -> Result<Formula, PlanError> {
    Ok(match b {
        Behavior::Exist { count, path } => {
            let idx = exprs
                .iter()
                .position(|p| p == path)
                .expect("expr collected");
            Formula::Exist {
                expr: idx,
                count: *count,
            }
        }
        Behavior::Covered { .. } => {
            *track = true;
            Formula::Covered
        }
        Behavior::Equal { .. } => {
            return Err(PlanError::Unsupported(
                "`equal` inside a counting behavior".into(),
            ))
        }
        Behavior::Not(x) => Formula::Not(Box::new(compile_rec(x, exprs, track)?)),
        Behavior::And(a, c) => Formula::And(
            Box::new(compile_rec(a, exprs, track)?),
            Box::new(compile_rec(c, exprs, track)?),
        ),
        Behavior::Or(a, c) => Formula::Or(
            Box::new(compile_rec(a, exprs, track)?),
            Box::new(compile_rec(c, exprs, track)?),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{table1, PacketSpace};

    fn fig2a_topo() -> Topology {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let w = t.add_device("W");
        let d = t.add_device("D");
        t.add_link(s, a, 1000);
        t.add_link(a, b, 1000);
        t.add_link(a, w, 1000);
        t.add_link(b, w, 1000);
        t.add_link(b, d, 1000);
        t.add_link(w, d, 1000);
        t.add_external_prefix(d, "10.0.0.0/23".parse().unwrap());
        t
    }

    #[test]
    fn plans_waypoint_counting() {
        let topo = fig2a_topo();
        let inv = table1::waypoint(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "W", "D").unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();
        assert_eq!(cp.exprs.len(), 1);
        assert_eq!(cp.reduce, ReduceMode::Min);
        assert!(!cp.track_escapes);
        assert_eq!(cp.tasks.len(), cp.dpvnet.num_nodes());
        for t in &cp.tasks {
            for (n, d) in &t.downstream {
                assert_eq!(cp.dpvnet.node(*n).dev, *d);
            }
        }
    }

    #[test]
    fn plans_local_contracts_for_equal() {
        let topo = fig2a_topo();
        let inv =
            table1::all_shortest_path(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let lp = plan.local().unwrap();
        let s = topo.device("S").unwrap();
        let a = topo.device("A").unwrap();
        let cs = lp.contracts.iter().find(|c| c.dev == s).unwrap();
        assert_eq!(cs.required_next_hops, vec![a]);
        let ca = lp.contracts.iter().find(|c| c.dev == a).unwrap();
        assert_eq!(ca.required_next_hops.len(), 2);
        let d = topo.device("D").unwrap();
        let cd = lp.contracts.iter().find(|c| c.dev == d).unwrap();
        assert!(cd.must_deliver);
        assert!(cd.required_next_hops.is_empty());
    }

    #[test]
    fn consistency_check_rejects_wrong_destination() {
        let topo = fig2a_topo();
        // Packet space prefix is announced at D, but the path ends at W.
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "W").unwrap();
        let err = Planner::new(&topo).plan(&inv).unwrap_err();
        assert!(
            matches!(err, PlanError::InconsistentDestination { .. }),
            "{err}"
        );
    }

    #[test]
    fn consistency_check_passes_for_correct_destination() {
        let topo = fig2a_topo();
        let inv = table1::reachability(PacketSpace::dst_prefix("10.0.0.0/23"), "S", "D").unwrap();
        assert!(Planner::new(&topo).plan(&inv).is_ok());
    }

    #[test]
    fn unknown_devices_are_rejected() {
        let topo = fig2a_topo();
        let inv = table1::reachability(PacketSpace::All, "S", "Z").unwrap();
        let err = Planner::new(&topo).plan(&inv).unwrap_err();
        assert_eq!(err, PlanError::UnknownDevice("Z".into()));
        let inv2 = table1::reachability(PacketSpace::All, "Q", "D").unwrap();
        assert!(matches!(
            Planner::new(&topo).plan(&inv2),
            Err(PlanError::UnknownDevice(_))
        ));
    }

    #[test]
    fn anycast_compiles_to_two_expr_formula() {
        // Fig. 5a-like: S—A—D, S—B—E.
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let d = t.add_device("D");
        let e = t.add_device("E");
        t.add_link(s, a, 1);
        t.add_link(s, b, 1);
        t.add_link(a, d, 1);
        t.add_link(b, e, 1);
        let inv = table1::anycast(PacketSpace::All, "S", "D", "E").unwrap();
        let plan = Planner::new(&t).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();
        assert_eq!(cp.exprs.len(), 2);
        assert_eq!(cp.vec_dim(), 2);
        assert_eq!(cp.reduce, ReduceMode::None);
        assert!(matches!(cp.formula, Formula::Or(..)));
    }

    #[test]
    fn subset_tracks_escapes() {
        let topo = fig2a_topo();
        let inv = Invariant::builder()
            .packet_space(PacketSpace::dst_prefix("10.0.0.0/23"))
            .ingress(["S"])
            .behavior(Behavior::subset(
                PathExpr::parse("S .* D").unwrap().loop_free(),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&topo).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();
        assert!(cp.track_escapes);
        assert_eq!(cp.vec_dim(), 2);
        assert_eq!(cp.escape_idx(), Some(1));
    }

    #[test]
    fn formula_eval() {
        let f = Formula::Or(
            Box::new(Formula::And(
                Box::new(Formula::Exist {
                    expr: 0,
                    count: CountExpr::Ge(1),
                }),
                Box::new(Formula::Exist {
                    expr: 1,
                    count: CountExpr::Eq(0),
                }),
            )),
            Box::new(Formula::And(
                Box::new(Formula::Exist {
                    expr: 0,
                    count: CountExpr::Eq(0),
                }),
                Box::new(Formula::Exist {
                    expr: 1,
                    count: CountExpr::Eq(1),
                }),
            )),
        );
        assert!(f.eval(&[1, 0], None));
        assert!(f.eval(&[0, 1], None));
        assert!(!f.eval(&[1, 1], None));
        assert!(!f.eval(&[0, 0], None));
    }

    #[test]
    fn destination_devices_of_regex() {
        let topo = fig2a_topo();
        let planner = Planner::new(&topo);
        let re = Regex::parse("S .* D").unwrap();
        let dests = planner.destination_devices(&re);
        assert_eq!(dests, vec![topo.device("D").unwrap()]);
        let re = Regex::parse("S .* (D | W)").unwrap();
        let dests = planner.destination_devices(&re);
        assert_eq!(dests.len(), 2);
    }

    #[test]
    fn slack_fastpath_engages_on_large_topologies() {
        // A ring of 210 devices (>= the 200-device threshold).
        let mut t = Topology::new();
        let ids: Vec<DeviceId> = (0..210).map(|i| t.add_device(format!("n{i}"))).collect();
        for i in 0..210 {
            t.add_link(ids[i], ids[(i + 1) % 210], 1);
        }
        let inv = Invariant::builder()
            .packet_space(PacketSpace::All)
            .ingress(["n0"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("n0 .* n100").unwrap().shortest_plus(2),
            ))
            .build()
            .unwrap();
        let plan = Planner::new(&t).plan(&inv).unwrap();
        let cp = plan.counting().unwrap();
        assert_eq!(cp.dpvnet.sources().len(), 1);
        assert!(cp.dpvnet.num_paths() >= 1.0);
    }
}
