//! Multi-path invariants (§7): comparing the packet traces of *two*
//! packet spaces — e.g. route symmetry ("S→D and D→S use the same
//! routers") or node-disjointness of a primary and a backup space.
//!
//! The paper sketches the mechanism: construct a DPVNet per packet
//! space, let on-device verifiers collect the **actual downstream
//! paths** (instead of counts) and send them upstream, then apply a
//! user-defined comparison operator on the collected path sets at the
//! source. This module implements exactly that: a path-collection pass
//! over each DPVNet (same reverse-topological structure as Algorithm 1,
//! with path-set values instead of count sets) and the two comparators
//! the paper names.

use crate::dpvnet::DpvNet;
use crate::planner::PlanError;
use crate::spec::{PacketSpace, PathExpr};
use std::collections::BTreeSet;
use tulkun_bdd::BddManager;
use tulkun_netmodel::fib::{Action, NextHop};
use tulkun_netmodel::network::Network;
use tulkun_netmodel::topology::DeviceId;

/// A set of concrete paths (device sequences). `None` stands in for
/// "unboundedly many" — never produced here because DPVNets are finite.
pub type PathSet = BTreeSet<Vec<DeviceId>>;

/// The union, over all universes, of the traces a packet class can take
/// along a DPVNet — the object multi-path comparators consume.
#[derive(Debug, Clone, Default)]
pub struct CollectedPaths {
    /// Paths that occur in at least one universe.
    pub paths: PathSet,
}

/// Collects the actual paths a packet class takes along the valid paths
/// of a DPVNet (union across universes), by the same reverse-topological
/// on-device pass as counting, with path suffixes as the carried value.
pub fn collect_paths(
    net: &Network,
    dpvnet: &DpvNet,
    space: &PacketSpace,
    probe: &[bool],
) -> Result<CollectedPaths, PlanError> {
    let layout = net.layout;
    let mut mgr = BddManager::new(layout.num_vars());
    let ps = space.compile(&mut mgr, &layout);
    if !mgr.eval(ps, probe) {
        return Err(PlanError::Unsupported(
            "probe packet outside the packet space".into(),
        ));
    }

    // Per-node suffix sets, computed in reverse topological order — the
    // value each device would ship upstream in the extended DVM.
    let order = dpvnet.reverse_topo_order();
    let mut suffixes: Vec<PathSet> = vec![PathSet::new(); dpvnet.num_nodes()];
    for id in order {
        let node = dpvnet.node(id);
        let mut mine = PathSet::new();
        if node.is_accepting() {
            mine.insert(vec![node.dev]);
        }
        let action = effective_action(net, node.dev, &mut mgr, probe);
        if let Action::Forward { next_hops, .. } = &action {
            for nh in next_hops {
                let NextHop::Device(h) = nh else { continue };
                for &o in &node.out {
                    if dpvnet.node(o).dev != *h {
                        continue;
                    }
                    for sfx in &suffixes[o.idx()] {
                        let mut p = vec![node.dev];
                        p.extend(sfx);
                        mine.insert(p);
                    }
                }
            }
        }
        suffixes[id.idx()] = mine;
    }
    let mut out = CollectedPaths::default();
    for &(_, s) in dpvnet.sources() {
        out.paths.extend(suffixes[s.idx()].iter().cloned());
    }
    Ok(out)
}

fn effective_action(net: &Network, dev: DeviceId, mgr: &mut BddManager, probe: &[bool]) -> Action {
    net.fib(dev).lookup(mgr, &net.layout, probe)
}

/// Builds the DPVNet for one `src .* dst` space and collects its paths
/// for a probe packet.
pub fn collect_for(
    net: &Network,
    src: &str,
    dst: &str,
    space: &PacketSpace,
    probe: &[bool],
) -> Result<CollectedPaths, PlanError> {
    let topo = &net.topology;
    let s = topo
        .device(src)
        .ok_or_else(|| PlanError::UnknownDevice(src.into()))?;
    let pe = PathExpr::parse(&format!("{src} .* {dst}"))
        .map_err(|e| PlanError::Unsupported(e.to_string()))?
        .loop_free();
    let dpvnet = DpvNet::build(topo, &[s], std::slice::from_ref(&pe))?;
    collect_paths(net, &dpvnet, space, probe)
}

/// Comparators on collected path sets.
pub mod compare {
    use super::*;

    /// Route symmetry (§7): every forward path, reversed, is a reverse
    /// path — and vice versa.
    pub fn symmetric(fwd: &CollectedPaths, rev: &CollectedPaths) -> bool {
        let reversed: PathSet = fwd
            .paths
            .iter()
            .map(|p| p.iter().rev().copied().collect())
            .collect();
        reversed == rev.paths
    }

    /// Node-disjointness: no interior device shared between any path of
    /// `a` and any path of `b` (endpoints excluded).
    pub fn node_disjoint(a: &CollectedPaths, b: &CollectedPaths) -> bool {
        let interior = |ps: &PathSet| -> BTreeSet<DeviceId> {
            ps.iter()
                .flat_map(|p| p.iter().skip(1).take(p.len().saturating_sub(2)).copied())
                .collect()
        };
        interior(&a.paths).is_disjoint(&interior(&b.paths))
    }

    /// Link-disjointness: no (undirected) link shared.
    pub fn link_disjoint(a: &CollectedPaths, b: &CollectedPaths) -> bool {
        let links = |ps: &PathSet| -> BTreeSet<(DeviceId, DeviceId)> {
            ps.iter()
                .flat_map(|p| {
                    p.windows(2).map(|w| {
                        if w[0] <= w[1] {
                            (w[0], w[1])
                        } else {
                            (w[1], w[0])
                        }
                    })
                })
                .collect()
        };
        links(&a.paths).is_disjoint(&links(&b.paths))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tulkun_netmodel::fib::{MatchSpec, Rule};
    use tulkun_netmodel::topology::Topology;
    use tulkun_netmodel::IpPrefix;

    fn probe_bits(net: &Network, ip: [u8; 4]) -> Vec<bool> {
        let mut bits = vec![false; net.layout.num_vars() as usize];
        let addr = u32::from_be_bytes(ip);
        for (i, b) in bits.iter_mut().enumerate().take(32) {
            *b = (addr >> (31 - i)) & 1 == 1;
        }
        bits
    }

    /// S — A — D and S — B — D; forward space 10.0.0.0/24 at D, reverse
    /// space 10.1.0.0/24 at S.
    fn sym_net(symmetric: bool) -> Network {
        let mut t = Topology::new();
        let s = t.add_device("S");
        let a = t.add_device("A");
        let b = t.add_device("B");
        let d = t.add_device("D");
        t.add_link(s, a, 1);
        t.add_link(s, b, 1);
        t.add_link(a, d, 1);
        t.add_link(b, d, 1);
        t.add_external_prefix(d, "10.0.0.0/24".parse().unwrap());
        t.add_external_prefix(s, "10.1.0.0/24".parse().unwrap());
        let mut net = Network::new(t);
        let f: IpPrefix = "10.0.0.0/24".parse().unwrap();
        let r: IpPrefix = "10.1.0.0/24".parse().unwrap();
        // Forward: S → A → D.
        net.fib_mut(s).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(f),
            action: Action::fwd(a),
        });
        net.fib_mut(a).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(f),
            action: Action::fwd(d),
        });
        net.fib_mut(d).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(f),
            action: Action::deliver(),
        });
        // Reverse: D → A → S (symmetric) or D → B → S (asymmetric).
        let via = if symmetric { a } else { b };
        net.fib_mut(d).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(r),
            action: Action::fwd(via),
        });
        net.fib_mut(via).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(r),
            action: Action::fwd(s),
        });
        net.fib_mut(s).insert(Rule {
            priority: 24,
            matches: MatchSpec::dst(r),
            action: Action::deliver(),
        });
        net
    }

    #[test]
    fn route_symmetry_holds_and_fails() {
        for (sym, expect) in [(true, true), (false, false)] {
            let net = sym_net(sym);
            let fwd = collect_for(
                &net,
                "S",
                "D",
                &PacketSpace::dst_prefix("10.0.0.0/24"),
                &probe_bits(&net, [10, 0, 0, 1]),
            )
            .unwrap();
            let rev = collect_for(
                &net,
                "D",
                "S",
                &PacketSpace::dst_prefix("10.1.0.0/24"),
                &probe_bits(&net, [10, 1, 0, 1]),
            )
            .unwrap();
            assert!(!fwd.paths.is_empty() && !rev.paths.is_empty());
            assert_eq!(compare::symmetric(&fwd, &rev), expect, "sym={sym}");
        }
    }

    #[test]
    fn disjointness_comparators() {
        // Forward via A, reverse via B: node- and link-disjoint interiors.
        let net = sym_net(false);
        let fwd = collect_for(
            &net,
            "S",
            "D",
            &PacketSpace::dst_prefix("10.0.0.0/24"),
            &probe_bits(&net, [10, 0, 0, 1]),
        )
        .unwrap();
        let rev = collect_for(
            &net,
            "D",
            "S",
            &PacketSpace::dst_prefix("10.1.0.0/24"),
            &probe_bits(&net, [10, 1, 0, 1]),
        )
        .unwrap();
        assert!(compare::node_disjoint(&fwd, &rev));
        assert!(compare::link_disjoint(&fwd, &rev));

        // Symmetric routes share everything.
        let net = sym_net(true);
        let fwd = collect_for(
            &net,
            "S",
            "D",
            &PacketSpace::dst_prefix("10.0.0.0/24"),
            &probe_bits(&net, [10, 0, 0, 1]),
        )
        .unwrap();
        let rev = collect_for(
            &net,
            "D",
            "S",
            &PacketSpace::dst_prefix("10.1.0.0/24"),
            &probe_bits(&net, [10, 1, 0, 1]),
        )
        .unwrap();
        assert!(!compare::node_disjoint(&fwd, &rev));
        assert!(!compare::link_disjoint(&fwd, &rev));
    }

    #[test]
    fn collected_paths_respect_any_union() {
        // ECMP ANY at S: both paths appear in the union across universes.
        let mut net = sym_net(true);
        let s = net.topology.device("S").unwrap();
        let a = net.topology.device("A").unwrap();
        let b = net.topology.device("B").unwrap();
        let f: IpPrefix = "10.0.0.0/24".parse().unwrap();
        net.fib_mut(s).insert(Rule {
            priority: 50,
            matches: MatchSpec::dst(f),
            action: Action::fwd_any([a, b]),
        });
        let bdev = net.topology.device("B").unwrap();
        let d = net.topology.device("D").unwrap();
        net.fib_mut(bdev).insert(Rule {
            priority: 50,
            matches: MatchSpec::dst(f),
            action: Action::fwd(d),
        });
        let fwd = collect_for(
            &net,
            "S",
            "D",
            &PacketSpace::dst_prefix("10.0.0.0/24"),
            &probe_bits(&net, [10, 0, 0, 1]),
        )
        .unwrap();
        assert_eq!(fwd.paths.len(), 2, "{:?}", fwd.paths);
    }

    #[test]
    fn probe_outside_space_is_rejected() {
        let net = sym_net(true);
        let err = collect_for(
            &net,
            "S",
            "D",
            &PacketSpace::dst_prefix("10.0.0.0/24"),
            &probe_bits(&net, [9, 0, 0, 1]),
        );
        assert!(err.is_err());
    }
}
