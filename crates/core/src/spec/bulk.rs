//! Device-set iterators and bulk invariant generation — the language's
//! convenience layer (§3: "it allows users to specify a device set and
//! provides device iterators").
//!
//! Operators rarely write one invariant; they write families ("every
//! ToR pair", "every announced prefix reaches its owner"). These
//! helpers expand such families against a topology, deriving packet
//! spaces from the external-port map.

use super::{Behavior, Invariant, PacketSpace, PathExpr, SpecError};
use crate::count::CountExpr;
use tulkun_netmodel::topology::{DeviceId, Topology};

/// A named device set, resolved against a topology.
#[derive(Debug, Clone)]
pub enum DeviceSet {
    /// Every device.
    All,
    /// Devices whose name starts with the prefix (e.g. `"tor"`).
    NamePrefix(String),
    /// Devices announcing at least one external prefix.
    Announcing,
    /// An explicit list of names.
    Named(Vec<String>),
}

impl DeviceSet {
    /// Resolves the set against a topology.
    pub fn resolve(&self, topo: &Topology) -> Result<Vec<DeviceId>, SpecError> {
        let out: Vec<DeviceId> = match self {
            DeviceSet::All => topo.devices().collect(),
            DeviceSet::NamePrefix(p) => topo
                .devices()
                .filter(|d| topo.name(*d).starts_with(p.as_str()))
                .collect(),
            DeviceSet::Announcing => {
                let mut v: Vec<DeviceId> = topo.external_map().map(|(d, _)| d).collect();
                v.sort();
                v.dedup();
                v
            }
            DeviceSet::Named(names) => names
                .iter()
                .map(|n| {
                    topo.device(n)
                        .ok_or_else(|| SpecError(format!("unknown device {n:?}")))
                })
                .collect::<Result<_, _>>()?,
        };
        if out.is_empty() {
            return Err(SpecError("device set resolves to nothing".into()));
        }
        Ok(out)
    }
}

/// The packet space a destination owns: the union of its announced
/// prefixes.
pub fn owned_space(topo: &Topology, dst: DeviceId) -> Option<PacketSpace> {
    let prefixes = topo.external_prefixes(dst);
    let mut it = prefixes.iter();
    let first = PacketSpace::DstPrefix(*it.next()?);
    Some(it.fold(first, |acc, p| acc.or(PacketSpace::DstPrefix(*p))))
}

/// For every destination in `dsts`: every device in `srcs` (minus the
/// destination itself) can deliver the destination's owned packet space
/// along loop-free `<= shortest + slack` paths. One multi-ingress
/// invariant per destination — the workload of §9.2/§9.3.
pub fn all_pair_reachability(
    topo: &Topology,
    srcs: &DeviceSet,
    dsts: &DeviceSet,
    slack: i32,
) -> Result<Vec<Invariant>, SpecError> {
    let srcs = srcs.resolve(topo)?;
    let mut out = Vec::new();
    for dst in dsts.resolve(topo)? {
        let Some(space) = owned_space(topo, dst) else {
            continue;
        };
        let ingress: Vec<String> = srcs
            .iter()
            .filter(|s| **s != dst)
            .map(|s| topo.name(*s).to_string())
            .collect();
        if ingress.is_empty() {
            continue;
        }
        let path = PathExpr::parse(&format!(". * {}", topo.name(dst)))
            .map_err(|e| SpecError(e.to_string()))?
            .loop_free()
            .shortest_plus(slack);
        out.push(
            Invariant::builder()
                .name(format!("all-pair reachability -> {}", topo.name(dst)))
                .packet_space(space)
                .ingress(ingress)
                .behavior(Behavior::exist(CountExpr::ge(1), path))
                .build()?,
        );
    }
    if out.is_empty() {
        return Err(SpecError("no destination announces a prefix".into()));
    }
    Ok(out)
}

/// All-ToR-pair shortest-path availability (`equal`), one invariant per
/// announcing destination — the DC workload (RCDC).
pub fn all_pair_shortest_availability(
    topo: &Topology,
    srcs: &DeviceSet,
    dsts: &DeviceSet,
) -> Result<Vec<Invariant>, SpecError> {
    let srcs = srcs.resolve(topo)?;
    let mut out = Vec::new();
    for dst in dsts.resolve(topo)? {
        let Some(space) = owned_space(topo, dst) else {
            continue;
        };
        let ingress: Vec<String> = srcs
            .iter()
            .filter(|s| **s != dst)
            .map(|s| topo.name(*s).to_string())
            .collect();
        if ingress.is_empty() {
            continue;
        }
        out.push(
            Invariant::builder()
                .name(format!(
                    "all-shortest-path availability -> {}",
                    topo.name(dst)
                ))
                .packet_space(space)
                .ingress(ingress)
                .behavior(Behavior::equal(
                    PathExpr::parse(&format!(". * {}", topo.name(dst)))
                        .map_err(|e| SpecError(e.to_string()))?
                        .shortest_only(),
                ))
                .build()?,
        );
    }
    if out.is_empty() {
        return Err(SpecError("no destination announces a prefix".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        let mut t = Topology::new();
        let a = t.add_device("torA");
        let b = t.add_device("torB");
        let c = t.add_device("core");
        t.add_link(a, c, 1);
        t.add_link(b, c, 1);
        t.add_external_prefix(a, "10.0.0.0/24".parse().unwrap());
        t.add_external_prefix(b, "10.0.1.0/24".parse().unwrap());
        t.add_external_prefix(b, "10.0.2.0/24".parse().unwrap());
        t
    }

    #[test]
    fn device_sets_resolve() {
        let t = topo();
        assert_eq!(DeviceSet::All.resolve(&t).unwrap().len(), 3);
        assert_eq!(
            DeviceSet::NamePrefix("tor".into())
                .resolve(&t)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(DeviceSet::Announcing.resolve(&t).unwrap().len(), 2);
        assert_eq!(
            DeviceSet::Named(vec!["core".into()]).resolve(&t).unwrap(),
            vec![t.device("core").unwrap()]
        );
        assert!(DeviceSet::NamePrefix("spine".into()).resolve(&t).is_err());
        assert!(DeviceSet::Named(vec!["nope".into()]).resolve(&t).is_err());
    }

    #[test]
    fn owned_space_unions_prefixes() {
        let t = topo();
        let b = t.device("torB").unwrap();
        let space = owned_space(&t, b).unwrap();
        assert!(matches!(space, PacketSpace::Or(..)));
        let c = t.device("core").unwrap();
        assert!(owned_space(&t, c).is_none());
    }

    #[test]
    fn all_pair_family_expands() {
        let t = topo();
        let invs = all_pair_reachability(&t, &DeviceSet::All, &DeviceSet::Announcing, 2).unwrap();
        assert_eq!(invs.len(), 2); // one per announcing destination
        for inv in &invs {
            assert_eq!(inv.ingress.len(), 2); // everyone but the dst
            assert!(!inv.behavior.has_equal());
        }
        let eqs = all_pair_shortest_availability(
            &t,
            &DeviceSet::NamePrefix("tor".into()),
            &DeviceSet::Announcing,
        )
        .unwrap();
        assert_eq!(eqs.len(), 2);
        assert!(eqs.iter().all(|i| i.behavior.has_equal()));
    }
}
