//! The declarative invariant specification language (§3).
//!
//! An invariant is a `(packet_space, ingress_set, behavior,
//! [fault_scenes])` tuple. Behaviors are boolean combinations of
//! `(match_op, path_exp)` pairs:
//!
//! * `exist count_exp` — in each universe, the number of traces matching
//!   `path_exp` satisfies `count_exp`;
//! * `equal` — the union of universes equals *all* paths matching
//!   `path_exp` (verified communication-free, §4.2);
//! * `covered` — every trace matches `path_exp` (the second half of the
//!   paper's `subset` sugar, also how `exist == 0` over a complemented
//!   expression is realized).
//!
//! [`table1`] provides ready-made constructors for every invariant family
//! in the paper's Table 1; [`parse`] implements a textual surface syntax.

pub mod bulk;
pub mod parse;
pub mod table1;

use crate::count::CountExpr;
use std::fmt;
use tulkun_automata::Regex;
use tulkun_bdd::{BddManager, HeaderLayout, Pred};
use tulkun_netmodel::IpPrefix;

/// A symbolic set of packets, compiled to a BDD predicate on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketSpace {
    /// All packets.
    All,
    /// Destination address within a prefix.
    DstPrefix(IpPrefix),
    /// Destination port within an inclusive range.
    DstPort(u16, u16),
    /// Exact IP protocol.
    Proto(u8),
    /// Intersection.
    And(Box<PacketSpace>, Box<PacketSpace>),
    /// Union.
    Or(Box<PacketSpace>, Box<PacketSpace>),
    /// Complement.
    Not(Box<PacketSpace>),
}

impl PacketSpace {
    /// Packets destined to `prefix` (e.g. `"10.0.0.0/23"`).
    /// Panics on malformed prefixes — use [`PacketSpace::try_dst_prefix`]
    /// for fallible parsing.
    pub fn dst_prefix(prefix: &str) -> PacketSpace {
        Self::try_dst_prefix(prefix).expect("malformed prefix")
    }

    /// Fallible version of [`PacketSpace::dst_prefix`].
    pub fn try_dst_prefix(prefix: &str) -> Result<PacketSpace, SpecError> {
        prefix
            .parse::<IpPrefix>()
            .map(PacketSpace::DstPrefix)
            .map_err(|e| SpecError(e.to_string()))
    }

    /// Exact destination port.
    pub fn dst_port(port: u16) -> PacketSpace {
        PacketSpace::DstPort(port, port)
    }

    /// Intersection with another space.
    pub fn and(self, other: PacketSpace) -> PacketSpace {
        PacketSpace::And(Box::new(self), Box::new(other))
    }

    /// Union with another space.
    pub fn or(self, other: PacketSpace) -> PacketSpace {
        PacketSpace::Or(Box::new(self), Box::new(other))
    }

    /// Complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PacketSpace {
        PacketSpace::Not(Box::new(self))
    }

    /// Compiles the space to a predicate.
    pub fn compile(&self, m: &mut BddManager, layout: &HeaderLayout) -> Pred {
        match self {
            PacketSpace::All => m.verum(),
            PacketSpace::DstPrefix(p) => p.to_pred(m, layout),
            PacketSpace::DstPort(lo, hi) => layout.dst_port.range(m, *lo as u64, *hi as u64),
            PacketSpace::Proto(p) => layout.proto.eq(m, *p as u64),
            PacketSpace::And(a, b) => {
                let pa = a.compile(m, layout);
                let pb = b.compile(m, layout);
                m.and(pa, pb)
            }
            PacketSpace::Or(a, b) => {
                let pa = a.compile(m, layout);
                let pb = b.compile(m, layout);
                m.or(pa, pb)
            }
            PacketSpace::Not(a) => {
                let pa = a.compile(m, layout);
                m.not(pa)
            }
        }
    }

    /// Destination prefixes mentioned positively (used by the §3
    /// consistency check between packet spaces and path destinations).
    pub fn positive_dst_prefixes(&self) -> Vec<IpPrefix> {
        match self {
            PacketSpace::DstPrefix(p) => vec![*p],
            PacketSpace::And(a, b) | PacketSpace::Or(a, b) => {
                let mut v = a.positive_dst_prefixes();
                v.extend(b.positive_dst_prefixes());
                v
            }
            _ => Vec::new(),
        }
    }
}

/// A length-filter comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

/// A length-filter bound: concrete hop count, or symbolic relative to the
/// shortest path between a path's endpoints (§6 distinguishes the two for
/// fault tolerance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthBound {
    /// A fixed hop count.
    Hops(u32),
    /// `shortest + k` where `shortest` is recomputed per topology
    /// (symbolic; changes under fault scenes).
    ShortestPlus(i32),
}

/// A length filter on matched paths, e.g. `(<= shortest+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthFilter {
    /// The comparison.
    pub op: FilterOp,
    /// The bound compared against.
    pub bound: LengthBound,
}

impl LengthFilter {
    /// Is the bound symbolic (depends on the surviving topology)?
    pub fn is_symbolic(&self) -> bool {
        matches!(self.bound, LengthBound::ShortestPlus(_))
    }

    /// Evaluates the filter on a path of `hops` edges whose endpoints are
    /// `shortest` hops apart in the relevant topology.
    pub fn accepts(&self, hops: u32, shortest: u32) -> bool {
        let bound = match self.bound {
            LengthBound::Hops(h) => h as i64,
            LengthBound::ShortestPlus(k) => shortest as i64 + k as i64,
        };
        let hops = hops as i64;
        match self.op {
            FilterOp::Le => hops <= bound,
            FilterOp::Lt => hops < bound,
            FilterOp::Ge => hops >= bound,
            FilterOp::Gt => hops > bound,
            FilterOp::Eq => hops == bound,
        }
    }
}

/// A path expression: a regular expression over devices plus optional
/// length filters and the `loop_free` shortcut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// The regular expression over device names.
    pub regex: Regex,
    /// Source text of the regex (kept for display and hashing).
    pub source: String,
    /// Length filters on matched paths.
    pub filters: Vec<LengthFilter>,
    /// Restrict to simple paths (no repeated device).
    pub loop_free: bool,
}

impl PathExpr {
    /// Parses a regex into a path expression with no filters.
    pub fn parse(source: &str) -> Result<PathExpr, SpecError> {
        let regex = Regex::parse(source).map_err(|e| SpecError(e.to_string()))?;
        Ok(PathExpr {
            regex,
            source: source.to_string(),
            filters: Vec::new(),
            loop_free: false,
        })
    }

    /// The `loop_free` shortcut of the language.
    pub fn loop_free(mut self) -> PathExpr {
        self.loop_free = true;
        self
    }

    /// Adds a `<= n` hop filter.
    pub fn max_hops(mut self, n: u32) -> PathExpr {
        self.filters.push(LengthFilter {
            op: FilterOp::Le,
            bound: LengthBound::Hops(n),
        });
        self
    }

    /// Adds a `<= shortest + k` filter (the `shortest` shortcut).
    pub fn shortest_plus(mut self, k: i32) -> PathExpr {
        self.filters.push(LengthFilter {
            op: FilterOp::Le,
            bound: LengthBound::ShortestPlus(k),
        });
        self
    }

    /// Adds an `== shortest` filter.
    pub fn shortest_only(mut self) -> PathExpr {
        self.filters.push(LengthFilter {
            op: FilterOp::Eq,
            bound: LengthBound::ShortestPlus(0),
        });
        self
    }

    /// Does the expression carry any symbolic filter? (Proposition 2.)
    pub fn has_symbolic_filter(&self) -> bool {
        self.filters.iter().any(LengthFilter::is_symbolic)
    }

    /// A concrete hop-count upper bound implied by the filters, if any.
    pub fn concrete_hop_bound(&self) -> Option<u32> {
        self.filters
            .iter()
            .filter_map(|f| match (f.op, f.bound) {
                (FilterOp::Le, LengthBound::Hops(h)) => Some(h),
                (FilterOp::Lt, LengthBound::Hops(h)) => Some(h.saturating_sub(1)),
                (FilterOp::Eq, LengthBound::Hops(h)) => Some(h),
                _ => None,
            })
            .min()
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.source)?;
        if self.loop_free {
            write!(f, " loop_free")?;
        }
        for filt in &self.filters {
            let op = match filt.op {
                FilterOp::Le => "<=",
                FilterOp::Lt => "<",
                FilterOp::Ge => ">=",
                FilterOp::Gt => ">",
                FilterOp::Eq => "==",
            };
            match filt.bound {
                LengthBound::Hops(h) => write!(f, " ({op} {h})")?,
                LengthBound::ShortestPlus(0) => write!(f, " ({op} shortest)")?,
                LengthBound::ShortestPlus(k) if k > 0 => write!(f, " ({op} shortest+{k})")?,
                LengthBound::ShortestPlus(k) => write!(f, " ({op} shortest{k})")?,
            }
        }
        Ok(())
    }
}

/// A verification behavior: a boolean combination of match operations on
/// path expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// In every universe, the number of traces matching `path` satisfies
    /// `count`.
    Exist {
        /// The count constraint.
        count: CountExpr,
        /// The path expression matched against traces.
        path: PathExpr,
    },
    /// Every trace matches `path` (no trace escapes the valid path set).
    Covered {
        /// The path expression every trace must match.
        path: PathExpr,
    },
    /// The union of universes equals all paths matching `path`
    /// (equivalence behavior, verified by local contracts).
    Equal {
        /// The path expression defining the required path set.
        path: PathExpr,
    },
    /// Negation.
    Not(Box<Behavior>),
    /// Conjunction.
    And(Box<Behavior>, Box<Behavior>),
    /// Disjunction.
    Or(Box<Behavior>, Box<Behavior>),
}

impl Behavior {
    /// `exist count path`.
    pub fn exist(count: CountExpr, path: PathExpr) -> Behavior {
        Behavior::Exist { count, path }
    }

    /// `covered path`.
    pub fn covered(path: PathExpr) -> Behavior {
        Behavior::Covered { path }
    }

    /// `equal path`.
    pub fn equal(path: PathExpr) -> Behavior {
        Behavior::Equal { path }
    }

    /// The `subset` sugar of the language: at least one trace matches and
    /// every trace matches.
    pub fn subset(path: PathExpr) -> Behavior {
        Behavior::exist(CountExpr::ge(1), path.clone()).and(Behavior::covered(path))
    }

    /// Conjunction.
    pub fn and(self, other: Behavior) -> Behavior {
        Behavior::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Behavior) -> Behavior {
        Behavior::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Behavior {
        Behavior::Not(Box::new(self))
    }

    /// All path expressions appearing in the behavior, in a stable
    /// left-to-right order, deduplicated.
    pub fn path_exprs(&self) -> Vec<&PathExpr> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        let mut seen = Vec::new();
        out.retain(|p| {
            if seen.contains(p) {
                false
            } else {
                seen.push(p);
                true
            }
        });
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a PathExpr>) {
        match self {
            Behavior::Exist { path, .. }
            | Behavior::Covered { path }
            | Behavior::Equal { path } => out.push(path),
            Behavior::Not(b) => b.collect_paths(out),
            Behavior::And(a, b) | Behavior::Or(a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
        }
    }

    /// Does the behavior contain an `equal` operator?
    pub fn has_equal(&self) -> bool {
        match self {
            Behavior::Equal { .. } => true,
            Behavior::Exist { .. } | Behavior::Covered { .. } => false,
            Behavior::Not(b) => b.has_equal(),
            Behavior::And(a, b) | Behavior::Or(a, b) => a.has_equal() || b.has_equal(),
        }
    }
}

/// Fault-tolerance specification (§6): which failure scenes the invariant
/// must additionally hold under.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FaultSpec {
    /// No fault tolerance requested.
    #[default]
    None,
    /// Explicit scenes, each a set of failed links given as device-name
    /// pairs.
    Scenes(Vec<Vec<(String, String)>>),
    /// All scenes of up to `k` failed links (`any_two` sugar is `AnyK(2)`).
    AnyK(u32),
}

/// A complete invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Invariant {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// The packets the invariant concerns.
    pub packet_space: PacketSpace,
    /// Ingress device names.
    pub ingress: Vec<String>,
    /// The required behavior.
    pub behavior: Behavior,
    /// Optional fault tolerance (§6).
    pub fault_scenes: FaultSpec,
}

impl Invariant {
    /// Starts a builder.
    pub fn builder() -> InvariantBuilder {
        InvariantBuilder::default()
    }

    /// Parses the textual surface syntax (see [`parse`]).
    pub fn parse(input: &str) -> Result<Invariant, SpecError> {
        parse::parse_invariant(input)
    }
}

/// Builder for [`Invariant`].
#[derive(Debug, Default)]
pub struct InvariantBuilder {
    name: Option<String>,
    packet_space: Option<PacketSpace>,
    ingress: Vec<String>,
    behavior: Option<Behavior>,
    fault_scenes: FaultSpec,
}

impl InvariantBuilder {
    /// Optional human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The packet space (required).
    pub fn packet_space(mut self, ps: PacketSpace) -> Self {
        self.packet_space = Some(ps);
        self
    }

    /// Ingress devices (required, at least one).
    pub fn ingress<S: Into<String>>(mut self, devices: impl IntoIterator<Item = S>) -> Self {
        self.ingress = devices.into_iter().map(Into::into).collect();
        self
    }

    /// The behavior (required).
    pub fn behavior(mut self, b: Behavior) -> Self {
        self.behavior = Some(b);
        self
    }

    /// Fault-tolerance scenes.
    pub fn fault_scenes(mut self, f: FaultSpec) -> Self {
        self.fault_scenes = f;
        self
    }

    /// Finishes the invariant, validating required fields.
    pub fn build(self) -> Result<Invariant, SpecError> {
        let behavior = self
            .behavior
            .ok_or_else(|| SpecError("missing behavior".into()))?;
        if self.ingress.is_empty() {
            return Err(SpecError("at least one ingress device is required".into()));
        }
        if behavior.has_equal() && !matches!(behavior, Behavior::Equal { .. }) {
            return Err(SpecError(
                "`equal` cannot be combined with other match operators".into(),
            ));
        }
        Ok(Invariant {
            name: self.name.unwrap_or_else(|| "invariant".into()),
            packet_space: self
                .packet_space
                .ok_or_else(|| SpecError("missing packet space".into()))?,
            ingress: self.ingress,
            behavior,
            fault_scenes: self.fault_scenes,
        })
    }
}

impl fmt::Display for PacketSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketSpace::All => write!(f, "*"),
            PacketSpace::DstPrefix(p) => write!(f, "dstIP={p}"),
            PacketSpace::DstPort(lo, hi) if lo == hi => write!(f, "dstPort={lo}"),
            PacketSpace::DstPort(lo, hi) => write!(f, "dstPort={lo}..{hi}"),
            PacketSpace::Proto(p) => write!(f, "proto={p}"),
            PacketSpace::And(a, b) => write!(f, "{a} && {b}"),
            PacketSpace::Or(a, b) => write!(f, "{a} || {b}"),
            PacketSpace::Not(a) => match &**a {
                PacketSpace::DstPort(lo, hi) if lo == hi => write!(f, "dstPort!={lo}"),
                other => write!(f, "!{other}"),
            },
        }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Exist { count, path } => write!(f, "(exist {count}, {path})"),
            Behavior::Covered { path } => write!(f, "(covered, {path})"),
            Behavior::Equal { path } => write!(f, "(equal, {path})"),
            Behavior::Not(b) => write!(f, "not {b}"),
            Behavior::And(a, b) => write!(f, "({a} and {b})"),
            Behavior::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

impl fmt::Display for Invariant {
    /// Prints the textual surface syntax; invariants built from the
    /// surface syntax round-trip through [`Invariant::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, [{}], {}",
            self.packet_space,
            self.ingress.join(", "),
            self.behavior
        )?;
        match &self.fault_scenes {
            FaultSpec::None => {}
            FaultSpec::AnyK(k) => write!(f, ", faults: any {k}")?,
            FaultSpec::Scenes(scenes) => {
                write!(f, ", faults:")?;
                for s in scenes {
                    write!(f, " {{")?;
                    for (i, (a, b)) in s.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "({a},{b})")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        write!(f, ")")
    }
}

/// An error constructing or parsing a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_fields() {
        assert!(Invariant::builder().build().is_err());
        assert!(Invariant::builder()
            .packet_space(PacketSpace::All)
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap()
            ))
            .build()
            .is_err()); // no ingress
        let inv = Invariant::builder()
            .packet_space(PacketSpace::All)
            .ingress(["S"])
            .behavior(Behavior::exist(
                CountExpr::ge(1),
                PathExpr::parse("S .* D").unwrap(),
            ))
            .build()
            .unwrap();
        assert_eq!(inv.ingress, vec!["S"]);
    }

    #[test]
    fn equal_cannot_be_combined() {
        let eq = Behavior::equal(PathExpr::parse("S .* D").unwrap().shortest_only());
        let ex = Behavior::exist(CountExpr::ge(1), PathExpr::parse("S .* D").unwrap());
        let bad = Invariant::builder()
            .packet_space(PacketSpace::All)
            .ingress(["S"])
            .behavior(eq.and(ex))
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn packet_space_compiles() {
        let layout = HeaderLayout::ipv4_tcp();
        let mut m = BddManager::new(layout.num_vars());
        // Fig. 2: P3 = 10.0.1.0/24 ∧ port 80; P4 = 10.0.1.0/24 ∧ port ≠ 80.
        let p24 = PacketSpace::dst_prefix("10.0.1.0/24");
        let p3 = p24.clone().and(PacketSpace::dst_port(80));
        let p4 = p24.clone().and(PacketSpace::dst_port(80).not());
        let c24 = p24.compile(&mut m, &layout);
        let c3 = p3.compile(&mut m, &layout);
        let c4 = p4.compile(&mut m, &layout);
        assert!(!m.intersects(c3, c4));
        let u = m.or(c3, c4);
        assert_eq!(u, c24);
    }

    #[test]
    fn path_expr_filters() {
        let pe = PathExpr::parse("S .* D")
            .unwrap()
            .shortest_plus(1)
            .loop_free();
        assert!(pe.has_symbolic_filter());
        assert_eq!(pe.concrete_hop_bound(), None);
        let f = pe.filters[0];
        assert!(f.accepts(3, 2));
        assert!(!f.accepts(4, 2));
        let pe2 = PathExpr::parse("S .* D").unwrap().max_hops(3);
        assert_eq!(pe2.concrete_hop_bound(), Some(3));
        assert!(!pe2.has_symbolic_filter());
    }

    #[test]
    fn behavior_path_collection_dedupes() {
        let p = PathExpr::parse("S .* D").unwrap();
        let b = Behavior::subset(p.clone());
        assert_eq!(b.path_exprs().len(), 1);
        let q = PathExpr::parse("S .* E").unwrap();
        let b2 = Behavior::exist(CountExpr::ge(1), p).and(Behavior::exist(CountExpr::eq(0), q));
        assert_eq!(b2.path_exprs().len(), 2);
    }

    #[test]
    fn display_path_expr() {
        let pe = PathExpr::parse("S .* W .* D")
            .unwrap()
            .loop_free()
            .shortest_plus(1);
        assert_eq!(pe.to_string(), "/S .* W .* D/ loop_free (<= shortest+1)");
        let pe = PathExpr::parse("S .* D").unwrap().shortest_only();
        assert_eq!(pe.to_string(), "/S .* D/ (== shortest)");
        let pe = PathExpr::parse("S .* D").unwrap().max_hops(5);
        assert_eq!(pe.to_string(), "/S .* D/ (<= 5)");
    }

    #[test]
    fn positive_dst_prefixes() {
        let ps = PacketSpace::dst_prefix("10.0.0.0/23").and(PacketSpace::dst_port(80));
        assert_eq!(
            ps.positive_dst_prefixes(),
            vec!["10.0.0.0/23".parse().unwrap()]
        );
    }
}
